"""Friends-of-friends halo finding over a clustered particle set.

Builds a synthetic clustered dataset (Gaussian blobs in a periodic-free
box, written through the two-phase pipeline so the clumps are scattered
across leaf files), then partitions a region's particles into groups
with :func:`repro.analysis.fof_groups`: two particles share a group when
a chain of links shorter than the linking length connects them. The
single fixed-radius neighbor query behind it crosses leaf-file
boundaries through ghost strips, so groups spanning files are found
without ever reading a whole neighbor file.

Usage: python examples/halo_finder.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import TwoPhaseWriter, machines, open_dataset
from repro.analysis import fof_groups
from repro.core import RankData
from repro.types import Box, ParticleBatch
from repro.workloads import grid_decompose

OUT = Path(__file__).parent / "halo_out"
NRANKS = 8
N_CLUMPS = 12
PER_CLUMP = 500
LINKING_LENGTH = 0.02


def clustered_rank_data(seed: int = 11) -> RankData:
    """Gaussian clumps over a unit box, decomposed on a rank grid."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15, 0.85, size=(N_CLUMPS, 3))
    pos = np.concatenate([
        rng.normal(c, 0.02, size=(PER_CLUMP, 3)) for c in centers
    ]).clip(0.0, 1.0).astype(np.float32)
    mass = rng.lognormal(0.0, 0.3, size=len(pos))

    domain = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    bounds = grid_decompose(domain, NRANKS, ndims=3)
    batches = []
    for lo, hi in bounds:
        inside = np.all((pos >= lo) & (pos < hi), axis=1)
        batches.append(ParticleBatch(pos[inside], {"mass": mass[inside]}))
    return RankData(
        bounds=bounds,
        counts=np.array([len(b) for b in batches]),
        batches=batches,
    )


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    TwoPhaseWriter(machines.testing_machine(), target_size=24 << 10).write(
        clustered_rank_data(), out_dir=OUT, name="halos"
    )

    with open_dataset(OUT / "halos.meta.json") as ds:
        print(f"dataset: {ds.total_particles:,} particles "
              f"in {ds.metadata.n_files} leaf files")

        groups = fof_groups(ds, LINKING_LENGTH)
        s = groups.result.stats
        print(f"found {groups.n_groups} groups over "
              f"{len(groups.centers):,} particles "
              f"(linking length {LINKING_LENGTH})")
        print(f"  files: {s.files_opened} opened "
              f"({s.ghost_files_opened} ghost strips), "
              f"{s.pruned_files} never opened; "
              f"{s.pairs_tested:,} pair distances tested")

        order = np.argsort(groups.sizes)[::-1]
        for rank, g in enumerate(order[:8]):
            members = groups.members(int(g))
            com = groups.centers[members].mean(axis=0)
            print(f"  #{rank + 1}: {groups.sizes[g]:6d} particles, "
                  f"center of mass ({com[0]:.3f}, {com[1]:.3f}, {com[2]:.3f})")

        # the brute-force oracle partitions identically
        check = fof_groups(ds, LINKING_LENGTH, engine="brute")
        assert np.array_equal(groups.labels, check.labels)
        print("  verified: tree partition == brute-force reference")


if __name__ == "__main__":
    main()
