"""Dam Break checkpoint/restart: write at one scale, restart at another.

The two-phase read pipeline (§IV) supports restarting from data written at
a different rank count — the read-aggregator assignment adapts to more or
fewer readers than files. This example simulates the Dam Break, writes a
checkpoint from a 32-rank virtual job, then restarts it on 8 and on 128
virtual ranks and verifies every particle lands on the rank that now owns
its region.

Usage: python examples/dam_break_restart.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import Box, TwoPhaseReader, TwoPhaseWriter, machines
from repro.workloads import DamBreak, grid_decompose

OUT = Path(__file__).parent / "dam_out"


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    machine = machines.summit()
    dam = DamBreak(total=2_000_000)

    # simulate to the mid-collapse timestep and materialize at 1/100 scale
    data = dam.rank_data(1001, nranks=32, scale=1e-2, materialize=True)
    occupied = int((data.counts > 0).sum())
    print(f"dam break @ ts 1001: {data.total_particles:,} particles on "
          f"{occupied}/32 occupied ranks (surge still spreading)")

    writer = TwoPhaseWriter(machine, target_size=256 * 1024)
    report = writer.write(data, out_dir=OUT, name="ckpt1001")
    print(f"checkpoint: {report.n_files} files, "
          f"modeled {report.elapsed * 1e3:.1f} ms on virtual {machine.name}")

    reader = TwoPhaseReader(machine)
    for new_ranks in (8, 128):
        bounds = grid_decompose(dam.domain, new_ranks, ndims=2)
        rrep = reader.read(report.metadata, bounds, data_dir=OUT)
        got = sum(len(b) for b in rrep.batches)
        # verify spatial ownership: every restarted rank holds exactly the
        # particles inside its new subdomain
        for r in range(new_ranks):
            box = Box.from_array(bounds[r])
            assert box.contains_points(rrep.batches[r].positions).all()
        status = "OK" if got == data.total_particles else "MISMATCH"
        print(f"restart on {new_ranks:4d} ranks: {got:,} particles recovered "
              f"[{status}], modeled {rrep.elapsed * 1e3:.1f} ms")
        assert got == data.total_particles

    # restart reads also work region-limited (e.g. zoom-in re-simulation)
    surge = Box((1.0, 0.0, 0.0), (2.5, 1.0, 1.0))
    rrep = reader.read(report.metadata, np.array([surge.as_array()]), data_dir=OUT)
    print(f"region-limited restart (surge zone only): "
          f"{len(rrep.batches[0]):,} particles")
    print(f"\noutput in {OUT}/")


if __name__ == "__main__":
    main()
