"""Quickstart: write a particle timestep, read it back, query it.

Runs a 16-rank virtual job through the adaptive two-phase pipeline, writes
real BAT files to ./quickstart_out/, then demonstrates every kind of read
the layout supports: full restart reads, spatial queries, attribute
filtering, and progressive multiresolution loading.

Usage: python examples/quickstart.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import (
    AttributeFilter,
    BATDataset,
    Box,
    ParticleBatch,
    RankData,
    TwoPhaseReader,
    TwoPhaseWriter,
    machines,
)
from repro.workloads import grid_decompose

OUT = Path(__file__).parent / "quickstart_out"


def make_simulation_state(nranks: int = 16, seed: int = 0) -> RankData:
    """Pretend to be a simulation: each rank owns a box and some particles."""
    rng = np.random.default_rng(seed)
    domain = Box((0.0, 0.0, 0.0), (4.0, 4.0, 1.0))
    bounds = grid_decompose(domain, nranks, ndims=3)
    batches = []
    for r in range(nranks):
        lo, hi = bounds[r]
        n = int(rng.integers(2_000, 10_000))
        pos = lo + rng.random((n, 3)) * (hi - lo)
        batches.append(
            ParticleBatch(
                pos.astype(np.float32),
                {
                    "temperature": rng.normal(300.0, 40.0, n),
                    "velocity": rng.normal(0.0, 2.0, n),
                },
            )
        )
    return RankData.from_batches(batches)


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    data = make_simulation_state()
    print(f"simulation state: {data.nranks} ranks, {data.total_particles:,} particles")

    # -- write: adaptive two-phase aggregation --------------------------------
    machine = machines.stampede2()
    writer = TwoPhaseWriter(machine, target_size=512 * 1024)
    report = writer.write(data, out_dir=OUT, name="ts0000")
    print(f"\nwrote {report.n_files} BAT files "
          f"(modeled elapsed {report.elapsed * 1e3:.1f} ms, "
          f"{report.bandwidth / 1e9:.2f} GB/s on virtual {machine.name})")
    for phase, t in report.breakdown.items():
        print(f"  {phase:<26s} {t * 1e3:7.2f} ms")

    # -- restart read at a different scale ------------------------------------
    reader = TwoPhaseReader(machine)
    new_bounds = grid_decompose(Box((0, 0, 0), (4, 4, 1)), 4, ndims=3)
    rrep = reader.read(report.metadata, new_bounds, data_dir=OUT)
    recovered = sum(len(b) for b in rrep.batches)
    print(f"\nrestart read on 4 ranks: {recovered:,} particles recovered "
          f"({rrep.bandwidth / 1e9:.2f} GB/s modeled)")
    assert recovered == data.total_particles

    # -- visualization reads ---------------------------------------------------
    with BATDataset(report.metadata_path) as ds:
        coarse, _ = ds.query(quality=0.1)
        print(f"\nprogressive: quality 0.1 -> {len(coarse):,} points "
              f"({len(coarse) / ds.total_particles:.1%} of the data)")
        more, _ = ds.query(quality=0.5, prev_quality=0.1)
        print(f"progressive: 0.1 -> 0.5 increment adds {len(more):,} points")

        region = Box((1.0, 1.0, 0.0), (2.0, 2.0, 1.0))
        sub, stats = ds.query(box=region)
        print(f"spatial query {region.lower}..{region.upper}: {len(sub):,} points, "
              f"tested only {stats.points_tested:,}")

        hot, stats = ds.query(filters=[AttributeFilter("temperature", 360.0, 1000.0)])
        print(f"attribute filter T>360: {len(hot):,} points "
              f"(bitmap pruning skipped {stats.pruned_bitmap} subtrees)")
        assert (hot.attributes["temperature"] >= 360.0).all()

    print(f"\noutput in {OUT}/ — metadata: {Path(report.metadata_path).name}")


if __name__ == "__main__":
    main()
