"""Progressive streaming server: the paper's Fig 4 prototype.

A server holds a BAT timestep and streams *increments* to clients: each
request names a quality level and the server returns only the particles
needed to reach it from what that client already has. Clients can also set
spatial boxes and attribute filters, which reset their progression — the
interaction pattern of the paper's web viewer.

Usage: python examples/progressive_streaming.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import AttributeFilter, Box, TwoPhaseWriter, machines
from repro.viz import ProgressiveStreamServer, lod_radius
from repro.workloads import CoalBoiler

OUT = Path(__file__).parent / "stream_out"


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    boiler = CoalBoiler()
    data = boiler.rank_data(3001, nranks=32, scale=4e-3, materialize=True)
    report = TwoPhaseWriter(machines.stampede2(), target_size=512 * 1024).write(
        data, out_dir=OUT, name="view"
    )
    total = data.total_particles
    print(f"serving {total:,} particles from {report.n_files} BAT files\n")

    with ProgressiveStreamServer(report.metadata_path) as server:
        # -- client A: progressive full-view loading ----------------------------
        a = server.open_session()
        print("client A loads the full view progressively:")
        have = 0
        for q in (0.1, 0.3, 0.6, 1.0):
            inc = server.request(a, q)
            have += len(inc)
            print(f"  quality {q:.1f}: +{len(inc):6,} points "
                  f"(have {have / total:6.1%}, LOD radius x{lod_radius(1.0, max(have / total, 1e-9)):.2f})")
        assert have == total

        # -- client B: zoomed, filtered view -------------------------------------
        b = server.open_session()
        lo = np.asarray(boiler.domain.lower)
        hi = np.asarray(boiler.domain.upper)
        upper_half = Box(
            (lo[0], lo[1], (lo[2] + hi[2]) / 2), tuple(hi.tolist())
        )
        glo, ghi = server.dataset.attr_ranges["temperature"]
        cool = AttributeFilter("temperature", glo, glo + 0.5 * (ghi - glo))
        print("\nclient B explores the upper half, cooler particles only:")
        for q in (0.25, 1.0):
            inc = server.request(b, q, box=upper_half, filters=[cool])
            print(f"  quality {q:.2f}: +{len(inc):,} points")
            if len(inc):
                assert upper_half.contains_points(inc.positions).all()
                assert (inc.attributes["temperature"] <= cool.hi).all()

        # asking again at the same quality costs nothing
        again = server.request(b, 1.0, box=upper_half, filters=[cool])
        print(f"  repeated request: +{len(again)} points (nothing re-sent)")

        sa, sb = server.session(a), server.session(b)
        print(f"\nserver stats: A sent {sa.bytes_sent / 1e6:.1f} MB in {sa.requests} requests; "
              f"B sent {sb.bytes_sent / 1e6:.1f} MB in {sb.requests} requests")
    print(f"output in {OUT}/")


if __name__ == "__main__":
    main()
