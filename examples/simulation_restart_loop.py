"""A full simulation campaign: run, crash, restart, continue.

Drives the particle shallow-water mini-app (a real time-stepped solver,
not a sampler) through the two-phase I/O layer exactly the way a coupled
application would: checkpoints every N steps into a time-series catalog,
an unplanned "crash", a restart from the newest checkpoint in a fresh
process, and continuation — then verifies the final state matches an
uninterrupted reference run, and renders the surge with the density
projector.

Usage: python examples/simulation_restart_loop.py
"""

import shutil
from pathlib import Path

from repro.driver import IODriver, restart_latest
from repro import machines
from repro.viz import ascii_render, density_projection
from repro.workloads import ShallowWaterSim

OUT = Path(__file__).parent / "campaign_out"
NRANKS = 16
IO_EVERY = 40
PHASE1, PHASE2 = 120, 120


def new_sim() -> ShallowWaterSim:
    return ShallowWaterSim(n_particles=12_000)


def show(sim: ShallowWaterSim, label: str) -> None:
    batch = sim.particles()
    grid = density_projection(batch.positions, axis=1, shape=(64, 10), bounds=sim.domain)
    print(f"\n{label} (step {sim.step_count}, front at x={sim.front_position():.2f}):")
    print(ascii_render(grid))


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    machine = machines.stampede2()

    # --- phase 1: the campaign starts --------------------------------------
    sim = new_sim()
    show(sim, "initial column")
    driver = IODriver(machine, OUT, nranks=NRANKS, io_every=IO_EVERY,
                      target_size=512 * 1024)
    log = driver.run(sim, PHASE1)
    print(f"\nphase 1: wrote checkpoints at steps {log.steps_written} "
          f"(modeled I/O total {log.total_io_seconds * 1e3:.1f} ms)")
    show(sim, "at the crash")

    # --- the job dies here --------------------------------------------------
    del sim, driver
    print("\n*** job killed; restarting from the newest checkpoint ***")

    # --- phase 2: a fresh process resumes -----------------------------------
    resumed = new_sim()
    step = restart_latest(resumed, OUT)
    print(f"restored step {step} with {resumed.n_particles:,} particles")
    driver2 = IODriver(machine, OUT, nranks=NRANKS, io_every=IO_EVERY,
                       target_size=512 * 1024)
    log2 = driver2.run(resumed, PHASE2, write_initial=False)
    print(f"phase 2: extended the series with steps {log2.steps_written}")
    show(resumed, "after the resumed run")

    # --- verify against an uninterrupted reference run ------------------------
    reference = new_sim()
    reference.step(PHASE1 + PHASE2)
    drift = abs(reference.front_position() - resumed.front_position())
    print(f"\nreference front x={reference.front_position():.4f}, "
          f"resumed front x={resumed.front_position():.4f} (drift {drift:.2e})")
    assert drift < 5e-3, "restart diverged from the uninterrupted run"

    from repro.core.timeseries import TimeSeriesDataset

    with TimeSeriesDataset(OUT) as ts:
        print(f"\nseries catalog: steps {ts.steps}")
        print("per-step write seconds:",
              [f"{ts.record(s).write_seconds * 1e3:.1f}ms" for s in ts.steps])
    print(f"output in {OUT}/")


if __name__ == "__main__":
    main()
