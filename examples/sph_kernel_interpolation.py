"""SPH kernel interpolation over fixed-radius neighbor lists.

Writes one dam-break timestep as a multi-file BAT dataset, then
evaluates a cubic-spline smoothed pressure field on a slab of the water
body with :func:`repro.analysis.sph_smooth`. The slab deliberately
straddles leaf-file boundaries: the planner's ghost-region exchange
opens only the boundary strips of neighboring files, never a full
neighbor-file read, and the result is byte-identical to the brute-force
reference engine.

Usage: python examples/sph_kernel_interpolation.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import NeighborRequest, TwoPhaseWriter, machines, open_dataset
from repro.analysis import sph_smooth
from repro.types import Box
from repro.workloads import DamBreak

OUT = Path(__file__).parent / "sph_out"
TIMESTEP = 600
NRANKS = 16
SCALE = 0.02          # ~40k particles: laptop-friendly
H = 0.1               # smoothing length (fixed-radius support)


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    dam = DamBreak()
    data = dam.rank_data(TIMESTEP, NRANKS, scale=SCALE, materialize=True)
    TwoPhaseWriter(machines.testing_machine(), target_size=96 << 10).write(
        data, out_dir=OUT, name=f"ts{TIMESTEP:04d}"
    )

    with open_dataset(OUT / f"ts{TIMESTEP:04d}.meta.json") as ds:
        print(f"dataset: {ds.total_particles:,} particles "
              f"in {ds.metadata.n_files} leaf files")

        # center on one interior leaf file, shrunk just inside its
        # bounds: every neighbor ball at the edge reaches into the
        # adjacent files, which the planner opens as ghost strips only
        leaves = sorted(ds.metadata.leaves, key=lambda l: l.count)
        mid = leaves[len(leaves) // 2].bounds
        eps = 1e-4
        slab = Box(
            tuple(v + eps for v in mid.lower),
            tuple(v - eps for v in mid.upper),
        )

        field = sph_smooth(ds, "pressure", h=H, center_box=slab)
        s = field.result.stats
        print(f"smoothed pressure at {len(field):,} centers "
              f"({s.pairs_tested:,} kernel pairs)")
        print(f"  neighbor lists: mean {field.counts.mean():.1f} "
              f"min {field.counts.min()} max {field.counts.max()}")
        print(f"  files: {s.files_opened} opened "
              f"({s.ghost_files_opened} ghost strips, "
              f"{s.ghost_points:,} ghost candidates), "
              f"{s.pruned_files} never opened")
        print(f"  pressure: mean {np.nanmean(field.values):.1f} "
              f"max {np.nanmax(field.values):.1f}")

        # the brute-force oracle produces the same neighbor lists, bytes
        # and all — the tree engine is an optimization, not an estimate
        check = ds.neighbors(
            NeighborRequest(center_box=slab, radius=H, engine="brute")
        )
        assert np.array_equal(check.keys, field.result.keys)
        print("  verified: tree neighbor lists == brute-force reference")


if __name__ == "__main__":
    main()
