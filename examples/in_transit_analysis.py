"""In-transit analysis: query the BAT on the aggregator, skip the disk.

The paper notes the compacted tree "can be used for in transit
visualization and analysis on the aggregators before or instead of being
written to disk" (§III-C3). This example plays one aggregator: it receives
a timestep's particles, builds the BAT in memory, and immediately runs the
analyses a monitoring pipeline would — attribute histograms, per-region
statistics, a coarse LOD snapshot — then decides whether the step is
interesting enough to persist at all (a common in-situ triggering pattern).

It also demonstrates two §VII extensions: quantile (equi-depth) bitmap
bins for the heavily skewed attribute, and quantized+compressed storage
for the step that does get written.

Usage: python examples/in_transit_analysis.py
"""

import shutil
from pathlib import Path

import numpy as np

from repro import AttributeFilter, BATBuildConfig, Box, ParticleBatch, build_bat
from repro.analysis import attribute_histogram, region_stats
from repro.workloads import CoalBoiler

OUT = Path(__file__).parent / "intransit_out"


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    OUT.mkdir()
    boiler = CoalBoiler()

    for ts in (1001, 2501, 4501):
        # --- the aggregator's view: particles received for its leaf --------
        batch = boiler.sample(ts, 150_000)
        built = build_bat(batch, BATBuildConfig(attribute_binning="equidepth"))

        with built.open() as bat:  # in memory — nothing on disk yet
            # coarse LOD snapshot for a dashboard
            from repro.bat.query import query_file

            coarse, _ = query_file(bat, quality=0.1)

            # temperature histogram + hot-region statistics
            counts, edges = attribute_histogram(bat, "temperature", bins=12)
            lo = np.asarray(boiler.domain.lower)
            hi = np.asarray(boiler.domain.upper)
            upper_quarter = Box(
                (lo[0], lo[1], lo[2] + 0.75 * (hi[2] - lo[2])), tuple(hi.tolist())
            )
            stats = region_stats(bat, ["temperature", "char_mass"], box=upper_quarter)

            hot = stats["temperature"]
            print(f"timestep {ts}: {len(batch):,} particles on this aggregator")
            print(f"  LOD snapshot: {len(coarse):,} points")
            peak_bin = int(np.argmax(counts))
            print(f"  temperature mode: {edges[peak_bin]:.0f}-{edges[peak_bin + 1]:.0f} K")
            print(f"  upper quarter: {hot.count:,} particles, "
                  f"T = {hot.mean:.0f}±{hot.std:.0f} K")

            # in-situ trigger: persist only once material reaches the top
            interesting = hot.count > 0.05 * len(batch)

        if interesting:
            # the persisted copy uses the §VII space extensions
            compact = build_bat(
                batch,
                BATBuildConfig(
                    attribute_binning="equidepth",
                    quantize_positions=True,
                    compress=True,
                ),
            )
            path = OUT / f"ts{ts:06d}.bat"
            compact.write(path)
            saving = 1 - compact.nbytes / built.nbytes
            print(f"  -> persisted {path.name}: {compact.nbytes / 1e6:.1f} MB "
                  f"({saving:.0%} smaller than the uncompressed layout)\n")
        else:
            print("  -> skipped (nothing near the top yet)\n")

    kept = sorted(p.name for p in OUT.glob("*.bat"))
    print(f"persisted steps: {kept}")

    # prove the persisted, quantized+compressed file still answers queries
    if kept:
        from repro.bat import BATFile
        from repro.bat.query import query_file

        with BATFile(OUT / kept[-1]) as f:
            glo, ghi = f.attr_ranges["char_mass"]
            rich, _ = query_file(
                f, filters=[AttributeFilter("char_mass", glo + 0.8 * (ghi - glo), ghi)]
            )
            print(f"char-rich particles in {kept[-1]}: {len(rich):,}")


if __name__ == "__main__":
    main()
