"""Coal Boiler time series: adaptive I/O for a growing, clustered workload.

Reproduces the paper's headline scenario (§VI-A2) end to end at laptop
scale: a synthetic coal-injection simulation whose particle population
grows and drifts writes a series of timesteps through (a) the adaptive
aggregation tree and (b) the AUG baseline, on a virtual Stampede2
partition. Real (scaled-down) BAT files are written for selected steps and
then explored with attribute-filtered visualization queries.

Usage: python examples/coal_boiler_timeseries.py
"""

import shutil
from pathlib import Path

from repro import AttributeFilter, BATDataset, TwoPhaseWriter, machines
from repro.baselines import build_aug_plan
from repro.bench.report import format_table
from repro.workloads import CoalBoiler

OUT = Path(__file__).parent / "coal_out"
MB = 1 << 20
NRANKS = 384
TIMESTEPS = (501, 1501, 2501, 3501, 4501)


def main() -> None:
    shutil.rmtree(OUT, ignore_errors=True)
    machine = machines.stampede2()
    boiler = CoalBoiler()

    # -- I/O scaling over the time series (counts-only, full published sizes)
    rows = []
    for ts in TIMESTEPS:
        data = boiler.rank_data(ts, NRANKS, sample_size=200_000)
        adaptive = TwoPhaseWriter(machine, target_size=8 * MB).write(data)
        aug = TwoPhaseWriter(machine, target_size=8 * MB, strategy=build_aug_plan).write(data)
        rows.append(
            [
                ts,
                f"{data.total_particles / 1e6:.1f}M",
                f"{adaptive.bandwidth / 1e9:.1f}",
                f"{aug.bandwidth / 1e9:.1f}",
                f"{adaptive.bandwidth / aug.bandwidth:.2f}x",
                adaptive.n_files,
                aug.n_files,
            ]
        )
    print(
        format_table(
            ["timestep", "particles", "adaptive GB/s", "AUG GB/s", "speed-up", "adp files", "aug files"],
            rows,
            title=f"Coal Boiler writes @ {NRANKS} virtual ranks, 8MB target (virtual {machine.name})",
        )
    )

    # -- materialize one step for real, then explore it -------------------------
    print("\nwriting a real (1/200-scale) timestep 4501 ...")
    data = boiler.rank_data(4501, 64, scale=5e-3, materialize=True)
    report = TwoPhaseWriter(machine, target_size=1 * MB).write(
        data, out_dir=OUT, name="ts4501"
    )
    print(f"  {report.n_files} BAT files, {data.total_particles:,} particles")

    with BATDataset(report.metadata_path) as ds:
        glo, ghi = ds.attr_ranges["temperature"]
        hot_cut = glo + 0.8 * (ghi - glo)
        hot, stats = ds.query(filters=[AttributeFilter("temperature", hot_cut, ghi)])
        print(f"  hottest 20% of the temperature range: {len(hot):,} particles "
              f"(tested {stats.points_tested:,} of {ds.total_particles:,})")

        coarse, _ = ds.query(quality=0.2)
        print(f"  coarse preview at quality 0.2: {len(coarse):,} particles, "
              f"mean height {coarse.positions[:, 2].mean():.2f} "
              f"(full data: {ds.query()[0].positions[:, 2].mean():.2f})")

    print(f"\noutput in {OUT}/")


if __name__ == "__main__":
    main()
