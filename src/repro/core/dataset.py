"""Whole-dataset visualization reads (paper §V).

A :class:`BATDataset` opens a written timestep through its top-level
metadata and serves spatial, attribute, and progressive multiresolution
queries across all leaf files as if the data set were a single file. Leaf
files are opened lazily and memory-mapped; before any file is opened, the
query planner (:mod:`repro.core.planner`) intersects the query box with
the Aggregation Tree leaf bounds and tests attribute filters against the
per-leaf root bitmaps, so pruned files are never touched — not even to be
faulted into the file-handle cache.
"""

from __future__ import annotations

import threading
from functools import partial
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from ..api import (
    NeighborRequest,
    NeighborResult,
    QueryRequest,
    QueryResult,
    StreamIncrement,
    warn_deprecated,
)
from ..bat.file import BATFile
from ..bat.filecache import BATFileCache
from ..bat.neighbors import (
    NeighborStats,
    box_members,
    brute_neighbors,
    knn_neighbors,
    materialize_rows,
    radius_neighbors,
)
from ..bat.query import (
    QueryStats,
    default_quality_ladder,
    query_file,
    stream_query_file,
)
from ..errors import IntegrityError, InvalidRequestError, LeafUnavailableError
from ..parallel import get_executor
from ..types import Box, ParticleBatch
from .metadata import DatasetMetadata
from .planner import NeighborQueryPlan, PlanCache, QueryPlan

__all__ = ["BATDataset"]


def _query_leaf(directory: str, kwargs: dict, item):
    """Run one file's query in an executor worker.

    ``item`` is ``(leaf_index, file_name, box)`` — the box comes from the
    file's plan entry (``None`` when the query box contains the whole
    leaf). Workers open their own handle (mmaps don't cross process
    boundaries and per-task handles keep threads independent); the serial
    path uses the dataset's LRU cache instead.

    Returns ``(leaf_index, batch, stats, error)`` where ``error`` is
    ``None`` on success or a picklable ``(kind, message)`` pair (``kind``
    in ``"missing"``/``"corrupt"``) — exceptions with keyword-only
    constructors don't round-trip through process pools, and the dataset
    decides whether to quarantine or raise, not the worker.
    """
    leaf_index, file_name, box = item
    try:
        f = BATFile(Path(directory) / file_name)
    except FileNotFoundError as exc:
        return leaf_index, None, None, ("missing", str(exc))
    except IntegrityError as exc:
        return leaf_index, None, None, ("corrupt", str(exc))
    try:
        batch, stats = query_file(f, box=box, **kwargs)
        # the per-task handle opened at 0, so its counter is this query's
        stats.decoded_bytes = f.decoded_bytes
    except IntegrityError as exc:
        return leaf_index, None, None, ("corrupt", str(exc))
    finally:
        f.close()
    return leaf_index, batch, stats, None


class BATDataset:
    """Read-side facade over one written timestep.

    ``executor`` selects the execution layer for multi-file queries (a
    spec string like ``"process:4"``, an :class:`~repro.parallel.Executor`
    instance, or ``None`` for the serial default); ``file_cache`` bounds
    how many leaf files stay open between queries and may be shared with
    other datasets (e.g. across the steps of a time series).
    """

    def __init__(
        self,
        metadata_path,
        executor=None,
        file_cache: BATFileCache | None = None,
        plan_cache: PlanCache | None = None,
    ):
        self.metadata_path = Path(metadata_path)
        self.metadata = DatasetMetadata.load(self.metadata_path)
        if self.metadata.layout != "bat":
            raise ValueError(
                f"dataset uses the {self.metadata.layout!r} layout; BATDataset "
                "only reads 'bat' files (see repro.layouts for the reader)"
            )
        self.directory = self.metadata_path.parent
        self.executor = get_executor(executor)
        self._cache = file_cache if file_cache is not None else BATFileCache()
        self._owns_cache = file_cache is None
        # the serve layer injects a plan cache it also reads stats from;
        # note plans are keyed by (box, filters, exclude) only, so a shared
        # cache must never span datasets with different metadata
        self._plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self._owns_plan_cache = plan_cache is None
        # leaf_index -> reason for every leaf proven corrupt or missing;
        # quarantined leaves are excluded from all subsequent plans
        self._quarantine_lock = threading.Lock()
        self._quarantined: dict[int, str] = {}
        #: optional access-telemetry sink attached by the serve layer (a
        #: :meth:`repro.serve.metrics.AccessTelemetry.bind` handle): gets
        #: one ``view(box, filters, columns)`` per executed query and one
        #: ``leaf(leaf_index, points, decoded_bytes)`` per file the query
        #: actually opened — the reorganizer's evidence of what is hot
        self.telemetry = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._owns_plan_cache:
            self._plan_cache.clear()
        if self._owns_cache:
            self._cache.close()
        else:
            # shared cache: only drop this dataset's entries
            for leaf in self.metadata.leaves:
                self._cache.drop(self.directory / leaf.file_name)

    def __enter__(self) -> "BATDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------------

    @property
    def bounds(self) -> Box:
        return self.metadata.bounds

    @property
    def file_cache(self) -> BATFileCache:
        """The (possibly shared) LRU of open leaf-file handles."""
        return self._cache

    @property
    def plan_cache(self) -> PlanCache:
        """The (possibly shared) memo of query plans."""
        return self._plan_cache

    @property
    def n_files(self) -> int:
        return self.metadata.n_files

    @property
    def total_particles(self) -> int:
        return self.metadata.total_particles

    @property
    def attr_ranges(self) -> dict[str, tuple[float, float]]:
        """Global per-attribute value ranges."""
        return self.metadata.attr_ranges

    def file(self, leaf_index: int) -> BATFile:
        """Open the BAT file of one leaf through the LRU handle cache."""
        leaf = self.metadata.leaves[leaf_index]
        return self._cache.get(self.directory / leaf.file_name)

    def attribute_specs(self) -> list:
        """Attribute specs without faulting new files into the cache.

        Prefers the manifest's ``attr_dtypes``; older manifests fall back
        to an already-cached handle, then to a transient (uncached) open
        of the first leaf — a planner-skipped file must never enter the
        LRU cache as a side effect of an empty result.
        """
        specs = self.metadata.attribute_specs()
        if specs is not None:
            return specs
        if not self.metadata.leaves:
            return []
        for leaf in self.metadata.leaves:
            cached = self._cache.peek(self.directory / leaf.file_name)
            if cached is not None:
                return cached.attribute_specs()
        first = self.metadata.leaves[0]
        with BATFile(self.directory / first.file_name) as f:
            return f.attribute_specs()

    # -- quarantine ------------------------------------------------------------

    def quarantine_leaf(self, leaf_index: int, reason: str) -> None:
        """Exclude one leaf file from all future plans (corrupt/missing).

        Also drops any cached handle so a repaired file is re-opened and
        re-verified after :meth:`clear_quarantine`.
        """
        leaf = self.metadata.leaves[leaf_index]
        with self._quarantine_lock:
            self._quarantined[leaf_index] = reason
        self._cache.drop(self.directory / leaf.file_name)

    def quarantined(self) -> dict[int, str]:
        """Snapshot of quarantined leaves: ``{leaf_index: reason}``."""
        with self._quarantine_lock:
            return dict(self._quarantined)

    def clear_quarantine(self) -> None:
        """Forget all quarantined leaves (e.g. after repairing files)."""
        with self._quarantine_lock:
            self._quarantined.clear()

    def _exclude(self) -> frozenset:
        with self._quarantine_lock:
            return frozenset(self._quarantined)

    # -- queries ----------------------------------------------------------------

    def plan(self, box: Box | None = None, filters=()) -> QueryPlan:
        """The (memoized) per-file plan for one query shape.

        Quarantined leaves are excluded; the plan's ``excluded_files``
        counts relevant files the query will not see.
        """
        return self._plan_cache.get_or_build(
            self.metadata, box, tuple(filters), exclude=self._exclude()
        )

    def _candidate_leaves(self, box, filters) -> list[int]:
        """Leaf indices the planner keeps (kept for compatibility/tests)."""
        return [fp.leaf_index for fp in self.plan(box, tuple(filters)).files]

    #: legacy positional order of :meth:`query` before :class:`QueryRequest`
    _LEGACY_QUERY_ORDER = (
        "quality", "prev_quality", "box", "filters", "callback",
        "attributes", "engine", "plan", "on_error",
    )

    def query(self, request=None, *args, plan=None, callback=None, **kwargs):
        """Run one (progressive) query across the whole data set.

        The current form takes a :class:`~repro.api.QueryRequest` (or
        nothing, for a full-quality read of everything) and returns a
        :class:`~repro.api.QueryResult`::

            result = ds.query(QueryRequest(quality=0.3, box=box))
            batch, stats = result  # iterates as (batch, stats)

        ``plan`` may pass a precomputed :class:`QueryPlan` (e.g. a
        streaming session's; it must match the request's box/filters);
        ``callback`` streams chunks instead of materializing a batch
        (``result.batch`` is then ``None``).

        The pre-1.x keyword signature — ``query(quality=..., box=...,
        filters=..., attributes=..., engine=..., on_error=...)`` — still
        works as a shim: it emits one :class:`DeprecationWarning` per
        call form and returns the old ``(batch, stats)`` tuple.
        """
        if args or kwargs or not isinstance(request, (QueryRequest, type(None))):
            req, plan, callback = self._coerce_legacy_query(
                request, args, kwargs, plan, callback
            )
            result = self._query_request(req, plan=plan, callback=callback)
            return result.batch, result.stats
        return self._query_request(
            request if request is not None else QueryRequest(),
            plan=plan, callback=callback,
        )

    def _coerce_legacy_query(self, request, args, kwargs, plan, callback):
        """Map a pre-``QueryRequest`` call onto (request, plan, callback)."""
        positional = () if request is None else (request, *args)
        if len(positional) > len(self._LEGACY_QUERY_ORDER):
            raise TypeError(
                f"query() takes at most {len(self._LEGACY_QUERY_ORDER)} "
                f"positional arguments ({len(positional)} given)"
            )
        legacy = dict(zip(self._LEGACY_QUERY_ORDER, positional))
        for name, value in kwargs.items():
            if name not in self._LEGACY_QUERY_ORDER:
                raise TypeError(f"query() got an unexpected keyword argument {name!r}")
            if name in legacy:
                raise TypeError(f"query() got multiple values for argument {name!r}")
            legacy[name] = value
        warn_deprecated(
            "BATDataset.query(" + ", ".join(sorted(legacy)) + ")",
            "pass a repro.QueryRequest (returns a QueryResult)",
            stacklevel=4,
        )
        plan = legacy.pop("plan", plan)
        callback = legacy.pop("callback", callback)
        if "attributes" in legacy:
            # the legacy kwarg always returned positions alongside the
            # selected attributes; the modern equivalent must opt back in
            legacy["columns"] = (*legacy.pop("attributes"), "positions")
        return QueryRequest(**legacy), plan, callback

    def _materialized_columns(self, req: QueryRequest) -> list[str]:
        """The column names ``req`` materializes — for access telemetry."""
        if req.columns is not None:
            return list(req.columns)
        return ["positions", *self.metadata.attr_dtypes]

    def _query_request(
        self, req: QueryRequest, plan: QueryPlan | None = None, callback=None
    ) -> QueryResult:
        """Execute one :class:`QueryRequest` across every candidate leaf.

        Same semantics as :func:`repro.bat.query.query_file`, with the
        planner pruning which leaf files get touched at all. Candidate
        files fan out across the dataset's executor (callback queries
        stay serial so the callback observes file order); results and
        stats are merged in file order, so every executor returns
        identical output.

        ``req.on_error`` decides what a corrupt or missing leaf file
        does: ``"raise"`` surfaces a clear
        :class:`~repro.errors.LeafUnavailableError` /
        :class:`~repro.errors.IntegrityError` naming the leaf and
        dataset; ``"degrade"`` quarantines the leaf and returns the
        partial result from the surviving files, with
        ``stats.quarantined_files`` counting what the query did not see.
        Only corruption and absence degrade — user errors (bad quality,
        unknown filter attribute) always raise.
        """
        on_error = req.on_error
        box = req.box
        filters = req.filters
        # ``columns`` may name the pseudo-column "positions"; anything else
        # is an attribute. Omitting it from an explicit selection projects
        # positions away entirely (the batch carries a count instead).
        attributes = None
        with_positions = True
        if req.columns is not None:
            attributes = [c for c in req.columns if c != "positions"]
            with_positions = "positions" in req.columns
        if plan is None:
            plan = self.plan(box, filters)
        elif plan.box != box or plan.filters != filters:
            raise InvalidRequestError(
                "plan was built for a different box/filters shape"
            )
        kwargs = dict(
            quality=req.quality,
            prev_quality=req.prev_quality,
            filters=filters,
            attributes=attributes,
            engine=req.engine,
            with_positions=with_positions,
        )
        newly_failed = 0
        indexed_stats: list[tuple[int, QueryStats]] = []
        parts = []
        if callback is None and self.executor.kind != "serial" and len(plan.files) > 1:
            if self.executor.kind == "thread":
                # threads share the dataset's LRU handle cache (it is
                # thread-safe): no per-task reopen, no re-running the
                # whole-file section CRCs a fresh BATFile pays on open
                task_fn = partial(self._query_leaf_shared, kwargs)
            else:
                # processes can't share mmaps; workers open their own handle
                task_fn = partial(_query_leaf, str(self.directory), kwargs)
            tasks = self.executor.map(
                task_fn,
                [(fp.leaf_index, fp.file_name, fp.box) for fp in plan.files],
            )
            for i, res, s, err in sorted(tasks, key=lambda t: t[0]):
                if err is not None:
                    self._leaf_failed(i, err[0], err[1], on_error)
                    newly_failed += 1
                    continue
                indexed_stats.append((i, s))
                if res is not None and len(res):
                    parts.append(res)
        else:
            for fp in plan.files:
                try:
                    f = self.file(fp.leaf_index)
                    decoded_before = f.decoded_bytes
                    res, s = query_file(f, box=fp.box, callback=callback, **kwargs)
                except FileNotFoundError as exc:
                    self._leaf_failed(fp.leaf_index, "missing", str(exc), on_error)
                    newly_failed += 1
                    continue
                except IntegrityError as exc:
                    self._leaf_failed(fp.leaf_index, "corrupt", str(exc), on_error)
                    newly_failed += 1
                    continue
                s.decoded_bytes = f.decoded_bytes - decoded_before
                indexed_stats.append((fp.leaf_index, s))
                if res is not None and len(res):
                    parts.append(res)
        stats = QueryStats.merge_ordered(indexed_stats)
        stats.pruned_files += plan.pruned_files
        stats.quarantined_files += plan.excluded_files + newly_failed
        if self.telemetry is not None:
            self.telemetry.view(box, filters, self._materialized_columns(req))
            for i, s in indexed_stats:
                self.telemetry.leaf(
                    i, points=s.points_returned, decoded_bytes=s.decoded_bytes
                )
        if callback is not None:
            return QueryResult(batch=None, stats=stats)
        if not parts:
            specs = self.attribute_specs()
            if attributes is not None:
                specs = [sp for sp in specs if sp.name in attributes]
            return QueryResult(
                batch=ParticleBatch.empty(specs, with_positions=with_positions),
                stats=stats,
            )
        return QueryResult(batch=ParticleBatch.concatenate(parts), stats=stats)

    def stream(self, request=None, ladder=None, plan=None):
        """Stream one query as per-rung :class:`~repro.api.StreamIncrement`s.

        The streaming execution mode of :meth:`query`: instead of one
        gathered batch, returns a generator yielding one increment per
        quality rung of ``ladder`` (default:
        :func:`~repro.bat.query.default_quality_ladder` between the
        request's ``prev_quality`` and ``quality``) as the frontier
        engine materializes it. Files are traversed through stateful
        per-treelet streams — pruning runs once, each rung only touches
        the depth window it adds — and their handles are leased from the
        file cache for the stream's lifetime.

        Invariants (property-tested):

        - reassembling all increments
          (:func:`~repro.api.reassemble_stream`) is byte-identical to
          ``self.query(request)``;
        - truncating after any rung leaves exactly the direct result at
          that rung's quality, refinable later via ``prev_quality``.

        Under ``on_error="degrade"`` a leaf failing mid-stream is
        quarantined and dropped from the remaining rungs; increments
        from then on are flagged ``partial`` (rows the dead leaf already
        delivered stay in earlier increments, so a partial stream — like
        a partial one-shot result — is not byte-comparable and must not
        be cached). Streams execute serially across files: the serve
        tier's parallelism is across sessions, not within one stream.
        """
        req = request if request is not None else QueryRequest()
        if not isinstance(req, QueryRequest):
            raise InvalidRequestError("stream() takes a repro.QueryRequest")
        if ladder is None:
            ladder = default_quality_ladder(req.quality, req.prev_quality)
        ladder = tuple(float(q) for q in ladder)
        if not ladder or ladder[-1] != req.quality:
            raise InvalidRequestError("ladder must end exactly at request.quality")
        lo = req.prev_quality
        for q in ladder:
            if not lo <= q <= 1.0:
                raise InvalidRequestError(
                    "ladder must be non-descending within [prev_quality, 1]"
                )
            lo = q
        attributes = None
        with_positions = True
        if req.columns is not None:
            attributes = [c for c in req.columns if c != "positions"]
            with_positions = "positions" in req.columns
        if plan is None:
            plan = self.plan(req.box, req.filters)
        elif plan.box != req.box or plan.filters != req.filters:
            raise InvalidRequestError(
                "plan was built for a different box/filters shape"
            )
        return self._stream_rungs(req, ladder, plan, attributes, with_positions)

    def neighbors(
        self, request: NeighborRequest, plan: NeighborQueryPlan | None = None
    ) -> NeighborResult:
        """Run one k-NN or fixed-radius neighbor-list query.

        Centers come from ``request.points`` or from the stored
        particles inside ``request.center_box`` (canonical file/treelet
        /slot order, also returned as ``result.center_keys``). The
        planner's ghost-region layer decides which leaf files to open:
        files beyond the halo expansion of the query region are skipped
        unopened, boundary files are opened only for the ghost strip the
        query balls reach into, and the k-NN engine additionally skips
        files dynamically once every center's k-th-neighbor bound falls
        short of their bounds. Per-center lists are ordered by
        ``(distance, leaf, treelet, slot)`` — deterministic across
        engines, executors, and shard layouts; ``engine="brute"`` is the
        exhaustive byte-identical reference.

        ``request.on_error`` matches :meth:`query`: ``"degrade"``
        quarantines corrupt/missing leaves and returns the partial
        result (``stats.quarantined_files`` counts what was lost).
        """
        if not isinstance(request, NeighborRequest):
            raise InvalidRequestError("neighbors() takes a repro.NeighborRequest")
        stats = NeighborStats()
        on_error = request.on_error
        attributes = None
        with_positions = True
        if request.columns is not None:
            attributes = [c for c in request.columns if c != "positions"]
            with_positions = "positions" in request.columns
        specs = self.attribute_specs()
        known = {sp.name for sp in specs}
        for f in request.filters:
            if f.name not in known:
                raise KeyError(
                    f"no attribute {f.name!r} in {self.metadata_path.name!r}"
                )
        if attributes is not None:
            for name in attributes:
                if name not in known:
                    raise KeyError(
                        f"no attribute {name!r} in {self.metadata_path.name!r}"
                    )

        opened: dict[int, tuple[BATFile, int]] = {}
        failed: set[int] = set()

        def open_leaf(leaf_index: int, action: str | None = None):
            ent = opened.get(leaf_index)
            if ent is not None:
                return ent[0]
            if leaf_index in failed:
                return None
            try:
                f = self.file(leaf_index)
            except FileNotFoundError as exc:
                self._leaf_failed(leaf_index, "missing", str(exc), on_error)
                failed.add(leaf_index)
                stats.quarantined_files += 1
                return None
            except IntegrityError as exc:
                self._leaf_failed(leaf_index, "corrupt", str(exc), on_error)
                failed.add(leaf_index)
                stats.quarantined_files += 1
                return None
            opened[leaf_index] = (f, f.decoded_bytes)
            stats.files_opened += 1
            if action == "ghost":
                stats.ghost_files_opened += 1
            return f

        def open_plan_file(fp):
            return open_leaf(fp.leaf_index, fp.action)

        # -- resolve centers ------------------------------------------------
        center_keys = None
        if request.points is not None:
            centers = np.asarray(request.points, dtype=np.float64).reshape(-1, 3)
        else:
            cplan = self._plan_cache.get_or_build(
                self.metadata, request.center_box, request.filters,
                exclude=self._exclude(),
            )
            pos_parts, key_parts = [], []
            for fp in cplan.files:
                f = open_leaf(fp.leaf_index)
                if f is None:
                    continue
                pos, keys = box_members(
                    f, fp.leaf_index, request.center_box, request.filters, stats
                )
                if len(pos):
                    pos_parts.append(pos)
                    key_parts.append(keys)
            if pos_parts:
                centers = np.concatenate(pos_parts, axis=0)
                center_keys = np.concatenate(key_parts, axis=0)
            else:
                centers = np.empty((0, 3), dtype=np.float64)
                center_keys = np.empty((0, 3), dtype=np.int64)
        stats.centers = len(centers)

        # -- plan + engines -------------------------------------------------
        region = request.region
        if plan is None:
            plan = self._plan_cache.get_or_build_neighbor(
                self.metadata, region, request.radius, request.filters,
                exclude=self._exclude(),
            )
        elif (
            plan.region != region or plan.radius != request.radius
            or plan.filters != request.filters
        ):
            raise InvalidRequestError(
                "plan was built for a different region/radius/filters shape"
            )
        stats.pruned_files += plan.pruned_files
        stats.quarantined_files += plan.excluded_files

        if len(centers) == 0:
            offsets = np.zeros(1, dtype=np.int64)
            keys = np.empty((0, 3), dtype=np.int64)
            d2 = np.empty(0, dtype=np.float64)
        elif request.engine == "brute":
            excl = self._exclude()
            brute_files = [
                SimpleNamespace(
                    leaf_index=leaf.leaf_index,
                    file_name=leaf.file_name,
                    action="full",
                )
                for leaf in self.metadata.leaves
                if leaf.leaf_index not in excl
            ]
            offsets, keys, d2 = brute_neighbors(
                brute_files, open_plan_file, centers, request.k,
                request.radius, request.filters, stats,
            )
        elif request.radius is not None:
            offsets, keys, d2 = radius_neighbors(
                plan.files, open_plan_file, centers, request.radius,
                region, request.filters, stats,
            )
        else:
            offsets, keys, d2 = knn_neighbors(
                plan.files, open_plan_file, centers, request.k,
                request.filters, stats,
            )
        stats.points_returned = int(offsets[-1])

        # -- materialize the selected rows ---------------------------------
        tv_cache: dict[tuple[int, int], object] = {}
        rank_to_leaf: dict[int, np.ndarray] = {}

        def open_treelet(leaf_index: int, trank: int):
            tv = tv_cache.get((leaf_index, trank))
            if tv is None:
                f = open_leaf(leaf_index)
                inv = rank_to_leaf.get(leaf_index)
                if inv is None:
                    inv = rank_to_leaf[leaf_index] = np.argsort(
                        f.shallow_leaf_visit_rank()
                    )
                tv = tv_cache[(leaf_index, trank)] = f.treelet(int(inv[trank]))
            return tv

        batch = materialize_rows(
            open_treelet, keys, specs, attributes, with_positions
        )

        # -- telemetry + decode accounting ---------------------------------
        leaf_rows: dict[int, int] = {}
        if len(keys):
            uniq, cnt = np.unique(keys[:, 0], return_counts=True)
            leaf_rows = dict(zip(uniq.tolist(), cnt.tolist()))
        for leaf_index, (f, before) in opened.items():
            stats.decoded_bytes += max(f.decoded_bytes - before, 0)
        if self.telemetry is not None:
            self.telemetry.view(
                region, request.filters, self._materialized_columns(request)
            )
            for leaf_index, (f, before) in opened.items():
                self.telemetry.leaf(
                    leaf_index,
                    points=leaf_rows.get(leaf_index, 0),
                    decoded_bytes=max(f.decoded_bytes - before, 0),
                )
        return NeighborResult(
            centers=centers,
            offsets=offsets,
            batch=batch,
            distances=np.sqrt(d2),
            keys=keys,
            center_keys=center_keys,
            stats=stats,
        )

    def _stream_rungs(self, req, ladder, plan, attributes, with_positions):
        stats = QueryStats()
        stats.pruned_files += plan.pruned_files
        stats.quarantined_files += plan.excluded_files
        partial = False
        # per-leaf telemetry gathered over the stream's whole life: the
        # handle and its decode counter at stream start, points delivered
        leaf_handles: dict[int, tuple] = {}
        leaf_points: dict[int, int] = {}
        with self._cache.lease(
            [self.directory / fp.file_name for fp in plan.files]
        ):
            gens = []  # [(file_rank, leaf_index, per-file increment generator)]
            for file_rank, fp in enumerate(plan.files):
                try:
                    f = self.file(fp.leaf_index)
                    leaf_handles[fp.leaf_index] = (f, f.decoded_bytes)
                except FileNotFoundError as exc:
                    self._leaf_failed(fp.leaf_index, "missing", str(exc), req.on_error)
                    stats.quarantined_files += 1
                    partial = True
                    continue
                except IntegrityError as exc:
                    self._leaf_failed(fp.leaf_index, "corrupt", str(exc), req.on_error)
                    stats.quarantined_files += 1
                    partial = True
                    continue
                gens.append(
                    (
                        file_rank,
                        fp.leaf_index,
                        stream_query_file(
                            f,
                            ladder,
                            prev_quality=req.prev_quality,
                            box=fp.box,
                            filters=req.filters,
                            attributes=attributes,
                            with_positions=with_positions,
                            stats=stats,
                        ),
                    )
                )
            try:
                yield from self._stream_ladder(
                    req, ladder, gens, stats, partial, attributes,
                    with_positions, leaf_points,
                )
            finally:
                # record what the stream actually touched, even when the
                # consumer closed it early at a rung boundary (shedding)
                if self.telemetry is not None:
                    self.telemetry.view(
                        req.box, req.filters, self._materialized_columns(req)
                    )
                    for leaf_index, (f, decoded_before) in leaf_handles.items():
                        self.telemetry.leaf(
                            leaf_index,
                            points=leaf_points.get(leaf_index, 0),
                            decoded_bytes=max(f.decoded_bytes - decoded_before, 0),
                        )

    def _stream_ladder(
        self, req, ladder, gens, stats, partial, attributes,
        with_positions, leaf_points,
    ):
        specs = None
        prev = req.prev_quality
        for q in ladder:
            parts: list[ParticleBatch] = []
            orders: list[np.ndarray] = []
            dead: list[int] = []
            for slot, (file_rank, leaf_index, gen) in enumerate(gens):
                try:
                    inc = next(gen)
                except FileNotFoundError as exc:
                    self._leaf_failed(leaf_index, "missing", str(exc), req.on_error)
                    stats.quarantined_files += 1
                    partial = True
                    dead.append(slot)
                    continue
                except IntegrityError as exc:
                    self._leaf_failed(leaf_index, "corrupt", str(exc), req.on_error)
                    stats.quarantined_files += 1
                    partial = True
                    dead.append(slot)
                    continue
                if inc.count:
                    leaf_points[leaf_index] = (
                        leaf_points.get(leaf_index, 0) + inc.count
                    )
                    parts.append(
                        ParticleBatch(
                            inc.positions, inc.attributes, count=inc.count
                        )
                    )
                    okeys = np.empty((inc.count, 3), dtype=np.int64)
                    okeys[:, 0] = file_rank
                    okeys[:, 1] = inc.treelet_rank
                    okeys[:, 2] = inc.slots
                    orders.append(okeys)
            for slot in reversed(dead):
                gens.pop(slot)[2].close()
            if parts:
                batch = (
                    ParticleBatch.concatenate(parts) if len(parts) > 1 else parts[0]
                )
                order = (
                    np.concatenate(orders, axis=0) if len(orders) > 1 else orders[0]
                )
            else:
                if specs is None:
                    specs = self.attribute_specs()
                    if attributes is not None:
                        specs = [sp for sp in specs if sp.name in attributes]
                batch = ParticleBatch.empty(specs, with_positions=with_positions)
                order = np.empty((0, 3), dtype=np.int64)
            yield StreamIncrement(
                quality=q,
                prev_quality=prev,
                batch=batch,
                order=order,
                stats=stats,
                partial=partial,
            )
            prev = q

    def _query_leaf_shared(self, kwargs: dict, item):
        """Thread-executor work unit: query one leaf via the shared cache.

        Mirrors :func:`_query_leaf`'s return contract but reuses (and
        populates) the dataset's handle cache instead of opening a
        throwaway ``BATFile`` per task.
        """
        leaf_index, file_name, box = item
        try:
            f = self._cache.get(self.directory / file_name)
            # decode accounting is a per-handle counter shared by all
            # threads; the delta is approximate under concurrent queries
            # of the same leaf, but the sum across a quiet service is exact
            decoded_before = f.decoded_bytes
            batch, stats = query_file(f, box=box, **kwargs)
        except FileNotFoundError as exc:
            return leaf_index, None, None, ("missing", str(exc))
        except IntegrityError as exc:
            return leaf_index, None, None, ("corrupt", str(exc))
        stats.decoded_bytes = max(f.decoded_bytes - decoded_before, 0)
        return leaf_index, batch, stats, None

    def _leaf_failed(self, leaf_index: int, kind: str, message: str,
                     on_error: str) -> None:
        """One leaf file turned out corrupt/missing mid-query.

        ``"degrade"`` quarantines it (future plans exclude it up front);
        ``"raise"`` surfaces a clear error naming the leaf and dataset.
        """
        leaf = self.metadata.leaves[leaf_index]
        path = str(self.directory / leaf.file_name)
        if on_error == "degrade":
            self.quarantine_leaf(leaf_index, message)
            return
        context = (
            f"leaf file {leaf.file_name!r} (leaf {leaf_index}) of dataset "
            f"{self.metadata_path.name!r}"
        )
        if kind == "missing":
            raise LeafUnavailableError(
                f"{context} is missing: {message}",
                leaf_index=leaf_index, path=path,
            )
        raise IntegrityError(f"{context} is corrupt: {message}", path=path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BATDataset({str(self.metadata_path)!r}, files={self.n_files}, "
            f"particles={self.total_particles})"
        )
