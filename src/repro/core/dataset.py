"""Whole-dataset visualization reads (paper §V).

A :class:`BATDataset` opens a written timestep through its top-level
metadata and serves spatial, attribute, and progressive multiresolution
queries across all leaf files as if the data set were a single file. Leaf
files are opened lazily and memory-mapped; the Aggregation Tree prunes
which leaves a query touches, and the global-range bitmaps in the metadata
prune attribute-filtered queries before any file is opened.
"""

from __future__ import annotations

from functools import partial
from pathlib import Path

from ..bat.file import BATFile
from ..bat.filecache import BATFileCache
from ..bat.query import AttributeFilter, QueryStats, query_file
from ..bitmaps import query_bitmap
from ..parallel import get_executor
from ..types import Box, ParticleBatch
from .metadata import DatasetMetadata

__all__ = ["BATDataset"]


def _query_leaf(directory: str, kwargs: dict, item):
    """Run one file's query in an executor worker.

    ``item`` is ``(leaf_index, file_name)``. Workers open their own handle
    (mmaps don't cross process boundaries and per-task handles keep
    threads independent); the serial path uses the dataset's LRU cache
    instead.
    """
    leaf_index, file_name = item
    f = BATFile(Path(directory) / file_name)
    try:
        batch, stats = query_file(f, **kwargs)
    finally:
        f.close()
    return leaf_index, batch, stats


class BATDataset:
    """Read-side facade over one written timestep.

    ``executor`` selects the execution layer for multi-file queries (a
    spec string like ``"process:4"``, an :class:`~repro.parallel.Executor`
    instance, or ``None`` for the serial default); ``file_cache`` bounds
    how many leaf files stay open between queries and may be shared with
    other datasets (e.g. across the steps of a time series).
    """

    def __init__(self, metadata_path, executor=None, file_cache: BATFileCache | None = None):
        self.metadata_path = Path(metadata_path)
        self.metadata = DatasetMetadata.load(self.metadata_path)
        if self.metadata.layout != "bat":
            raise ValueError(
                f"dataset uses the {self.metadata.layout!r} layout; BATDataset "
                "only reads 'bat' files (see repro.layouts for the reader)"
            )
        self.directory = self.metadata_path.parent
        self.executor = get_executor(executor)
        self._cache = file_cache if file_cache is not None else BATFileCache()
        self._owns_cache = file_cache is None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._owns_cache:
            self._cache.close()
        else:
            # shared cache: only drop this dataset's entries
            for leaf in self.metadata.leaves:
                self._cache.drop(self.directory / leaf.file_name)

    def __enter__(self) -> "BATDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------------

    @property
    def bounds(self) -> Box:
        return self.metadata.bounds

    @property
    def n_files(self) -> int:
        return self.metadata.n_files

    @property
    def total_particles(self) -> int:
        return self.metadata.total_particles

    @property
    def attr_ranges(self) -> dict[str, tuple[float, float]]:
        """Global per-attribute value ranges."""
        return self.metadata.attr_ranges

    def file(self, leaf_index: int) -> BATFile:
        """Open the BAT file of one leaf through the LRU handle cache."""
        leaf = self.metadata.leaves[leaf_index]
        return self._cache.get(self.directory / leaf.file_name)

    # -- queries ----------------------------------------------------------------

    def _candidate_leaves(self, box, filters) -> list[int]:
        leaves = (
            self.metadata.query_box(box)
            if box is not None
            else [l.leaf_index for l in self.metadata.leaves]
        )
        if not filters:
            return leaves
        out = []
        for idx in leaves:
            leaf = self.metadata.leaves[idx]
            keep = True
            for f in filters:
                glo, ghi = self.metadata.attr_ranges[f.name]
                q = int(query_bitmap(f.lo, f.hi, glo, ghi))
                if leaf.global_bitmaps.get(f.name, 0xFFFFFFFF) & q == 0:
                    keep = False
                    break
            if keep:
                out.append(idx)
        return out

    def query(
        self,
        quality: float = 1.0,
        prev_quality: float = 0.0,
        box: Box | None = None,
        filters=(),
        callback=None,
        attributes: list[str] | None = None,
    ) -> tuple[ParticleBatch | None, QueryStats]:
        """Run one (progressive) query across the whole data set.

        Same semantics as :func:`repro.bat.query.query_file`, with the
        metadata pruning which leaf files get touched at all. Candidate
        files fan out across the dataset's executor (callback queries stay
        serial so the callback observes file order); results and stats are
        merged in file order, so every executor returns identical output.
        """
        filters = tuple(filters)
        candidates = self._candidate_leaves(box, filters)
        kwargs = dict(
            quality=quality,
            prev_quality=prev_quality,
            box=box,
            filters=filters,
            attributes=attributes,
        )
        if callback is None and self.executor.kind != "serial" and len(candidates) > 1:
            tasks = self.executor.map(
                partial(_query_leaf, str(self.directory), kwargs),
                [(idx, self.metadata.leaves[idx].file_name) for idx in candidates],
            )
            ordered = sorted(tasks, key=lambda t: t[0])
            stats = QueryStats.merge_ordered([(i, s) for i, _, s in ordered])
            parts = [res for _, res, _ in ordered if res is not None and len(res)]
        else:
            indexed_stats: list[tuple[int, QueryStats]] = []
            parts = []
            for idx in candidates:
                res, s = query_file(self.file(idx), callback=callback, **kwargs)
                indexed_stats.append((idx, s))
                if res is not None and len(res):
                    parts.append(res)
            stats = QueryStats.merge_ordered(indexed_stats)
        if callback is not None:
            return None, stats
        if not parts:
            specs = []
            if self.metadata.leaves:
                with_file = self.file(self.metadata.leaves[0].leaf_index)
                specs = with_file.attribute_specs()
                if attributes is not None:
                    specs = [sp for sp in specs if sp.name in attributes]
            return ParticleBatch.empty(specs), stats
        return ParticleBatch.concatenate(parts), stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BATDataset({str(self.metadata_path)!r}, files={self.n_files}, "
            f"particles={self.total_particles})"
        )
