"""Whole-dataset visualization reads (paper §V).

A :class:`BATDataset` opens a written timestep through its top-level
metadata and serves spatial, attribute, and progressive multiresolution
queries across all leaf files as if the data set were a single file. Leaf
files are opened lazily and memory-mapped; the Aggregation Tree prunes
which leaves a query touches, and the global-range bitmaps in the metadata
prune attribute-filtered queries before any file is opened.
"""

from __future__ import annotations

from pathlib import Path

from ..bat.file import BATFile
from ..bat.query import AttributeFilter, QueryStats, query_file
from ..bitmaps import query_bitmap
from ..types import Box, ParticleBatch
from .metadata import DatasetMetadata

__all__ = ["BATDataset"]


class BATDataset:
    """Read-side facade over one written timestep."""

    def __init__(self, metadata_path):
        self.metadata_path = Path(metadata_path)
        self.metadata = DatasetMetadata.load(self.metadata_path)
        if self.metadata.layout != "bat":
            raise ValueError(
                f"dataset uses the {self.metadata.layout!r} layout; BATDataset "
                "only reads 'bat' files (see repro.layouts for the reader)"
            )
        self.directory = self.metadata_path.parent
        self._files: dict[int, BATFile] = {}

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for f in self._files.values():
            f.close()
        self._files.clear()

    def __enter__(self) -> "BATDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------------

    @property
    def bounds(self) -> Box:
        return self.metadata.bounds

    @property
    def n_files(self) -> int:
        return self.metadata.n_files

    @property
    def total_particles(self) -> int:
        return self.metadata.total_particles

    @property
    def attr_ranges(self) -> dict[str, tuple[float, float]]:
        """Global per-attribute value ranges."""
        return self.metadata.attr_ranges

    def file(self, leaf_index: int) -> BATFile:
        """Open (and cache) the BAT file of one leaf."""
        f = self._files.get(leaf_index)
        if f is None:
            leaf = self.metadata.leaves[leaf_index]
            f = BATFile(self.directory / leaf.file_name)
            self._files[leaf_index] = f
        return f

    # -- queries ----------------------------------------------------------------

    def _candidate_leaves(self, box, filters) -> list[int]:
        leaves = (
            self.metadata.query_box(box)
            if box is not None
            else [l.leaf_index for l in self.metadata.leaves]
        )
        if not filters:
            return leaves
        out = []
        for idx in leaves:
            leaf = self.metadata.leaves[idx]
            keep = True
            for f in filters:
                glo, ghi = self.metadata.attr_ranges[f.name]
                q = int(query_bitmap(f.lo, f.hi, glo, ghi))
                if leaf.global_bitmaps.get(f.name, 0xFFFFFFFF) & q == 0:
                    keep = False
                    break
            if keep:
                out.append(idx)
        return out

    def query(
        self,
        quality: float = 1.0,
        prev_quality: float = 0.0,
        box: Box | None = None,
        filters=(),
        callback=None,
        attributes: list[str] | None = None,
    ) -> tuple[ParticleBatch | None, QueryStats]:
        """Run one (progressive) query across the whole data set.

        Same semantics as :func:`repro.bat.query.query_file`, with the
        metadata pruning which leaf files get touched at all.
        """
        filters = tuple(filters)
        stats = QueryStats()
        parts: list[ParticleBatch] = []
        for idx in self._candidate_leaves(box, filters):
            f = self.file(idx)
            res, s = query_file(
                f,
                quality=quality,
                prev_quality=prev_quality,
                box=box,
                filters=filters,
                callback=callback,
                attributes=attributes,
            )
            stats.merge(s)
            if res is not None and len(res):
                parts.append(res)
        if callback is not None:
            return None, stats
        if not parts:
            specs = []
            if self.metadata.leaves:
                with_file = self.file(self.metadata.leaves[0].leaf_index)
                specs = with_file.attribute_specs()
                if attributes is not None:
                    specs = [sp for sp in specs if sp.name in attributes]
            return ParticleBatch.empty(specs), stats
        return ParticleBatch.concatenate(parts), stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BATDataset({str(self.metadata_path)!r}, files={self.n_files}, "
            f"particles={self.total_particles})"
        )
