"""Aggregator assignment for writes (§III-A) and reads (§IV-A).

Write side: leaves are assigned to aggregator ranks spread evenly through
the rank space (after Kumar et al. [39]) so that a densely populated region
— whose many leaves would otherwise all be aggregated by the co-located
ranks — does not oversubscribe a few nodes while others idle.

Read side: if there are more ranks than leaf files, read aggregators are
spread the same way; if there are fewer ranks than files, the files are
dealt out evenly so every file has exactly one reader. This lets data
written at one scale be restarted at any other scale.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assign_write_aggregators", "assign_read_aggregators"]


def _spread(n_items: int, nranks: int) -> np.ndarray:
    """Assign item *i* to rank ``floor(i * nranks / n_items)``.

    Evenly distributes items through the rank space; distinct ranks when
    ``n_items <= nranks``.
    """
    idx = np.arange(n_items, dtype=np.int64)
    return (idx * nranks) // n_items


def assign_write_aggregators(n_leaves: int, nranks: int) -> np.ndarray:
    """Aggregator rank for each leaf, spread evenly across ranks.

    The leaf order is the tree's depth-first order, which is spatially
    coherent — adjacent leaves land on well-separated ranks, which is
    exactly the paper's intent: dense regions fan their files out across
    the whole machine.
    """
    if n_leaves == 0:
        return np.empty(0, dtype=np.int64)
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if n_leaves > nranks:
        # More leaves than ranks (can only happen with tiny targets): wrap
        # around so every leaf still has an owner.
        return np.arange(n_leaves, dtype=np.int64) % nranks
    return _spread(n_leaves, nranks)


def assign_read_aggregators(n_files: int, nranks: int) -> np.ndarray:
    """Read-aggregator rank for each leaf file.

    Computed locally on every rank from the metadata alone (no
    communication), so all ranks derive the same map.
    """
    if n_files == 0:
        return np.empty(0, dtype=np.int64)
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if nranks >= n_files:
        # More ranks than files: spread through the rank space as for writes.
        return _spread(n_files, nranks)
    # Fewer ranks than files: deal files out evenly, ceil(F/R) max per rank.
    return (np.arange(n_files, dtype=np.int64) * nranks) // n_files
