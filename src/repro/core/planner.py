"""Metadata-driven query planning (paper §V).

The top-level metadata holds everything needed to decide which leaf files
a query must touch *before any file is opened*: the Aggregation Tree leaf
bounds for spatial pruning and the per-leaf root bitmaps (remapped to the
global attribute ranges) for attribute pruning. :func:`plan_query` runs
both tests vectorized over every leaf at once and produces one
:class:`FilePlan` per surviving file — including a per-file residual box
(``None`` when the query box fully contains the leaf, so the traversal
can skip every per-node and per-point box test).

Plans depend only on ``(box, filters)`` — not on quality — so repeated
interactions with the same view (progressive refinement, time scrubbing)
reuse a memoized plan from :class:`PlanCache`, the planning analogue of
the file-handle :class:`~repro.bat.filecache.BATFileCache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..bitmaps import query_bitmap
from ..types import Box
from .metadata import DatasetMetadata

__all__ = [
    "FilePlan",
    "QueryPlan",
    "plan_query",
    "NeighborFilePlan",
    "NeighborQueryPlan",
    "plan_neighbor_query",
    "PlanCache",
    "leaves_for_boxes",
]

#: relative slack on squared-distance prune bounds (see repro.bat.neighbors)
_PRUNE_SLACK = 1e-9


@dataclass(frozen=True)
class FilePlan:
    """One leaf file a query must visit."""

    leaf_index: int
    file_name: str
    #: ``"full"`` — no per-node tests needed inside this file;
    #: ``"filtered"`` — traverse with the residual box and/or filters
    action: str
    #: residual query box for this file (``None`` when the query box
    #: contains the whole leaf, making per-node spatial tests a no-op)
    box: Box | None


@dataclass(frozen=True)
class QueryPlan:
    """The per-file execution plan for one ``(box, filters)`` query shape."""

    box: Box | None
    filters: tuple
    #: total leaf files in the data set
    n_files: int
    files: tuple[FilePlan, ...]
    pruned_spatial_files: int
    pruned_bitmap_files: int
    #: relevant files dropped because they are quarantined (corrupt or
    #: missing) — a plan with ``excluded_files > 0`` yields partial results
    excluded_files: int = 0

    @property
    def pruned_files(self) -> int:
        """Files the planner proved irrelevant without opening them."""
        return self.pruned_spatial_files + self.pruned_bitmap_files


def plan_query(
    metadata: DatasetMetadata, box: Box | None = None, filters=(),
    exclude=frozenset(),
) -> QueryPlan:
    """Intersect a query shape with the top-level metadata, vectorized.

    Spatial pruning is exact (leaf bounds are exact); bitmap pruning is
    conservative (bin-level), matching the in-file traversal's contract —
    a planned file can still return zero particles, but a skipped file can
    never contain a match. Unknown filter attributes raise ``KeyError``,
    like the in-file query path.

    ``exclude`` holds leaf indices quarantined by the read side (corrupt
    or missing files); relevant-but-excluded files are dropped from the
    plan and counted in :attr:`QueryPlan.excluded_files`, which is how
    degraded reads advertise that their result is partial.
    """
    filters = tuple(filters)
    exclude = frozenset(exclude)
    n = metadata.n_files
    lo, hi = metadata.leaf_bounds_arrays()
    keep = np.ones(n, dtype=bool)
    contained = np.zeros(n, dtype=bool)

    if box is not None and n:
        qlo = np.asarray(box.lower, dtype=np.float64)
        qhi = np.asarray(box.upper, dtype=np.float64)
        if np.any(qlo > qhi):  # empty query box intersects nothing
            keep[:] = False
        else:
            keep = np.all((lo <= qhi) & (hi >= qlo) & (lo <= hi), axis=1)
            contained = keep & np.all((qlo <= lo) & (qhi >= hi), axis=1)
    elif box is None:
        contained[:] = True
    pruned_spatial = int(n - keep.sum())

    pruned_bitmap = 0
    if filters and n:
        ok = np.ones(n, dtype=bool)
        for f in filters:
            glo, ghi = metadata.attr_ranges[f.name]
            q = np.uint32(query_bitmap(f.lo, f.hi, glo, ghi))
            ok &= (metadata.leaf_bitmaps_array(f.name) & q) != 0
        pruned_bitmap = int((keep & ~ok).sum())
        keep &= ok

    excluded = 0
    files = []
    for idx in np.flatnonzero(keep):
        leaf = metadata.leaves[int(idx)]
        if leaf.leaf_index in exclude:
            excluded += 1
            continue
        file_box = None if contained[idx] else box
        action = "full" if file_box is None and not filters else "filtered"
        files.append(
            FilePlan(
                leaf_index=leaf.leaf_index,
                file_name=leaf.file_name,
                action=action,
                box=file_box,
            )
        )
    return QueryPlan(
        box=box,
        filters=filters,
        n_files=n,
        files=tuple(files),
        pruned_spatial_files=pruned_spatial,
        pruned_bitmap_files=pruned_bitmap,
        excluded_files=excluded,
    )


@dataclass(frozen=True)
class NeighborFilePlan:
    """One leaf file a neighbor query may need to open."""

    leaf_index: int
    file_name: str
    #: ``"full"`` — the file overlaps the query region itself (its own
    #: particles can be centers' immediate surroundings);
    #: ``"ghost"`` — it overlaps only the halo expansion: the query opens
    #: it purely to exchange the ghost particles inside the strip
    action: str
    #: the file's leaf bounds (the k-NN engine's distance ordering key)
    bounds: Box
    #: leaf bounds ∩ halo-expanded region — the ghost strip a ``"ghost"``
    #: file contributes (``None`` for k-NN plans, whose reach is dynamic)
    strip: Box | None
    #: min squared distance from the query region to the leaf bounds
    min_d2: float


@dataclass(frozen=True)
class NeighborQueryPlan:
    """Per-file skip/full/ghost plan for one neighbor query shape.

    Skipped files simply do not appear in ``files``; the counters record
    why. ``radius=None`` marks a k-NN plan: no file can be excluded by
    halo geometry up front (the search radius is data-dependent), so
    every non-pruned file is listed in ascending ``min_d2`` order and the
    engine prunes dynamically against its running k-th-neighbor bounds.
    """

    region: Box
    radius: float | None
    filters: tuple
    n_files: int
    files: tuple[NeighborFilePlan, ...]
    #: files whose bounds lie beyond the halo expansion
    pruned_spatial_files: int
    #: files whose root bitmaps prove no filtered particle exists inside
    pruned_bitmap_files: int
    excluded_files: int = 0

    @property
    def pruned_files(self) -> int:
        return self.pruned_spatial_files + self.pruned_bitmap_files


def plan_neighbor_query(
    metadata: DatasetMetadata, region: Box, radius: float | None = None,
    filters=(), exclude=frozenset(),
) -> NeighborQueryPlan:
    """Halo-expand a neighbor query region and classify every leaf file.

    The halo is the Euclidean expansion of ``region`` by ``radius``:
    a file is kept when the box-to-box distance between its bounds and
    the region is within ``radius`` (exactly the round-cornered Minkowski
    sum, tighter than an axis-aligned ±radius box). Kept files split into
    ``"full"`` (they intersect the region itself) and ``"ghost"`` (halo
    only — opened just for the ghost strip recorded in
    :attr:`NeighborFilePlan.strip`). Bitmap pruning mirrors
    :func:`plan_query`: a file whose root bitmaps rule out every filter
    match can contribute neither centers nor neighbors.
    """
    filters = tuple(filters)
    exclude = frozenset(exclude)
    n = metadata.n_files
    lo, hi = metadata.leaf_bounds_arrays()
    rlo = np.asarray(region.lower, dtype=np.float64)
    rhi = np.asarray(region.upper, dtype=np.float64)

    if n:
        g = np.maximum(rlo - hi, 0.0) + np.maximum(lo - rhi, 0.0)
        d2 = g[:, 0] * g[:, 0] + g[:, 1] * g[:, 1] + g[:, 2] * g[:, 2]
    else:
        d2 = np.empty(0, dtype=np.float64)
    if radius is not None:
        keep = d2 <= (radius * radius) * (1.0 + _PRUNE_SLACK)
    else:
        keep = np.ones(n, dtype=bool)
    pruned_spatial = int(n - keep.sum())

    pruned_bitmap = 0
    if filters and n:
        ok = np.ones(n, dtype=bool)
        for f in filters:
            glo, ghi = metadata.attr_ranges[f.name]
            q = np.uint32(query_bitmap(f.lo, f.hi, glo, ghi))
            ok &= (metadata.leaf_bitmaps_array(f.name) & q) != 0
        pruned_bitmap = int((keep & ~ok).sum())
        keep &= ok

    excluded = 0
    files = []
    for idx in np.flatnonzero(keep):
        leaf = metadata.leaves[int(idx)]
        if leaf.leaf_index in exclude:
            excluded += 1
            continue
        bounds = Box(tuple(lo[idx].tolist()), tuple(hi[idx].tolist()))
        action = "full" if d2[idx] == 0.0 else "ghost"
        strip = None
        if action == "ghost" and radius is not None:
            slo = np.maximum(lo[idx], rlo - radius)
            shi = np.minimum(hi[idx], rhi + radius)
            strip = Box(tuple(slo.tolist()), tuple(shi.tolist()))
        files.append(
            NeighborFilePlan(
                leaf_index=leaf.leaf_index,
                file_name=leaf.file_name,
                action=action,
                bounds=bounds,
                strip=strip,
                min_d2=float(d2[idx]),
            )
        )
    if radius is None:
        # best-first visiting order for the k-NN engine; leaf index
        # breaks distance ties so the order is deterministic
        files.sort(key=lambda fp: (fp.min_d2, fp.leaf_index))
    return NeighborQueryPlan(
        region=region,
        radius=radius,
        filters=filters,
        n_files=n,
        files=tuple(files),
        pruned_spatial_files=pruned_spatial,
        pruned_bitmap_files=pruned_bitmap,
        excluded_files=excluded,
    )


class PlanCache:
    """Small LRU memo of query plans, keyed by
    ``(generation, box, filters, exclude)``.

    Quality is deliberately absent from the key: plans are
    quality-independent, so a progressive refinement sequence hits the
    same entry at every step. The quarantine set *is* part of the key —
    quarantining a corrupt leaf changes which files a plan may touch, so
    pre-quarantine plans must not be served afterwards. The manifest's
    layout generation is part of the key for the same reason: an online
    reorganization republish changes the leaf set itself, and a plan
    built against the pre-reorg layout names files that may no longer
    exist (or no longer cover the box the same way). All key
    components are frozen/hashable. Thread-safe: the serve layer plans
    concurrent sessions' queries against one shared cache per timestep
    (two threads racing on the same cold key may both build the plan —
    plans are immutable and identical, so last-write-wins is harmless,
    and the hit/miss counters stay exact for the metrics surface).
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get_or_build(
        self, metadata: DatasetMetadata, box: Box | None, filters,
        exclude=frozenset(),
    ) -> QueryPlan:
        exclude = frozenset(exclude)
        key = (metadata.generation, box, tuple(filters), exclude)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        plan = plan_query(metadata, box, tuple(filters), exclude=exclude)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        return plan

    def get_or_build_neighbor(
        self, metadata: DatasetMetadata, region: Box, radius: float | None,
        filters, exclude=frozenset(),
    ) -> NeighborQueryPlan:
        """Memoized :func:`plan_neighbor_query` (shares this cache's LRU).

        The ``"neighbor"`` tag keeps the key space disjoint from box
        plans; generation and quarantine set key it for the same reasons
        as :meth:`get_or_build`.
        """
        exclude = frozenset(exclude)
        key = (
            metadata.generation, "neighbor", region, radius,
            tuple(filters), exclude,
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        plan = plan_neighbor_query(
            metadata, region, radius, tuple(filters), exclude=exclude
        )
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        return plan

    def stats(self) -> dict:
        """Counter snapshot for the serve metrics surface."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._plans),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()


def leaves_for_boxes(
    metadata: DatasetMetadata, bounds: np.ndarray, chunk: int | None = None
) -> list[np.ndarray]:
    """Leaf files overlapping each of ``bounds`` (R, 2, 3) query boxes.

    The restart-read path asks this question for every reading rank at
    once; evaluating the (ranks × leaves) overlap matrix in bounded chunks
    keeps the temporary below ~8 MB regardless of scale. Returns one array
    of leaf list positions per rank, in ascending order.
    """
    rb = np.asarray(bounds, dtype=np.float64)
    nranks = len(rb)
    leaf_lo, leaf_hi = metadata.leaf_bounds_arrays()
    n_files = len(leaf_lo)
    if chunk is None:
        chunk = max(1, min(nranks, (8 << 20) // max(n_files, 1)))
    out: list[np.ndarray] = []
    for start in range(0, nranks, chunk):
        blk = rb[start : start + chunk]
        hit = np.all(
            (blk[:, 0, None, :] <= leaf_hi[None, :, :])
            & (blk[:, 1, None, :] >= leaf_lo[None, :, :]),
            axis=2,
        )
        for row in hit:
            out.append(np.flatnonzero(row))
    return out
