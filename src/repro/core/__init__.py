"""The paper's primary contribution: spatially aware adaptive aggregation.

- :mod:`repro.core.aggtree` — the adaptive Aggregation Tree (§III-A),
- :mod:`repro.core.assign` — write/read aggregator assignment (§III-A, §IV-A),
- :mod:`repro.core.writer` — the two-phase write pipeline (§III),
- :mod:`repro.core.reader` — the two-phase restart-read pipeline (§IV),
- :mod:`repro.core.metadata` — the top-level metadata file (§III-D).
"""

from .aggtree import AggregationTree, AggTreeConfig, build_aggregation_tree
from .assign import assign_read_aggregators, assign_write_aggregators
from .metadata import DatasetMetadata, LeafMetadata, build_metadata
from .rankdata import RankData
from .reader import ReadReport, TwoPhaseReader
from .writer import TwoPhaseWriter, WriteReport

__all__ = [
    "AggregationTree",
    "AggTreeConfig",
    "build_aggregation_tree",
    "assign_write_aggregators",
    "assign_read_aggregators",
    "RankData",
    "TwoPhaseWriter",
    "WriteReport",
    "TwoPhaseReader",
    "ReadReport",
    "DatasetMetadata",
    "LeafMetadata",
    "build_metadata",
]
