"""Top-level metadata file (paper §III-D).

Rank 0 writes one small file per timestep describing the whole data set:
the Aggregation Tree (so readers can route spatial queries to leaf files),
each leaf's file name, bounds and particle count, and per-attribute value
ranges plus root bitmaps remapped from each aggregator's local range to the
global range. With it, the data set reads as if it were a single file.

The format is JSON — the metadata is a few hundred entries of structural
information, and a human-inspectable manifest is worth more than saved
microseconds here. (The bulk data lives in the binary BAT files.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..atomic import atomic_write_bytes
from ..bitmaps import remap_bitmap
from ..types import AttributeSpec, Box
from .aggtree import AggInner, AggLeaf, AggregationTree

__all__ = ["LeafMetadata", "DatasetMetadata", "build_metadata"]

FORMAT_VERSION = 1


@dataclass
class LeafMetadata:
    """One leaf file of the data set."""

    leaf_index: int
    file_name: str
    bounds: Box
    count: int
    nbytes: int
    aggregator: int
    rank_ids: list[int]
    #: per-attribute (lo, hi) as stored in the leaf's BAT file
    attr_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: per-attribute root bitmap remapped to the global attribute range
    global_bitmaps: dict[str, int] = field(default_factory=dict)


@dataclass
class DatasetMetadata:
    """The parsed top-level metadata file."""

    nranks: int
    bounds: Box
    leaves: list[LeafMetadata]
    #: global per-attribute value ranges (union of leaf ranges)
    attr_ranges: dict[str, tuple[float, float]]
    #: serialized Aggregation Tree: list of dicts mirroring AggInner/AggLeaf
    tree_nodes: list[dict] = field(default_factory=list)
    #: per-inner-node global-range bitmaps, merged bottom-up
    inner_bitmaps: list[dict[str, int]] = field(default_factory=list)
    #: name of the leaf-file layout (see :mod:`repro.layouts`)
    layout: str = "bat"
    #: per-attribute numpy dtype strings (empty for manifests written
    #: before this field existed; readers then fall back to a leaf file)
    attr_dtypes: dict[str, str] = field(default_factory=dict)
    #: layout generation counter, bumped by every online reorganization
    #: republish. Caches that derive anything from the *leaf set* (plans,
    #: results, in-flight collapse) key on it so entries built against a
    #: pre-reorg layout are never served afterwards. Write-time manifests
    #: start at 0; older manifests without the field load as 0.
    generation: int = 0

    @property
    def n_files(self) -> int:
        return len(self.leaves)

    @property
    def json_size(self) -> int:
        """Serialized size in bytes (cached — used by read cost models)."""
        size = getattr(self, "_json_size", None)
        if size is None:
            size = len(self.to_json().encode())
            object.__setattr__(self, "_json_size", size)
        return size

    def leaf_bounds_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(L, 3) lower and upper bounds of every leaf (cached)."""
        cached = getattr(self, "_leaf_bounds", None)
        if cached is None:
            lo = np.array([l.bounds.lower for l in self.leaves], dtype=np.float64).reshape(-1, 3)
            hi = np.array([l.bounds.upper for l in self.leaves], dtype=np.float64).reshape(-1, 3)
            cached = (lo, hi)
            object.__setattr__(self, "_leaf_bounds", cached)
        return cached

    def leaf_bitmaps_array(self, name: str) -> np.ndarray:
        """(L,) uint32 global-range root bitmap of every leaf (cached).

        Leaves without a stored bitmap for ``name`` get the full bitmap —
        "may contain anything" — matching the conservative per-leaf
        lookups this replaces.
        """
        cached = getattr(self, "_leaf_bitmaps", None)
        if cached is None:
            cached = {}
            object.__setattr__(self, "_leaf_bitmaps", cached)
        arr = cached.get(name)
        if arr is None:
            arr = np.array(
                [l.global_bitmaps.get(name, 0xFFFFFFFF) for l in self.leaves],
                dtype=np.uint32,
            )
            cached[name] = arr
        return arr

    def attribute_specs(self) -> list[AttributeSpec] | None:
        """Attribute specs from the manifest, or ``None`` if not recorded."""
        if not self.attr_dtypes:
            return None
        return [AttributeSpec(n, np.dtype(dt)) for n, dt in self.attr_dtypes.items()]

    @property
    def total_particles(self) -> int:
        return sum(l.count for l in self.leaves)

    # -- queries -----------------------------------------------------------

    def query_box(self, box: Box) -> list[int]:
        """Leaf indices whose bounds intersect ``box``."""
        if not self.tree_nodes:
            return [l.leaf_index for l in self.leaves if l.bounds.intersects(box)]
        out: list[int] = []
        stack = [0]
        while stack:
            nd = self.tree_nodes[stack.pop()]
            nb = Box(tuple(nd["bounds"][0]), tuple(nd["bounds"][1]))
            if not nb.intersects(box):
                continue
            if nd["type"] == "leaf":
                out.append(nd["leaf_index"])
            else:
                stack.append(nd["right"])
                stack.append(nd["left"])
        return sorted(out)

    def query_filters(self, filters: dict[str, tuple[float, float]]) -> list[int]:
        """Leaf indices whose global bitmaps may satisfy all filters."""
        from ..bitmaps import query_bitmap

        qb = {}
        for name, (lo, hi) in filters.items():
            glo, ghi = self.attr_ranges[name]
            qb[name] = int(query_bitmap(lo, hi, glo, ghi))
        out = []
        for leaf in self.leaves:
            ok = all(
                leaf.global_bitmaps.get(name, 0xFFFFFFFF) & q for name, q in qb.items()
            )
            if ok:
                out.append(leaf.leaf_index)
        return out

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "format": "bat-dataset",
            "version": FORMAT_VERSION,
            "layout": self.layout,
            "generation": self.generation,
            "nranks": self.nranks,
            "bounds": [list(self.bounds.lower), list(self.bounds.upper)],
            "attr_ranges": {k: list(v) for k, v in self.attr_ranges.items()},
            "attr_dtypes": dict(self.attr_dtypes),
            "tree_nodes": self.tree_nodes,
            "inner_bitmaps": [
                {k: int(v) for k, v in bm.items()} for bm in self.inner_bitmaps
            ],
            "leaves": [
                {
                    "leaf_index": l.leaf_index,
                    "file": l.file_name,
                    "bounds": [list(l.bounds.lower), list(l.bounds.upper)],
                    "count": l.count,
                    "nbytes": l.nbytes,
                    "aggregator": l.aggregator,
                    "ranks": l.rank_ids,
                    "attr_ranges": {k: list(v) for k, v in l.attr_ranges.items()},
                    "global_bitmaps": {k: int(v) for k, v in l.global_bitmaps.items()},
                }
                for l in self.leaves
            ],
        }
        return json.dumps(doc, indent=1)

    def save(self, path) -> int:
        """Publish the metadata file atomically; returns its size in bytes.

        The manifest is what makes a dataset *visible*: publishing it via
        tmp-file + fsync + rename means a crash mid-write can never leave a
        half-written manifest pointing at the (already published) leaves.
        """
        data = self.to_json().encode()
        atomic_write_bytes(path, data)
        return len(data)

    @staticmethod
    def load(path) -> "DatasetMetadata":
        doc = json.loads(Path(path).read_text())
        if doc.get("format") != "bat-dataset":
            raise ValueError(f"{path} is not a BAT dataset metadata file")
        if doc.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported metadata version {doc.get('version')}")
        leaves = [
            LeafMetadata(
                leaf_index=d["leaf_index"],
                file_name=d["file"],
                bounds=Box(tuple(d["bounds"][0]), tuple(d["bounds"][1])),
                count=d["count"],
                nbytes=d["nbytes"],
                aggregator=d["aggregator"],
                rank_ids=list(d["ranks"]),
                attr_ranges={k: (v[0], v[1]) for k, v in d["attr_ranges"].items()},
                global_bitmaps={k: int(v) for k, v in d["global_bitmaps"].items()},
            )
            for d in doc["leaves"]
        ]
        return DatasetMetadata(
            nranks=doc["nranks"],
            bounds=Box(tuple(doc["bounds"][0]), tuple(doc["bounds"][1])),
            leaves=leaves,
            attr_ranges={k: (v[0], v[1]) for k, v in doc["attr_ranges"].items()},
            tree_nodes=doc["tree_nodes"],
            inner_bitmaps=[{k: int(v) for k, v in bm.items()} for bm in doc["inner_bitmaps"]],
            layout=doc.get("layout", "bat"),
            attr_dtypes=dict(doc.get("attr_dtypes", {})),
            generation=int(doc.get("generation", 0)),
        )


def build_metadata(
    plan,
    nranks: int,
    file_names: list[str],
    leaf_attr_ranges: list[dict[str, tuple[float, float]]],
    leaf_root_bitmaps: list[dict[str, int]],
    leaf_binnings: list[dict] | None = None,
    layout: str = "bat",
    attr_dtypes: dict[str, str] | None = None,
) -> DatasetMetadata:
    """Populate the top-level metadata from an aggregation plan.

    ``plan`` is an :class:`AggregationTree` or any object exposing
    ``leaves`` (AUG produces a flat plan). The per-leaf local attribute
    ranges and root bitmaps come from each aggregator's BAT build; rank 0
    unions the ranges, remaps each leaf bitmap to the global range, and
    merges inner-node bitmaps bottom-up. ``leaf_binnings`` carries each
    leaf's binning scheme when files use non-equi-width bins; the global
    metadata bitmaps are always expressed against equi-width global bins.
    """
    leaves_in = list(plan.leaves)
    if not (len(leaves_in) == len(file_names) == len(leaf_attr_ranges) == len(leaf_root_bitmaps)):
        raise ValueError("per-leaf argument length mismatch")
    if leaf_binnings is not None and len(leaf_binnings) != len(leaves_in):
        raise ValueError("per-leaf argument length mismatch")

    # Global ranges: union of leaf-local ranges.
    attr_ranges: dict[str, tuple[float, float]] = {}
    for ranges in leaf_attr_ranges:
        for name, (lo, hi) in ranges.items():
            if name in attr_ranges:
                glo, ghi = attr_ranges[name]
                attr_ranges[name] = (min(glo, lo), max(ghi, hi))
            else:
                attr_ranges[name] = (lo, hi)

    leaves: list[LeafMetadata] = []
    bounds = Box.empty()
    for i, (leaf, fname, ranges, bms) in enumerate(
        zip(leaves_in, file_names, leaf_attr_ranges, leaf_root_bitmaps)
    ):
        global_bms = {}
        for name, bm in bms.items():
            glo, ghi = attr_ranges[name]
            binning = (leaf_binnings[i] or {}).get(name) if leaf_binnings else None
            if binning is not None:
                global_bms[name] = int(binning.remap_to_equiwidth(bm, glo, ghi))
            else:
                lo, hi = ranges[name]
                global_bms[name] = int(remap_bitmap(bm, lo, hi, glo, ghi))
        leaves.append(
            LeafMetadata(
                leaf_index=leaf.leaf_index,
                file_name=fname,
                bounds=leaf.bounds,
                count=leaf.count,
                nbytes=leaf.nbytes,
                aggregator=leaf.aggregator,
                rank_ids=[int(r) for r in leaf.rank_ids],
                attr_ranges=dict(ranges),
                global_bitmaps=global_bms,
            )
        )
        bounds = bounds.union(leaf.bounds)

    # Serialize the tree (if the plan has one) and merge inner bitmaps up.
    tree_nodes: list[dict] = []
    inner_bitmaps: list[dict[str, int]] = []
    if isinstance(plan, AggregationTree) and plan.nodes:
        merged: dict[int, dict[str, int]] = {}

        def merge(node_id: int) -> dict[str, int]:
            node = plan.nodes[node_id]
            if isinstance(node, AggLeaf):
                return leaves[node.leaf_index].global_bitmaps
            out: dict[str, int] = {}
            for child in (node.left, node.right):
                for name, bm in merge(child).items():
                    out[name] = out.get(name, 0) | bm
            merged[node_id] = out
            return out

        merge(0)
        for node in plan.nodes:
            b = node.bounds
            rec = {"bounds": [list(b.lower), list(b.upper)]}
            if isinstance(node, AggLeaf):
                rec.update(type="leaf", leaf_index=node.leaf_index)
                inner_bitmaps.append({})
            else:
                rec.update(type="inner", axis=int(node.axis), position=float(node.position),
                           left=int(node.left), right=int(node.right))
                inner_bitmaps.append(merged.get(node.node_id, {}))
            tree_nodes.append(rec)

    return DatasetMetadata(
        nranks=nranks,
        bounds=bounds,
        leaves=leaves,
        attr_ranges=attr_ranges,
        tree_nodes=tree_nodes,
        inner_bitmaps=inner_bitmaps,
        layout=layout,
        attr_dtypes=dict(attr_dtypes) if attr_dtypes else {},
    )
