"""Two-phase parallel restart read pipeline (paper §IV, Fig 3).

Every rank reads the top-level metadata, a subset of ranks becomes *read
aggregators* (computed locally, no communication), each rank determines
which leaves its bounds overlap and requests their particles from the
aggregator owning each leaf file. Aggregators serve spatial queries through
a client–server loop of nonblocking calls terminated by a nonblocking
barrier; here the same structure is executed phase-wise on the virtual
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from functools import partial

from ..machines import MachineSpec
from ..parallel import get_executor
from ..simmpi import Message, VirtualCluster
from ..types import Box, ParticleBatch
from .assign import assign_read_aggregators
from .metadata import DatasetMetadata
from .planner import leaves_for_boxes

__all__ = ["TwoPhaseReader", "ReadReport", "READ_PHASE_NAMES"]

READ_PHASE_NAMES = (
    "read metadata",
    "read leaf files",
    "spatial queries",
    "transfer to readers",
    "barrier",
)


@dataclass
class ReadReport:
    """Outcome of one parallel restart read."""

    elapsed: float
    breakdown: dict[str, float]
    total_bytes: float
    n_files: int
    #: per-rank particles, when the read ran against real files
    batches: list[ParticleBatch] | None = None

    @property
    def bandwidth(self) -> float:
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0


def _read_leaf(layout_name: str, data_dir: str, item):
    """Serve every request against one leaf file (one executor task).

    ``item`` is ``(leaf_index, file_name, [(rank, (2,3) bounds), ...])``;
    returns ``(leaf_index, [(rank, batch), ...])``. Each task owns its file
    handle, so tasks are independent across threads and processes.
    """
    from ..layouts import get_layout

    leaf_idx, file_name, reqs = item
    try:
        f = get_layout(layout_name).open(Path(data_dir) / file_name)
    except FileNotFoundError as exc:
        from ..errors import LeafUnavailableError

        raise LeafUnavailableError(
            f"leaf file {file_name!r} (leaf {leaf_idx}) is missing from "
            f"{data_dir!r}: {exc}",
            leaf_index=leaf_idx, path=str(Path(data_dir) / file_name),
        ) from exc
    try:
        return leaf_idx, [
            (r, f.query_box(Box.from_array(bounds))) for r, bounds in reqs
        ]
    finally:
        f.close()


class TwoPhaseReader:
    """Parallel reads of a BAT data set at an arbitrary rank count."""

    def __init__(self, machine: MachineSpec, network_model: str = "phase", executor=None):
        self.machine = machine
        self.network_model = network_model
        #: execution layer for per-file restart reads (see repro.parallel)
        self.executor = get_executor(executor)

    def read(
        self,
        metadata: DatasetMetadata,
        read_bounds: np.ndarray,
        data_dir=None,
    ) -> ReadReport:
        """Read the region each rank wants (one box per reading rank).

        ``read_bounds`` is ``(R, 2, 3)``; R defines the reading job's size
        and may differ from the writing job's. With ``data_dir`` the leaf
        files are really opened and queried, so the returned batches are
        exact; otherwise transfer sizes are estimated from volume overlap.
        """
        read_bounds = np.asarray(read_bounds, dtype=np.float64).reshape(-1, 2, 3)
        nranks = len(read_bounds)
        cluster = VirtualCluster(nranks, self.machine, network_model=self.network_model)
        n_files = metadata.n_files

        # 1. everyone reads the metadata file
        cluster.all_small_read(READ_PHASE_NAMES[0], metadata.json_size)

        # 2. local read-aggregator assignment
        read_aggs = assign_read_aggregators(n_files, nranks)

        # 3. requests: which leaves does each rank overlap? The planner
        # helper evaluates all (rank, leaf) pairs vectorized in rank
        # chunks — a 43k-rank restart against hundreds of leaves is
        # millions of box tests.
        leaf_lo, leaf_hi = metadata.leaf_bounds_arrays()
        requests: list[tuple[int, int]] = []  # (reading rank, leaf index)
        for r, leaf_hits in enumerate(leaves_for_boxes(metadata, read_bounds)):
            requests.extend((r, int(leaf_idx)) for leaf_idx in leaf_hits)

        # aggregators read the leaf files they own that anyone asked for
        needed = sorted({leaf for _, leaf in requests})
        read_sizes = np.zeros(nranks)
        opens = np.zeros(nranks)
        for leaf_idx in needed:
            leaf = metadata.leaves[leaf_idx]
            agg = int(read_aggs[leaf_idx])
            read_sizes[agg] += leaf.nbytes
            opens[agg] += 1
        active = opens > 0
        avg_opens = float(opens[active].mean()) if active.any() else 1.0
        cluster.read_independent(READ_PHASE_NAMES[1], read_sizes, opens=avg_opens)

        # 4. spatial query scan cost on aggregators
        req_rank = np.array([r for r, _ in requests], dtype=np.int64)
        req_leaf = np.array([l for _, l in requests], dtype=np.int64)
        leaf_counts = np.array([l.count for l in metadata.leaves], dtype=np.float64)
        leaf_nbytes = np.array([l.nbytes for l in metadata.leaves], dtype=np.float64)
        scan_seconds = np.zeros(nranks)
        if len(requests):
            np.add.at(
                scan_seconds,
                read_aggs[req_leaf],
                leaf_counts[req_leaf] / self.machine.query_scan_rate,
            )
        cluster.compute(READ_PHASE_NAMES[2], scan_seconds)

        # functional reads against real files (dispatched on the layout the
        # data set was written with — see repro.layouts)
        batches: list[ParticleBatch] | None = None
        actual_bytes: dict[tuple[int, int], float] = {}
        if data_dir is not None:
            # Group requests per leaf file and fan the files out across the
            # executor — one open/query/close per file, mirroring the read
            # aggregators that each serve the files they own. Results are
            # keyed by (rank, leaf) and re-assembled in the original
            # request order, so completion order cannot change the output.
            by_leaf: dict[int, list[tuple[int, np.ndarray]]] = {}
            for r, leaf_idx in requests:
                by_leaf.setdefault(leaf_idx, []).append((r, read_bounds[r]))
            tasks = [
                (leaf_idx, metadata.leaves[leaf_idx].file_name, reqs)
                for leaf_idx, reqs in sorted(by_leaf.items())
            ]
            results = self.executor.map(
                partial(_read_leaf, metadata.layout, str(data_dir)), tasks
            )
            answered: dict[tuple[int, int], ParticleBatch] = {}
            for leaf_idx, served in results:
                for r, res in served:
                    answered[(r, leaf_idx)] = res
                    actual_bytes[(r, leaf_idx)] = float(res.nbytes)
            per_rank: list[list[ParticleBatch]] = [[] for _ in range(nranks)]
            for r, leaf_idx in requests:
                per_rank[r].append(answered[(r, leaf_idx)])
            batches = [ParticleBatch.concatenate(parts) for parts in per_rank]

        # 5. transfer query results to the requesting ranks. Without real
        # files, per-request bytes are estimated from the volume fraction of
        # each leaf covered by the reader's box (vectorized).
        if len(requests):
            if actual_bytes:
                sizes = np.array(
                    [actual_bytes.get((r, l), 0.0) for r, l in requests], dtype=np.float64
                )
            else:
                llo = leaf_lo[req_leaf]
                lhi = leaf_hi[req_leaf]
                rlo = read_bounds[req_rank, 0, :]
                rhi = read_bounds[req_rank, 1, :]
                inter = np.maximum(np.minimum(lhi, rhi) - np.maximum(llo, rlo), 0.0)
                vol = np.prod(np.maximum(lhi - llo, 0.0), axis=1)
                frac = np.where(vol > 0, np.prod(inter, axis=1) / np.where(vol > 0, vol, 1.0), 1.0)
                sizes = leaf_nbytes[req_leaf] * np.minimum(frac, 1.0)
        else:
            sizes = np.zeros(0)
        total_bytes = float(sizes.sum())
        messages = [
            Message(int(read_aggs[l]), int(r), float(s))
            for (r, l), s in zip(requests, sizes)
            if s > 0
        ]
        cluster.p2p(READ_PHASE_NAMES[3], messages)

        # 6. nonblocking barrier completes the read
        cluster.barrier(READ_PHASE_NAMES[4])

        return ReadReport(
            elapsed=cluster.elapsed,
            breakdown=cluster.breakdown(),
            total_bytes=total_bytes,
            n_files=n_files,
            batches=batches,
        )
