"""Automatic target-size selection (paper §VII future work).

The paper closes its evaluation with concrete guidance (§VI-A2): use
roughly 1:1–4:1 aggregation factors at lower core/particle counts, 16:1 or
higher at larger scales, and increase the target size if particles are
being injected over time. §VII then notes "it would also be valuable to
support automatically selecting the target size based on the particle
count and size using the results of our evaluation" — this module encodes
that rule so ``TwoPhaseWriter(target_size="auto")`` just works.
"""

from __future__ import annotations

import math

__all__ = [
    "recommend_aggregation_factor",
    "recommend_target_size",
    "MIN_TARGET_SIZE",
    "MAX_TARGET_SIZE",
]

MB = 1 << 20
MIN_TARGET_SIZE = 1 * MB
MAX_TARGET_SIZE = 512 * MB

#: rank count at which the recommended factor starts growing past ~4:1
_SMALL_SCALE_RANKS = 1536


def recommend_aggregation_factor(nranks: int, growth_factor: float = 1.0) -> float:
    """Ranks-per-file factor from the paper's evaluation guidance.

    Small jobs keep 1:1–4:1 (many aggregators, cheap creates); beyond
    ~1.5k ranks the factor doubles with the rank count so the file count —
    and with it the metadata storm — stays bounded. ``growth_factor``
    scales the recommendation up for simulations that inject particles
    over time (Coal-Boiler-style), per the paper's "the target size should
    be increased correspondingly".
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if growth_factor < 1.0:
        raise ValueError("growth_factor must be >= 1")
    if nranks <= 384:
        base = 1.0
    elif nranks <= _SMALL_SCALE_RANKS:
        base = 4.0
    else:
        base = 4.0 * (nranks / _SMALL_SCALE_RANKS)
    return min(base * growth_factor, 256.0)


def recommend_target_size(
    total_bytes: float, nranks: int, growth_factor: float = 1.0
) -> int:
    """Target file size in bytes for one timestep write.

    ``total_bytes`` is the timestep's payload, ``nranks`` the writing job's
    size. The result is the per-rank payload times the recommended
    aggregation factor, clamped to [1 MB, 512 MB] and rounded up to a whole
    MB so file sizes read sensibly in tooling.
    """
    if total_bytes < 0:
        raise ValueError("total_bytes must be >= 0")
    per_rank = total_bytes / nranks if nranks else 0.0
    factor = recommend_aggregation_factor(nranks, growth_factor)
    raw = max(per_rank * factor, float(MIN_TARGET_SIZE))
    clamped = min(raw, float(MAX_TARGET_SIZE))
    return int(math.ceil(clamped / MB) * MB)
