"""The adaptive Aggregation Tree (paper §III-A).

Rank 0 receives every rank's spatial bounds and particle count and builds a
k-d tree over the *ranks* (never splitting one rank's data) so that each
leaf — one output file — holds a similar number of particles. Split
positions are restricted to rank-boundary edges; each candidate is scored
by how unevenly it partitions the particles, ``c = |0.5 − n_l/(n_l+n_r)|``,
and the minimum-cost candidate wins. Leaves are created when a node's data
falls below the target file size; "overfull" leaves up to a configured
factor of the target are allowed when the best available split is too
imbalanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..types import Box

__all__ = [
    "AggTreeConfig",
    "AggLeaf",
    "AggInner",
    "AggregationTree",
    "build_aggregation_tree",
    "split_cost",
]

MB = 1 << 20


def split_cost(n_left: float, n_right: float) -> float:
    """Imbalance cost of a candidate split: ``|0.5 − n_l/(n_l+n_r)|`` ∈ [0, 0.5]."""
    total = n_left + n_right
    if total <= 0:
        return 0.5
    return abs(0.5 - n_left / total)


@dataclass(frozen=True)
class AggTreeConfig:
    """Tuning knobs of the Aggregation Tree build.

    ``target_size``
        Desired bytes per output file. Lower → more, smaller files and less
        network traffic during aggregation; higher → fewer, larger files.
        The paper exposes this as *the* portability parameter.
    ``split_all_axes``
        If True, candidate splits on all three axes are scored and the best
        wins; the default tests only the longest axis of the node's bounds.
    ``overfull_cost_ratio``
        If the best split leaves one side with ``ratio`` times more
        particles than the other (the paper's evaluation uses 4) *and* the
        node is within ``overfull_factor`` of the target size, the node
        becomes an overfull leaf instead of splitting badly. ``inf``
        disables overfull leaves.
    ``overfull_factor``
        Max overfull leaf size as a multiple of ``target_size`` (paper: 1.5).
    """

    target_size: int = 8 * MB
    split_all_axes: bool = False
    overfull_cost_ratio: float = float("inf")
    overfull_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.target_size <= 0:
            raise ValueError("target_size must be positive")
        if self.overfull_factor < 1.0:
            raise ValueError("overfull_factor must be >= 1")
        if self.overfull_cost_ratio < 1.0:
            raise ValueError("overfull_cost_ratio must be >= 1")


@dataclass
class AggLeaf:
    """One aggregation group: the ranks whose data lands in one file."""

    node_id: int
    rank_ids: np.ndarray
    count: int
    nbytes: int
    bounds: Box
    overfull: bool = False
    #: index of this leaf in traversal order; set by the tree
    leaf_index: int = -1
    #: rank assigned to aggregate and write this leaf; set by assignment
    aggregator: int = -1


@dataclass
class AggInner:
    """Inner k-d node: a split of the rank set at a rank-boundary edge."""

    node_id: int
    axis: int
    position: float
    left: int
    right: int
    bounds: Box


@dataclass
class AggregationTree:
    """Result of the adaptive build: k-d hierarchy plus leaf groups.

    ``nodes[0]`` is the root when the tree is nonempty. Leaves appear in
    ``leaves`` in depth-first (left-to-right, spatially coherent) order.
    """

    nranks: int
    nodes: list[AggInner | AggLeaf] = field(default_factory=list)
    leaves: list[AggLeaf] = field(default_factory=list)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def leaf_of_rank(self) -> np.ndarray:
        """Map each rank to its leaf index (−1 for ranks in no leaf)."""
        out = np.full(self.nranks, -1, dtype=np.int64)
        for leaf in self.leaves:
            out[leaf.rank_ids] = leaf.leaf_index
        return out

    def query_box(self, box: Box) -> list[int]:
        """Leaf indices whose bounds intersect ``box`` (tree-pruned)."""
        if not self.nodes:
            return []
        out: list[int] = []
        stack = [0]
        while stack:
            node = self.nodes[stack.pop()]
            if not node.bounds.intersects(box):
                continue
            if isinstance(node, AggLeaf):
                out.append(node.leaf_index)
            else:
                stack.append(node.right)
                stack.append(node.left)
        return sorted(out)

    def file_sizes(self) -> np.ndarray:
        return np.array([leaf.nbytes for leaf in self.leaves], dtype=np.int64)

    def imbalance(self) -> float:
        """Max/mean leaf particle count; 1.0 is perfectly balanced."""
        counts = np.array([leaf.count for leaf in self.leaves], dtype=np.float64)
        if len(counts) == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())


def _best_split_on_axis(axis_uppers: np.ndarray, counts: np.ndarray) -> tuple[float, float, int]:
    """Best candidate along one axis.

    ``axis_uppers`` holds each member rank's upper bound on the axis; the
    candidates are its unique values except the last (which would leave the
    right side empty). Returns ``(cost, position, n_left)`` with
    ``cost = inf`` when the axis offers no valid split.
    """
    order = np.argsort(axis_uppers, kind="stable")
    sorted_uppers = axis_uppers[order]
    csum = np.cumsum(counts[order])
    # last index of each distinct upper value
    distinct = np.nonzero(np.diff(sorted_uppers) > 0)[0]
    if len(distinct) == 0:
        return float("inf"), 0.0, 0
    n_left = csum[distinct]
    total = csum[-1]
    cost = np.abs(0.5 - n_left / total)
    best = int(np.argmin(cost))
    return float(cost[best]), float(sorted_uppers[distinct[best]]), int(n_left[best])


def build_aggregation_tree(
    rank_bounds: np.ndarray,
    rank_counts: np.ndarray,
    bytes_per_particle: float,
    config: AggTreeConfig | None = None,
) -> AggregationTree:
    """Build the adaptive Aggregation Tree on rank 0.

    ``rank_bounds`` is ``(R, 2, 3)`` (lower/upper per rank), ``rank_counts``
    length-R particle counts. Ranks with zero particles take no part in the
    tree (they send nothing during aggregation, §III-B). The split
    partitions member ranks by whether their upper bound on the split axis
    lies at or left of the chosen rank-boundary edge, so no rank's data is
    ever divided between aggregators.
    """
    config = config or AggTreeConfig()
    rank_bounds = np.asarray(rank_bounds, dtype=np.float64).reshape(-1, 2, 3)
    rank_counts = np.asarray(rank_counts, dtype=np.int64)
    if len(rank_bounds) != len(rank_counts):
        raise ValueError("rank_bounds and rank_counts length mismatch")
    nranks = len(rank_counts)
    tree = AggregationTree(nranks=nranks)

    members_all = np.nonzero(rank_counts > 0)[0]
    if len(members_all) == 0:
        return tree

    def node_bounds(members: np.ndarray) -> Box:
        lo = rank_bounds[members, 0, :].min(axis=0)
        hi = rank_bounds[members, 1, :].max(axis=0)
        return Box(tuple(lo.tolist()), tuple(hi.tolist()))

    # Iterative DFS so leaf order is depth-first left-to-right regardless of
    # rank count; each work item is (members, slot-in-parent) where the
    # parent's child index is patched once the node id is known.
    nodes: list[AggInner | AggLeaf] = []

    def build_node(members: np.ndarray) -> int:
        bounds = node_bounds(members)
        count = int(rank_counts[members].sum())
        nbytes = int(count * bytes_per_particle)
        node_id = len(nodes)

        def make_leaf(overfull: bool) -> int:
            leaf = AggLeaf(
                node_id=node_id,
                rank_ids=np.sort(members),
                count=count,
                nbytes=nbytes,
                bounds=bounds,
                overfull=overfull,
            )
            nodes.append(leaf)
            return node_id

        if nbytes <= config.target_size or len(members) == 1:
            return make_leaf(overfull=False)

        counts = rank_counts[members].astype(np.float64)
        # Try the preferred axis (or all three), then — if no candidate
        # exists because every member shares the same upper bound — the
        # remaining axes, so degenerate decompositions still split.
        if config.split_all_axes:
            preferred = [0, 1, 2]
        else:
            longest = bounds.longest_axis()
            preferred = [longest] + [a for a in (0, 1, 2) if a != longest]
        cost, pos, axis = float("inf"), 0.0, -1
        for trial in preferred:
            c, p, _ = _best_split_on_axis(rank_bounds[members, 1, trial], counts)
            if c < cost:
                cost, pos, axis = c, p, trial
            if np.isfinite(cost) and not config.split_all_axes and trial == preferred[0]:
                break  # longest axis had candidates; honor the paper default

        if not np.isfinite(cost):
            # All member ranks share identical bounds on every axis (fully
            # overlapping decomposition): split the member list evenly so
            # the build always terminates.
            half = len(members) // 2
            inner_id = node_id
            nodes.append(None)  # placeholder until children exist
            left_id = build_node(members[:half])
            right_id = build_node(members[half:])
            nodes[inner_id] = AggInner(
                inner_id, axis=0, position=float(bounds.center[0]),
                left=left_id, right=right_id, bounds=bounds,
            )
            return inner_id

        # Overfull rule (§III-A): accept an oversized leaf rather than a
        # badly imbalanced split, when within the allowed size factor.
        if np.isfinite(config.overfull_cost_ratio):
            frac = 1.0 / (1.0 + config.overfull_cost_ratio)
            cost_threshold = abs(0.5 - frac)
            if cost >= cost_threshold and nbytes <= config.overfull_factor * config.target_size:
                return make_leaf(overfull=True)

        axis_uppers = rank_bounds[members, 1, axis]
        left_mask = axis_uppers <= pos
        left_members = members[left_mask]
        right_members = members[~left_mask]
        inner_id = node_id
        nodes.append(None)  # placeholder until children exist
        left_id = build_node(left_members)
        right_id = build_node(right_members)
        nodes[inner_id] = AggInner(
            inner_id, axis=axis, position=pos, left=left_id, right=right_id, bounds=bounds
        )
        return inner_id

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 4 * len(members_all)))
    try:
        build_node(members_all)
    finally:
        sys.setrecursionlimit(old_limit)

    tree.nodes = nodes
    tree.leaves = [n for n in nodes if isinstance(n, AggLeaf)]
    for i, leaf in enumerate(tree.leaves):
        leaf.leaf_index = i
    return tree
