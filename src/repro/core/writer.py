"""Two-phase adaptive write pipeline (paper §III, Fig 1).

The pipeline runs on a :class:`~repro.simmpi.VirtualCluster`:

1. gather (bounds, count) per rank to rank 0;
2. rank 0 builds the aggregation plan (adaptive k-d tree, or a baseline
   strategy such as AUG) and assigns aggregators;
3. scatter assignments;
4. every rank sends its particles to its leaf's aggregator (nonblocking
   point-to-point; a rank with no particles sends nothing);
5. each aggregator builds a BAT over its received particles and writes it
   to its own file;
6. aggregators send per-attribute ranges and root bitmaps to rank 0, which
   writes the top-level metadata file.

With materialized data the pipeline really moves the bytes and writes real
BAT files (lossless, query-able); timing always comes from the cost models,
so scaling studies can also run counts-only (DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from functools import partial

from ..atomic import publish_bytes
from ..machines import MachineSpec
from ..bat.builder import BATBuildConfig
from ..iosim.faults import FaultConfig, FaultInjector, FaultReport
from ..parallel import get_executor
from ..simmpi import Message, VirtualCluster
from ..types import ParticleBatch
from .aggtree import AggTreeConfig, build_aggregation_tree
from .assign import assign_write_aggregators
from .metadata import DatasetMetadata, build_metadata
from .rankdata import RankData

__all__ = ["TwoPhaseWriter", "WriteReport", "PHASE_NAMES"]

#: canonical phase names, in pipeline order (breakdown figures key off these)
PHASE_NAMES = (
    "gather rank info",
    "build aggregation tree",
    "scatter assignments",
    "transfer to aggregators",
    "construct BAT",
    "write files",
    "write metadata",
)

#: BAT structure overhead assumed for counts-only runs (paper §VI-B: ~0.9%,
#: plus page-alignment padding)
ESTIMATED_BAT_OVERHEAD = 1.02


@dataclass(frozen=True)
class _LeafSummary:
    """What rank 0 needs from one aggregator's build (§III-D).

    The serialized bytes stay in the worker — written straight to disk
    there when materializing — so a process pool never ships file images
    back through pickling.
    """

    attr_ranges: dict
    root_bitmaps: dict
    attr_binnings: dict
    nbytes: int
    #: publish attempts this leaf file needed (1 = first try verified clean)
    attempts: int = 1
    #: treelet payload bytes before/after per-column encoding (equal for
    #: raw-layout builds) — feeds WriteReport compression accounting
    payload_raw_bytes: int = 0
    payload_encoded_bytes: int = 0
    #: column name -> codec id the build chose (empty for v2/v3 builds)
    codec_table: dict = field(default_factory=dict)


def _build_leaf(layout_name: str, cfg, publish_cfg, item) -> _LeafSummary:
    """Build (and optionally publish) one aggregation leaf.

    Module-level and driven only by picklable arguments so every executor
    kind can run it. ``item`` is ``(batch, out_path | None, fault_plan)``;
    the file lands through the verified atomic-publish protocol, with
    ``fault_plan`` (precomputed on rank 0, see
    :meth:`~repro.iosim.faults.FaultInjector.plan_leaf_write`) damaging
    specific attempts.
    """
    from ..layouts import get_layout

    batch, out_path, fault_plan = item
    max_attempts, backoff_s = publish_cfg
    built = get_layout(layout_name).build(batch, cfg)
    attempts = 1
    if out_path is not None:
        attempts = publish_bytes(
            out_path,
            built.data,
            fault_plan=fault_plan,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
        )
    return _LeafSummary(
        attr_ranges=built.attr_ranges,
        root_bitmaps=built.root_bitmaps,
        attr_binnings=built.attr_binnings,
        nbytes=built.nbytes,
        attempts=attempts,
        payload_raw_bytes=getattr(built, "payload_raw_bytes", 0),
        payload_encoded_bytes=getattr(built, "payload_encoded_bytes", 0),
        codec_table=dict(getattr(built, "codec_table", {}) or {}),
    )


@dataclass
class WriteReport:
    """Outcome of one timestep write."""

    elapsed: float
    breakdown: dict[str, float]
    total_bytes: float
    n_files: int
    file_sizes: np.ndarray
    imbalance: float
    metadata: DatasetMetadata | None = None
    metadata_path: str | None = None
    plan: object = None
    #: what was injected and recovered from, when fault injection is on
    faults: FaultReport | None = None
    #: treelet payload bytes before/after per-column encoding, summed over
    #: every leaf build (equal unless the build config enables codecs)
    payload_raw_bytes: int = 0
    payload_encoded_bytes: int = 0
    #: column name -> codec id (the per-file choice of the first leaf that
    #: reported one; files may differ when sampling diverges per leaf)
    codec_table: dict = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Raw/encoded payload ratio (1.0 when codecs are off)."""
        if self.payload_encoded_bytes <= 0:
            return 1.0
        return self.payload_raw_bytes / self.payload_encoded_bytes

    @property
    def bandwidth(self) -> float:
        """Apparent write bandwidth in bytes/s, as a simulation observes it."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0


class TwoPhaseWriter:
    """Spatially aware two-phase writer with a pluggable aggregation strategy.

    ``strategy`` is either ``"adaptive"`` (the paper's contribution) or a
    callable ``(bounds, counts, bytes_per_particle, target_size) -> plan``
    where the plan exposes ``leaves`` (used for the AUG baseline).
    """

    def __init__(
        self,
        machine: MachineSpec,
        target_size: int | str = 8 << 20,
        strategy="adaptive",
        agg_config: AggTreeConfig | None = None,
        bat_config: BATBuildConfig | None = None,
        layout: str = "bat",
        network_model: str = "phase",
        executor=None,
        faults: FaultConfig | None = None,
    ):
        from ..layouts import get_layout

        self.machine = machine
        self.strategy = strategy
        self.network_model = network_model
        #: fault-injection config; None (or all-zero probabilities) leaves
        #: the pipeline byte- and timing-identical to a fault-free run
        self.faults = faults
        #: execution layer for per-aggregator builds and file writes; a
        #: spec string ("serial", "thread:8", "process:4"), an Executor
        #: instance to share a pool across writes, or None for the
        #: REPRO_EXECUTOR/serial default (see repro.parallel)
        self.executor = get_executor(executor)
        self.layout = get_layout(layout)
        if layout != "bat" and bat_config is not None:
            raise ValueError("bat_config only applies to the 'bat' layout")
        if target_size == "auto":
            # resolved per write from the timestep's size (§VII extension)
            if agg_config is not None:
                raise ValueError("agg_config cannot be combined with target_size='auto'")
            self.target_size = "auto"
            self.agg_config = None
        else:
            self.target_size = int(target_size)
            self.agg_config = agg_config or AggTreeConfig(target_size=self.target_size)
            if self.agg_config.target_size != self.target_size:
                raise ValueError("agg_config.target_size disagrees with target_size")
        self.bat_config = bat_config or BATBuildConfig()

    # -- plan ---------------------------------------------------------------

    def _resolve_target(self, data: RankData) -> tuple[int, AggTreeConfig]:
        if self.target_size == "auto":
            from .autotune import recommend_target_size

            target = recommend_target_size(data.total_bytes, data.nranks)
            # the paper's evaluated overfull settings (§VI-A2)
            return target, AggTreeConfig(
                target_size=target, overfull_cost_ratio=4.0, overfull_factor=1.5
            )
        return self.target_size, self.agg_config

    def build_plan(self, data: RankData):
        target, agg_config = self._resolve_target(data)
        if self.strategy == "adaptive":
            return build_aggregation_tree(
                data.bounds, data.counts, data.bytes_per_particle, agg_config
            )
        if callable(self.strategy):
            return self.strategy(data.bounds, data.counts, data.bytes_per_particle, target)
        raise ValueError(f"unknown strategy {self.strategy!r}")

    # -- pipeline -------------------------------------------------------------

    def write(
        self,
        data: RankData,
        out_dir=None,
        name: str = "timestep",
    ) -> WriteReport:
        """Write one timestep; returns the report with modeled timings.

        When ``data`` is materialized and ``out_dir`` is given, real BAT
        files and the metadata manifest land in ``out_dir``.
        """
        materialize = data.materialized and out_dir is not None
        if out_dir is not None:
            out_dir = Path(out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)

        nranks = data.nranks
        cluster = VirtualCluster(nranks, self.machine, network_model=self.network_model)
        net = self.machine.network

        faults = self.faults if (self.faults is not None and self.faults.any_enabled) else None
        injector = FaultInjector(faults) if faults is not None else None
        fault_report = FaultReport() if injector is not None else None

        # 1. gather rank info
        cluster.gather_to_root(PHASE_NAMES[0], self.machine.rank_meta_bytes)

        # 2. aggregation plan on rank 0 (modeled serial cost ~ R log R)
        plan = self.build_plan(data)
        r_active = max(int((data.counts > 0).sum()), 1)
        tree_cost = self.machine.tree_build_coeff * r_active * max(math.log2(r_active), 1.0)
        cluster.root_compute(PHASE_NAMES[1], tree_cost)

        leaves = list(plan.leaves)
        n_leaves = len(leaves)
        aggregators = assign_write_aggregators(n_leaves, nranks)
        for leaf, agg in zip(leaves, aggregators):
            leaf.aggregator = int(agg)

        # 3. scatter assignments: each rank gets its aggregator id and count;
        # aggregators additionally get their member-rank list.
        member_bytes = sum(len(l.rank_ids) for l in leaves) * 12 / nranks
        cluster.scatter_from_root(PHASE_NAMES[2], 16 + member_bytes)

        # 4. transfer particles to aggregators
        bpp = data.bytes_per_particle
        messages = []
        for leaf in leaves:
            for r in leaf.rank_ids:
                c = int(data.counts[r])
                if c > 0:
                    messages.append(Message(int(r), leaf.aggregator, c * bpp))
        if injector is not None:
            # Dropped messages cost their lost transmission plus a
            # retransmit phase; duplicates cost the wire twice. The
            # functional data path below concatenates member batches
            # directly, so only timing is perturbed.
            timing, retransmits, dropped, duplicated = injector.perturb_messages(messages)
            fault_report.dropped_messages = dropped
            fault_report.duplicated_messages = duplicated
            cluster.p2p(PHASE_NAMES[3], timing)
            if retransmits:
                cluster.p2p("retransmit dropped messages", retransmits)
        else:
            cluster.p2p(PHASE_NAMES[3], messages)

        # Aggregator death: ranks that die after receiving particles but
        # before building their files. Affected leaves are reassigned
        # deterministically to surviving ranks and the members re-send.
        if injector is not None and faults.aggregator_death > 0.0:
            dead = injector.sample_dead_aggregators(aggregators)
            if dead:
                dead_set = set(dead)
                alive = [r for r in range(nranks) if r not in dead_set]
                retransfer = []
                n_reassigned = 0
                for i, leaf in enumerate(leaves):
                    if leaf.aggregator in dead_set:
                        leaf.aggregator = alive[i % len(alive)]
                        n_reassigned += 1
                        for r in leaf.rank_ids:
                            c = int(data.counts[r])
                            if c > 0:
                                retransfer.append(Message(int(r), leaf.aggregator, c * bpp))
                aggregators = np.array([l.aggregator for l in leaves], dtype=np.int64)
                if retransfer:
                    cluster.p2p("recover dead aggregators", retransfer)
                fault_report.dead_aggregators = dead
                fault_report.reassigned_leaves = n_reassigned

        # Functional aggregation: concatenate member batches per leaf.
        built = None
        payload_raw = payload_enc = 0
        codec_table: dict = {}
        leaf_batches: list[ParticleBatch] | None = None
        if data.materialized:
            leaf_batches = [
                ParticleBatch.concatenate([data.batches[r] for r in leaf.rank_ids])
                for leaf in leaves
            ]

        # 5. BAT construction on aggregators (per-rank, sums over the leaves
        # a rank aggregates)
        bat_seconds = np.zeros(nranks)
        for leaf in leaves:
            bat_seconds[leaf.aggregator] += leaf.count / self.machine.bat_build_rate
        cluster.compute(PHASE_NAMES[4], bat_seconds)

        ext = self.layout.extension
        file_names = [f"{name}.{i:05d}{ext}" for i in range(n_leaves)]
        leaf_ranges: list[dict] = []
        leaf_bitmaps: list[dict] = []
        leaf_binnings: list[dict] | None = None
        write_sizes = np.zeros(nranks)
        file_sizes = np.zeros(n_leaves)
        # Per-leaf fault plans are precomputed here (rank 0) as picklable
        # tuples so any executor replays them identically; retry_sizes
        # accumulates the extra bytes each aggregator re-publishes.
        plans = (
            [injector.plan_leaf_write(i) for i in range(n_leaves)]
            if injector is not None
            else None
        )
        retry_sizes = np.zeros(nranks)
        if leaf_batches is not None:
            cfg = self.bat_config if self.layout.name == "bat" else None
            publish_cfg = (
                (faults.max_write_attempts, faults.retry_backoff_s)
                if faults is not None
                else (1, 0.0)
            )
            # One task per aggregation leaf: every BuiltBAT is independent,
            # so builds and file writes fan out across the executor; the
            # rank-0 metadata assembly below is the only barrier. Results
            # come back in leaf order, so parallel runs are bit-identical
            # to serial ones.
            tasks = [
                (
                    b,
                    str(out_dir / file_names[i]) if materialize else None,
                    plans[i] if plans is not None else (),
                )
                for i, b in enumerate(leaf_batches)
            ]
            built = self.executor.map(
                partial(_build_leaf, self.layout.name, cfg, publish_cfg), tasks
            )
            leaf_binnings = []
            for i, (leaf, bb) in enumerate(zip(leaves, built)):
                leaf_ranges.append(bb.attr_ranges)
                leaf_bitmaps.append(bb.root_bitmaps)
                leaf_binnings.append(bb.attr_binnings)
                write_sizes[leaf.aggregator] += bb.nbytes
                file_sizes[i] = bb.nbytes
                payload_raw += bb.payload_raw_bytes
                payload_enc += bb.payload_encoded_bytes
                if not codec_table and bb.codec_table:
                    codec_table = dict(bb.codec_table)
                if fault_report is not None:
                    self._tally_attempts(
                        fault_report, plans[i], bb.attempts, leaf, bb.nbytes, retry_sizes
                    )
        else:
            for i, leaf in enumerate(leaves):
                leaf_ranges.append({})
                leaf_bitmaps.append({})
                size = leaf.nbytes * ESTIMATED_BAT_OVERHEAD
                write_sizes[leaf.aggregator] += size
                file_sizes[i] = size
                if fault_report is not None:
                    # counts-only run: every damaged attempt in the plan
                    # would have been consumed before the clean publish
                    self._tally_attempts(
                        fault_report, plans[i], len(plans[i]) + 1, leaf, size, retry_sizes
                    )

        # 6. write aggregator files
        writers = write_sizes > 0
        creates = np.bincount(
            aggregators, weights=np.ones(n_leaves), minlength=nranks
        )
        avg_creates = float(creates[writers].mean()) if writers.any() else 1.0
        cluster.write_independent(PHASE_NAMES[5], write_sizes, creates=avg_creates)
        if fault_report is not None and retry_sizes.any():
            cluster.retry_writes("retry failed writes", retry_sizes)

        # 7. metadata: aggregators send ranges+bitmaps to rank 0, which
        # writes the manifest.
        n_attrs = max(len(leaf_ranges[0]) if leaf_ranges else 0, 1)
        cluster.gather_to_root("gather leaf summaries", 20.0 * n_attrs)
        attr_dtypes = None
        if leaf_batches is not None and leaf_batches:
            attr_dtypes = {
                n: a.dtype.str for n, a in leaf_batches[0].attributes.items()
            }
        metadata = build_metadata(
            plan, nranks, file_names, leaf_ranges, leaf_bitmaps, leaf_binnings,
            layout=self.layout.name, attr_dtypes=attr_dtypes,
        )
        meta_bytes = metadata.json_size
        cluster.root_small_write(PHASE_NAMES[6], meta_bytes)
        metadata_path = None
        if materialize:
            metadata_path = str(out_dir / f"{name}.meta.json")
            metadata.save(metadata_path)

        breakdown = cluster.breakdown()
        breakdown[PHASE_NAMES[6]] = breakdown.pop(PHASE_NAMES[6], 0.0) + breakdown.pop(
            "gather leaf summaries", 0.0
        )
        counts_arr = np.array([l.count for l in leaves], dtype=np.float64)
        imbalance = float(counts_arr.max() / counts_arr.mean()) if n_leaves else 1.0
        return WriteReport(
            elapsed=cluster.elapsed,
            breakdown=breakdown,
            total_bytes=data.total_bytes,
            n_files=n_leaves,
            file_sizes=file_sizes,
            imbalance=imbalance,
            metadata=metadata,
            metadata_path=metadata_path,
            plan=plan,
            faults=fault_report,
            payload_raw_bytes=payload_raw,
            payload_encoded_bytes=payload_enc,
            codec_table=codec_table,
        )

    @staticmethod
    def _tally_attempts(
        report: FaultReport, plan: tuple, attempts: int, leaf, nbytes: float,
        retry_sizes: np.ndarray,
    ) -> None:
        """Fold one leaf's publish attempts into the fault report."""
        report.write_attempts += attempts
        if attempts > 1:
            report.retried_writes += 1
            retry_sizes[leaf.aggregator] += (attempts - 1) * nbytes
        for kind, _frac in plan[: attempts - 1]:
            if kind == "torn":
                report.injected_torn += 1
            elif kind == "bitflip":
                report.injected_bit_flips += 1
