"""Per-rank simulation state handed to the I/O layer.

A :class:`RankData` is what the whole virtual job would pass to the write
call: every rank's domain bounds and particle count, plus (optionally) the
actual particles. Timing-only runs at large virtual scale carry counts but
no particle arrays — the aggregation tree, assignments, message sizes, and
file sizes only need counts and bounds (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import AttributeSpec, ParticleBatch

__all__ = ["RankData"]


@dataclass
class RankData:
    """Bounds, counts, and optional particle payloads for every rank.

    ``bounds`` is ``(R, 2, 3)``; ``counts`` length R. ``batches`` is either
    ``None`` (timing-only) or a list of R :class:`ParticleBatch`, where
    ranks without particles hold empty batches. ``bytes_per_particle`` must
    be given in timing-only mode; with payloads it is derived.
    """

    bounds: np.ndarray
    counts: np.ndarray
    batches: list[ParticleBatch] | None = None
    bytes_per_particle: float | None = None

    def __post_init__(self) -> None:
        self.bounds = np.asarray(self.bounds, dtype=np.float64).reshape(-1, 2, 3)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if len(self.bounds) != len(self.counts):
            raise ValueError("bounds and counts length mismatch")
        if self.batches is not None:
            if len(self.batches) != len(self.counts):
                raise ValueError("batches length mismatch")
            for r, (b, c) in enumerate(zip(self.batches, self.counts)):
                if len(b) != c:
                    raise ValueError(f"rank {r}: batch has {len(b)} particles, count says {c}")
            total = int(self.counts.sum())
            if total > 0:
                payload = sum(b.nbytes for b in self.batches)
                self.bytes_per_particle = payload / total
            elif self.bytes_per_particle is None:
                # an entirely empty timestep carries no payload at all
                self.bytes_per_particle = 0.0
        if self.bytes_per_particle is None:
            raise ValueError("bytes_per_particle required when batches is None")

    @property
    def nranks(self) -> int:
        return len(self.counts)

    @property
    def total_particles(self) -> int:
        return int(self.counts.sum())

    @property
    def total_bytes(self) -> float:
        return float(self.total_particles * self.bytes_per_particle)

    @property
    def materialized(self) -> bool:
        return self.batches is not None

    def attribute_specs(self) -> list[AttributeSpec]:
        if not self.materialized:
            return []
        for b in self.batches:
            if len(b) > 0:
                return b.attribute_specs()
        return []

    @staticmethod
    def from_batches(batches: list[ParticleBatch]) -> "RankData":
        """Derive bounds and counts from actual per-rank particles."""
        bounds = np.zeros((len(batches), 2, 3))
        counts = np.zeros(len(batches), dtype=np.int64)
        for r, b in enumerate(batches):
            counts[r] = len(b)
            bounds[r] = b.bounds.as_array() if len(b) else np.zeros((2, 3))
        return RankData(bounds=bounds, counts=counts, batches=batches)
