"""Time-series catalogs: many timesteps of one simulation in one directory.

Both evaluation workloads are *time series* — the Coal Boiler writes
timesteps 501…4501 and the Dam Break 0…4001 — and a post-hoc analysis tool
needs to discover and navigate them. A :class:`TimeSeriesWriter` wraps the
two-phase writer, names each step's files consistently, and maintains a
small catalog file (``series.json``) recording every written step, its
particle count, data bounds, and global attribute ranges over time.
:class:`TimeSeriesDataset` reads it back and opens any step as a
:class:`~repro.core.dataset.BATDataset`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..api import QueryRequest, warn_deprecated
from ..atomic import atomic_write_bytes
from ..machines import MachineSpec
from ..types import Box
from .dataset import BATDataset
from .rankdata import RankData
from .writer import TwoPhaseWriter, WriteReport

__all__ = ["TimeSeriesWriter", "TimeSeriesDataset", "StepRecord"]

CATALOG_NAME = "series.json"
CATALOG_VERSION = 1


@dataclass
class StepRecord:
    """One timestep's entry in the catalog."""

    step: int
    metadata_file: str
    n_particles: int
    n_files: int
    bounds: Box
    write_seconds: float

    def to_doc(self) -> dict:
        return {
            "step": self.step,
            "metadata": self.metadata_file,
            "particles": self.n_particles,
            "files": self.n_files,
            "bounds": [list(self.bounds.lower), list(self.bounds.upper)],
            "write_seconds": self.write_seconds,
        }

    @staticmethod
    def from_doc(doc: dict) -> "StepRecord":
        return StepRecord(
            step=doc["step"],
            metadata_file=doc["metadata"],
            n_particles=doc["particles"],
            n_files=doc["files"],
            bounds=Box(tuple(doc["bounds"][0]), tuple(doc["bounds"][1])),
            write_seconds=doc["write_seconds"],
        )


class TimeSeriesWriter:
    """Writes a simulation's timesteps and maintains the series catalog.

    Accepts the same configuration as :class:`TwoPhaseWriter` (including
    ``target_size="auto"``, which re-tunes per step as the population
    grows — the paper's recommendation for injection simulations).
    """

    def __init__(self, machine: MachineSpec, directory, **writer_kwargs):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.writer = TwoPhaseWriter(machine, **writer_kwargs)
        self._steps: dict[int, StepRecord] = {}
        catalog = self.directory / CATALOG_NAME
        if catalog.exists():
            for rec in _load_catalog(catalog):
                self._steps[rec.step] = rec

    @property
    def steps(self) -> list[int]:
        return sorted(self._steps)

    def write_step(self, step: int, data: RankData) -> WriteReport:
        """Write one timestep and update the catalog atomically-ish.

        Re-writing an existing step replaces its record (the files are
        overwritten in place, as a restarted simulation would).
        """
        if step < 0:
            raise ValueError("step must be >= 0")
        name = f"ts{step:06d}"
        report = self.writer.write(data, out_dir=self.directory, name=name)
        if report.metadata_path is None:
            raise ValueError("time-series writes require materialized data")
        bounds = Box.empty()
        for leaf in report.metadata.leaves:
            bounds = bounds.union(leaf.bounds)
        self._steps[step] = StepRecord(
            step=step,
            metadata_file=Path(report.metadata_path).name,
            n_particles=report.metadata.total_particles,
            n_files=report.n_files,
            bounds=bounds,
            write_seconds=report.elapsed,
        )
        self._save()
        return report

    def _save(self) -> None:
        doc = {
            "format": "bat-series",
            "version": CATALOG_VERSION,
            "steps": [self._steps[s].to_doc() for s in sorted(self._steps)],
        }
        atomic_write_bytes(
            self.directory / CATALOG_NAME, json.dumps(doc, indent=1).encode()
        )


def _load_catalog(path: Path) -> list[StepRecord]:
    doc = json.loads(path.read_text())
    if doc.get("format") != "bat-series":
        raise ValueError(f"{path} is not a BAT series catalog")
    if doc.get("version") != CATALOG_VERSION:
        raise ValueError(f"unsupported series catalog version {doc.get('version')}")
    return [StepRecord.from_doc(d) for d in doc["steps"]]


class TimeSeriesDataset:
    """Read-side view over a written time series.

    All steps share one bounded LRU cache of open leaf-file handles, so
    scrubbing back and forth through a long series re-uses mmaps without
    ever holding more than ``max_open_files`` descriptors. ``executor``
    is forwarded to each step's :class:`BATDataset` (see
    :mod:`repro.parallel`).
    """

    def __init__(self, directory, executor=None, max_open_files: int | None = None):
        from ..bat.filecache import DEFAULT_CAPACITY, BATFileCache

        self.directory = Path(directory)
        self.records = {r.step: r for r in _load_catalog(self.directory / CATALOG_NAME)}
        self._open: dict[int, BATDataset] = {}
        self._executor = executor
        self._cache = BATFileCache(max_open_files or DEFAULT_CAPACITY)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._open.clear()
        self._cache.close()

    def __enter__(self) -> "TimeSeriesDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- navigation -------------------------------------------------------------

    @property
    def steps(self) -> list[int]:
        return sorted(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def record(self, step: int) -> StepRecord:
        return self.records[step]

    def step(self, step: int) -> BATDataset:
        """Open (and cache) one timestep."""
        ds = self._open.get(step)
        if ds is None:
            rec = self.records[step]
            ds = BATDataset(
                self.directory / rec.metadata_file,
                executor=self._executor,
                file_cache=self._cache,
            )
            self._open[step] = ds
        return ds

    def nearest_step(self, step: int) -> int:
        """The written step closest to ``step`` (scrubbing support)."""
        if not self.records:
            raise ValueError("empty time series")
        return min(self.records, key=lambda s: (abs(s - step), s))

    # -- series-level queries ------------------------------------------------------

    def particle_counts(self) -> dict[int, int]:
        return {s: self.records[s].n_particles for s in self.steps}

    def attr_range_over_time(self, name: str) -> dict[int, tuple[float, float]]:
        """Global range of one attribute at every step (opens metadata only)."""
        out = {}
        for s in self.steps:
            ds = self.step(s)
            if name not in ds.attr_ranges:
                raise KeyError(f"no attribute {name!r} at step {s}")
            out[s] = ds.attr_ranges[name]
        return out

    def query_over_time(self, request=None, steps=None, **query_kwargs):
        """Run the same query against several steps; yields (step, batch, stats).

        ``request`` is a :class:`~repro.api.QueryRequest` replayed against
        every step. The old keyword form (``query_over_time(quality=0.3,
        ...)``) still works as a deprecated shim.
        """
        if query_kwargs or not isinstance(request, (QueryRequest, type(None))):
            warn_deprecated(
                "TimeSeriesDataset.query_over_time(**kwargs)",
                "pass a repro.QueryRequest",
            )
            if not isinstance(request, (QueryRequest, type(None))):
                # old first positional was `steps`
                steps, request = request, None
            if request is None:
                if "attributes" in query_kwargs:
                    query_kwargs["columns"] = query_kwargs.pop("attributes")
                request = QueryRequest(**query_kwargs)
        elif request is None:
            request = QueryRequest()
        for s in steps if steps is not None else self.steps:
            batch, stats = self.step(s).query(request)
            yield s, batch, stats
