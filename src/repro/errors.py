"""The consolidated user-facing exception hierarchy.

Every error the library deliberately raises at its public boundaries derives
from :class:`ReproError`, so ``except repro.errors.ReproError`` catches all of
them. Each class additionally inherits the builtin exception callers written
against earlier revisions expect (``ValueError``, ``RuntimeError``,
``OSError``), so pre-existing ``except``/``pytest.raises`` code keeps working
unchanged.

These live at the package root because they cross layers: the format layer
raises :class:`IntegrityError` and :class:`CodecError`, the dataset layer
catches them to quarantine leaves and raises :class:`InvalidRequestError` for
malformed queries, and the serve layer raises :class:`AdmissionRejected` and
counts integrity failures in its metrics snapshot.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IntegrityError",
    "LeafUnavailableError",
    "PublishError",
    "AdmissionRejected",
    "CodecError",
    "InvalidRequestError",
]


class ReproError(Exception):
    """Base class of every exception this library raises on purpose."""


class IntegrityError(ReproError, ValueError):
    """A BAT file (or one of its sections) failed a structural or checksum test.

    Subclasses :class:`ValueError` so callers written against the
    pre-checksum format (``except ValueError``, ``pytest.raises(ValueError)``)
    keep working unchanged.

    ``section`` names what failed (``"header"``, ``"dictionary"``,
    ``"treelet 3"``, ...) and ``path`` the offending file, when known.
    """

    def __init__(self, message: str, *, section: str | None = None, path: str | None = None):
        super().__init__(message)
        self.section = section
        self.path = path


class LeafUnavailableError(ReproError, RuntimeError):
    """A leaf file a query plan needs cannot be used (missing or corrupt).

    Raised at the dataset boundary instead of letting a bare
    ``FileNotFoundError`` or :class:`IntegrityError` escape from deep inside
    the reader, so the message names the leaf file, its index, and — when
    queried through a time series — the timestep.
    """

    def __init__(self, message: str, *, leaf_index: int | None = None,
                 path: str | None = None):
        super().__init__(message)
        self.leaf_index = leaf_index
        self.path = path


class PublishError(ReproError, OSError):
    """Atomic publication of a file failed after every retry attempt.

    The target path is left untouched: either the previous version is still
    in place or the file never existed. No partially written file is visible.
    """


class AdmissionRejected(ReproError, RuntimeError):
    """The serve-layer scheduler refused a request because a queue bound was hit.

    Carries no partial state: the request was never enqueued. Clients are
    expected to back off and retry. (Re-exported from ``repro.serve`` for
    compatibility with code that imported it from there.)
    """

    def __init__(self, reason: str, queue_depth: int | None = None):
        super().__init__(reason)
        self.reason = reason
        self.queue_depth = queue_depth


class CodecError(ReproError, ValueError):
    """A column codec failed: unknown codec id, malformed encoded bytes, or a
    configuration that the codec cannot honor (e.g. delta+bitpack on floats).

    ``codec`` names the codec involved and ``column`` the attribute column,
    when known.
    """

    def __init__(self, message: str, *, codec: str | None = None, column: str | None = None):
        super().__init__(message)
        self.codec = codec
        self.column = column


class InvalidRequestError(ReproError, ValueError):
    """A query request is malformed (bad quality range, unknown engine,
    unknown column, inverted filter bounds, ...).

    Subclasses :class:`ValueError` so existing callers that guarded query
    parameters with ``except ValueError`` keep working.
    """
