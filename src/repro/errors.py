"""Shared exception types for integrity and durability failures.

These live at the package root because they cross layers: the format layer
raises them, the dataset layer catches them to quarantine leaves, and the
serve layer counts them in its metrics snapshot.
"""

from __future__ import annotations

__all__ = ["IntegrityError", "LeafUnavailableError", "PublishError"]


class IntegrityError(ValueError):
    """A BAT file (or one of its sections) failed a structural or checksum test.

    Subclasses :class:`ValueError` so callers written against the
    pre-checksum format (``except ValueError``, ``pytest.raises(ValueError)``)
    keep working unchanged.

    ``section`` names what failed (``"header"``, ``"dictionary"``,
    ``"treelet 3"``, ...) and ``path`` the offending file, when known.
    """

    def __init__(self, message: str, *, section: str | None = None, path: str | None = None):
        super().__init__(message)
        self.section = section
        self.path = path


class LeafUnavailableError(RuntimeError):
    """A leaf file a query plan needs cannot be used (missing or corrupt).

    Raised at the dataset boundary instead of letting a bare
    ``FileNotFoundError`` or :class:`IntegrityError` escape from deep inside
    the reader, so the message names the leaf file, its index, and — when
    queried through a time series — the timestep.
    """

    def __init__(self, message: str, *, leaf_index: int | None = None,
                 path: str | None = None):
        super().__init__(message)
        self.leaf_index = leaf_index
        self.path = path


class PublishError(OSError):
    """Atomic publication of a file failed after every retry attempt.

    The target path is left untouched: either the previous version is still
    in place or the file never existed. No partially written file is visible.
    """
