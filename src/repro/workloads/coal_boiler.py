"""Synthetic Coal Boiler: a stand-in for the Uintah coal-injection series.

The paper's Coal Boiler (§VI-A2, Fig 8a) injects coal particles into a
boiler: the population grows from 4.6M particles at timestep 501 to 41.5M
at timestep 4501, strongly clustered around the injection plumes and
drifting upward over time, on a 3D rank grid resized to the data bounds
each step. We cannot obtain the production Uintah dataset, so this module
generates a distribution with the same I/O-relevant structure
(DESIGN.md §2):

- matching published total counts over the same timestep range,
- a small number of wall inlets feeding buoyant, swirling plumes, so the
  per-rank particle histogram is highly nonuniform,
- growing occupied volume, so the fitted domain (and hence the rank grid)
  changes over time.

Each particle carries 3 float32 coordinates and 7 float64 attributes,
matching the paper's 68 B/particle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rankdata import RankData
from ..types import Box, ParticleBatch
from .decomposition import grid_decompose, grid_dims, rank_cell_index

__all__ = ["CoalBoiler"]

#: attribute names (7 double-precision values per particle, as in the paper)
ATTRIBUTES = ("temperature", "vel_u", "vel_v", "vel_w", "char_mass", "moisture", "diameter")


@dataclass(frozen=True)
class CoalBoiler:
    """Deterministic synthetic boiler; all sampling is seeded by timestep."""

    #: boiler interior (x, y footprint; z up)
    domain: Box = Box((0.0, 0.0, 0.0), (6.0, 6.0, 12.0))
    n_inlets: int = 8
    inlet_height: float = 1.0
    #: plume rise speed in domain units per timestep
    rise_per_step: float = 4.0e-3
    #: radial spread growth per timestep of age
    spread_per_step: float = 1.2e-3
    ts_start: int = 501
    ts_end: int = 4501
    particles_start: int = 4_600_000
    particles_end: int = 41_500_000
    seed: int = 1234

    # -- population ---------------------------------------------------------

    def total_particles(self, timestep: int) -> int:
        """Published linear growth: 4.6M at ts 501 to 41.5M at ts 4501."""
        if timestep < self.ts_start:
            raise ValueError(f"timestep must be >= {self.ts_start}")
        frac = min((timestep - self.ts_start) / (self.ts_end - self.ts_start), 1.0)
        return int(self.particles_start + frac * (self.particles_end - self.particles_start))

    def _inlet_positions(self) -> np.ndarray:
        """Inlets spaced around the boiler walls at the injection height."""
        lo = np.asarray(self.domain.lower)
        ext = self.domain.extents
        theta = np.linspace(0, 2 * np.pi, self.n_inlets, endpoint=False)
        cx, cy = lo[0] + ext[0] / 2, lo[1] + ext[1] / 2
        rx, ry = 0.45 * ext[0], 0.45 * ext[1]
        return np.column_stack(
            [cx + rx * np.cos(theta), cy + ry * np.sin(theta), np.full_like(theta, lo[2] + self.inlet_height)]
        )

    # -- sampling -------------------------------------------------------------

    def sample(self, timestep: int, n: int) -> ParticleBatch:
        """Draw ``n`` particles from the distribution at ``timestep``.

        Injection is continuous, so a particle's age is uniform over the
        elapsed time; position follows its inlet's rising, swirling,
        spreading plume, clamped inside the boiler.
        """
        rng = np.random.default_rng((self.seed, timestep))
        inlets = self._inlet_positions()
        lo = np.asarray(self.domain.lower)
        hi = np.asarray(self.domain.upper)

        which = rng.integers(0, self.n_inlets, n)
        elapsed = timestep - self.ts_start + 1
        age = rng.random(n) * elapsed

        centers = inlets[which]
        # swirl: plume centers orbit the boiler axis as they rise
        cx, cy = (lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2
        dx = centers[:, 0] - cx
        dy = centers[:, 1] - cy
        swirl = 1.5e-3 * age
        cosw, sinw = np.cos(swirl), np.sin(swirl)
        px = cx + dx * cosw - dy * sinw
        py = cy + dx * sinw + dy * cosw
        pz = centers[:, 2] + self.rise_per_step * age

        sigma = 0.05 + self.spread_per_step * age
        pos = np.column_stack([px, py, pz]) + rng.normal(0.0, 1.0, (n, 3)) * sigma[:, None]
        # Reflect at the walls rather than clamping: clamping would pile
        # particles into dense sheets on the boundary faces, which no real
        # boiler flow produces.
        ext = np.where(hi > lo, hi - lo, 1.0)
        folded = np.mod(pos - lo, 2.0 * ext)
        pos = lo + np.where(folded > ext, 2.0 * ext - folded, folded)

        temp = 1400.0 - 60.0 * (pos[:, 2] - lo[2]) + rng.normal(0, 25.0, n)
        attrs = {
            "temperature": temp,
            "vel_u": rng.normal(0.0, 0.5, n),
            "vel_v": rng.normal(0.0, 0.5, n),
            "vel_w": 2.0 + rng.normal(0.0, 0.3, n),
            "char_mass": np.exp(-age / max(elapsed, 1)) * rng.random(n),
            "moisture": np.clip(0.3 - 1e-4 * age, 0.0, None),
            "diameter": 50e-6 + 40e-6 * rng.random(n),
        }
        return ParticleBatch(pos.astype(np.float32), attrs)

    # -- rank data -------------------------------------------------------------

    def data_bounds(self, timestep: int, sample: ParticleBatch | None = None) -> Box:
        """Bounds the simulation's resized grid would fit at this step."""
        if sample is None:
            sample = self.sample(timestep, 20_000)
        return sample.bounds

    def rank_data(
        self,
        timestep: int,
        nranks: int,
        scale: float = 1.0,
        materialize: bool = False,
        sample_size: int = 200_000,
    ) -> RankData:
        """Per-rank counts (and optionally particles) at one timestep.

        The rank grid is refit to the data bounds, as Uintah resizes its
        domain. ``scale`` shrinks the published totals for functional runs
        (e.g. ``scale=1e-3`` gives a 4.6k→41.5k series); timing-only runs
        keep ``scale=1`` and bin a Monte-Carlo sample to estimate per-rank
        counts.
        """
        total = max(int(self.total_particles(timestep) * scale), 1)
        n_sample = total if materialize else min(total, sample_size)
        batch = self.sample(timestep, n_sample)

        bounds_box = batch.bounds
        rank_bounds = grid_decompose(bounds_box, nranks, ndims=3)
        dims = grid_dims(nranks, 3, bounds_box.extents)
        cells = rank_cell_index(batch.positions, bounds_box, dims)

        if materialize:
            batches = []
            counts = np.zeros(nranks, dtype=np.int64)
            for r in range(nranks):
                sel = cells == r
                counts[r] = int(sel.sum())
                batches.append(batch.select(sel))
            return RankData(bounds=rank_bounds, counts=counts, batches=batches)

        hist = np.bincount(cells, minlength=nranks).astype(np.float64)
        counts = np.round(hist * (total / max(hist.sum(), 1))).astype(np.int64)
        bpp = 3 * 4 + 7 * 8
        return RankData(bounds=rank_bounds, counts=counts, bytes_per_particle=float(bpp))
