"""The fixed uniform distribution of the weak-scaling study (§VI-A1).

"To represent a moderately sized simulation, we generate 32k particles on
each rank. Each particle stores three single precision spatial coordinates
and 14 double precision attributes, corresponding to 4.06 MB per rank."
"""

from __future__ import annotations

import numpy as np

from ..core.rankdata import RankData
from ..types import Box, ParticleBatch
from .decomposition import grid_decompose

__all__ = [
    "PARTICLES_PER_RANK",
    "N_ATTRIBUTES",
    "BYTES_PER_PARTICLE",
    "uniform_rank_data",
    "compressible_rank_data",
]

PARTICLES_PER_RANK = 32_768
N_ATTRIBUTES = 14
#: 3 float32 coordinates + 14 float64 attributes = 124 B (4.06 MB per rank)
BYTES_PER_PARTICLE = 3 * 4 + N_ATTRIBUTES * 8


def uniform_rank_data(
    nranks: int,
    particles_per_rank: int = PARTICLES_PER_RANK,
    n_attributes: int = N_ATTRIBUTES,
    domain: Box | None = None,
    materialize: bool = False,
    seed: int = 0,
) -> RankData:
    """Uniformly distributed particles on a 3D rank grid.

    Timing-only by default (counts and bounds carry the whole weak-scaling
    study); ``materialize=True`` generates real particles for functional
    runs at small rank counts.
    """
    if nranks <= 0 or particles_per_rank < 0:
        raise ValueError("nranks must be positive and particles_per_rank >= 0")
    domain = domain or Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    bounds = grid_decompose(domain, nranks, ndims=3)
    counts = np.full(nranks, particles_per_rank, dtype=np.int64)
    bpp = 3 * 4 + n_attributes * 8

    if not materialize:
        return RankData(bounds=bounds, counts=counts, bytes_per_particle=float(bpp))

    rng = np.random.default_rng(seed)
    batches = []
    for r in range(nranks):
        lo, hi = bounds[r]
        pos = lo + rng.random((particles_per_rank, 3)) * (hi - lo)
        attrs = {
            f"attr{a:02d}": rng.random(particles_per_rank) for a in range(n_attributes)
        }
        batches.append(ParticleBatch(pos.astype(np.float32), attrs))
    return RankData(bounds=bounds, counts=counts, batches=batches)


def compressible_rank_data(
    nranks: int,
    particles_per_rank: int = 16_384,
    domain: Box | None = None,
    seed: int = 0,
) -> RankData:
    """Structured particles with realistically compressible columns.

    Simulation outputs are rarely uniform noise: particles sit on near-
    regular lattices, identifiers are sequential, categorical attributes
    come from small alphabets, and measured fields carry limited
    precision. This workload models that mix so the codec layer has
    something honest to chew on:

    - ``positions`` — a jittered lattice filling each rank's block,
      snapped to a fine power-of-two grid (limited output precision);
    - ``id`` — globally sequential int64 (delta+bitpack's best case);
    - ``species`` — ints from an 8-symbol alphabet;
    - ``temp`` — a smooth field rounded to a coarse measurement grid;
    - ``rho`` — full-precision random floats (incompressible control:
      the sampler must leave this column ``raw``).
    """
    if nranks <= 0 or particles_per_rank < 0:
        raise ValueError("nranks must be positive and particles_per_rank >= 0")
    domain = domain or Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    bounds = grid_decompose(domain, nranks, ndims=3)
    counts = np.full(nranks, particles_per_rank, dtype=np.int64)
    rng = np.random.default_rng(seed)
    batches = []
    side = max(int(round(particles_per_rank ** (1.0 / 3.0))), 1)
    for r in range(nranks):
        lo, hi = bounds[r]
        # jittered lattice: regular structure + small noise, like a
        # relaxed SPH/MD configuration
        axes = [np.linspace(lo[d], hi[d], side, endpoint=False) for d in range(3)]
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        lattice = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        reps = particles_per_rank // len(lattice) + 1
        pos = np.tile(lattice, (reps, 1))[:particles_per_rank]
        pos = pos + rng.random((particles_per_rank, 3)) * (hi - lo) * 0.01
        # snap to a 2^-13 grid: exact in binary, so float32 coordinates
        # draw from a small alphabet the way fixed-precision outputs do
        pos = np.floor(pos * 8192.0) / 8192.0
        pos = np.clip(pos, lo, np.nextafter(hi, lo, dtype=np.float64))
        ids = np.arange(
            r * particles_per_rank, (r + 1) * particles_per_rank, dtype=np.int64
        )
        species = rng.integers(0, 8, particles_per_rank).astype(np.int64)
        smooth = 300.0 + 50.0 * np.sin(pos[:, 0] * 6.0) * np.cos(pos[:, 1] * 4.0)
        temp = (np.round(smooth / 0.25) * 0.25).astype(np.float32)
        rho = rng.random(particles_per_rank)
        attrs = {
            "id": ids,
            "species": species,
            "temp": temp,
            "rho": rho,
        }
        batches.append(ParticleBatch(pos.astype(np.float32), attrs))
    return RankData(bounds=bounds, counts=counts, batches=batches)
