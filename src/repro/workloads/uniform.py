"""The fixed uniform distribution of the weak-scaling study (§VI-A1).

"To represent a moderately sized simulation, we generate 32k particles on
each rank. Each particle stores three single precision spatial coordinates
and 14 double precision attributes, corresponding to 4.06 MB per rank."
"""

from __future__ import annotations

import numpy as np

from ..core.rankdata import RankData
from ..types import Box, ParticleBatch
from .decomposition import grid_decompose

__all__ = [
    "PARTICLES_PER_RANK",
    "N_ATTRIBUTES",
    "BYTES_PER_PARTICLE",
    "uniform_rank_data",
]

PARTICLES_PER_RANK = 32_768
N_ATTRIBUTES = 14
#: 3 float32 coordinates + 14 float64 attributes = 124 B (4.06 MB per rank)
BYTES_PER_PARTICLE = 3 * 4 + N_ATTRIBUTES * 8


def uniform_rank_data(
    nranks: int,
    particles_per_rank: int = PARTICLES_PER_RANK,
    n_attributes: int = N_ATTRIBUTES,
    domain: Box | None = None,
    materialize: bool = False,
    seed: int = 0,
) -> RankData:
    """Uniformly distributed particles on a 3D rank grid.

    Timing-only by default (counts and bounds carry the whole weak-scaling
    study); ``materialize=True`` generates real particles for functional
    runs at small rank counts.
    """
    if nranks <= 0 or particles_per_rank < 0:
        raise ValueError("nranks must be positive and particles_per_rank >= 0")
    domain = domain or Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    bounds = grid_decompose(domain, nranks, ndims=3)
    counts = np.full(nranks, particles_per_rank, dtype=np.int64)
    bpp = 3 * 4 + n_attributes * 8

    if not materialize:
        return RankData(bounds=bounds, counts=counts, bytes_per_particle=float(bpp))

    rng = np.random.default_rng(seed)
    batches = []
    for r in range(nranks):
        lo, hi = bounds[r]
        pos = lo + rng.random((particles_per_rank, 3)) * (hi - lo)
        attrs = {
            f"attr{a:02d}": rng.random(particles_per_rank) for a in range(n_attributes)
        }
        batches.append(ParticleBatch(pos.astype(np.float32), attrs))
    return RankData(bounds=bounds, counts=counts, batches=batches)
