"""Rank-grid domain decompositions.

Both evaluation simulations partition their domain with a regular grid of
ranks: the Coal Boiler a 3D grid resized to the data bounds over time
(Uintah-style), the Dam Break a 2D grid along x and y (the floor). These
helpers produce the per-rank bounds arrays the I/O layer consumes.
"""

from __future__ import annotations

import numpy as np

from ..types import Box

__all__ = ["grid_dims", "grid_decompose", "rank_cell_index"]


def grid_dims(nranks: int, ndims: int = 3, extents=None) -> tuple[int, ...]:
    """Factor ``nranks`` into a near-uniform ``ndims``-dimensional grid.

    With ``extents`` given, the factorization tracks the domain's aspect
    ratio (longer axes get more ranks). Exact: the product always equals
    ``nranks``.
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    if ndims < 1:
        raise ValueError("ndims must be >= 1")
    ext = np.ones(ndims) if extents is None else np.asarray(extents, dtype=np.float64)[:ndims]

    # Greedy prime-factor assignment: give each prime factor (largest
    # first) to the axis with the largest extent-per-rank.
    dims = np.ones(ndims, dtype=np.int64)
    factors = []
    m = nranks
    p = 2
    while p * p <= m:
        while m % p == 0:
            factors.append(p)
            m //= p
        p += 1
    if m > 1:
        factors.append(m)
    for f in sorted(factors, reverse=True):
        axis = int(np.argmax(ext / dims))
        dims[axis] *= f
    return tuple(int(d) for d in dims)


def grid_decompose(domain: Box, nranks: int, ndims: int = 3) -> np.ndarray:
    """Per-rank bounds ``(R, 2, 3)`` for a regular grid decomposition.

    For ``ndims == 2`` the grid covers x and y and every rank spans the
    full z extent (the Dam Break layout). Rank order is row-major over the
    grid, which keeps ranks with adjacent ids spatially adjacent — the
    layout the aggregation strategies exploit and MPI Cartesian
    communicators produce.
    """
    if domain.is_empty:
        raise ValueError("cannot decompose an empty domain")
    dims3 = np.ones(3, dtype=np.int64)
    d = grid_dims(nranks, ndims, domain.extents)
    dims3[:ndims] = d

    lo = np.asarray(domain.lower)
    ext = domain.extents
    cell = ext / dims3
    out = np.zeros((nranks, 2, 3))
    idx = 0
    for i in range(dims3[0]):
        for j in range(dims3[1]):
            for k in range(dims3[2]):
                clo = lo + cell * [i, j, k]
                chi = lo + cell * [i + 1, j + 1, k + 1]
                out[idx, 0] = clo
                out[idx, 1] = chi
                idx += 1
    return out


def rank_cell_index(positions: np.ndarray, domain: Box, dims: tuple[int, ...]) -> np.ndarray:
    """Row-major rank index of the grid cell containing each position.

    ``dims`` may be 2D (x, y) or 3D. Positions outside the domain clamp to
    the boundary cells.
    """
    pts = np.asarray(positions, dtype=np.float64).reshape(-1, 3)
    dims3 = np.ones(3, dtype=np.int64)
    dims3[: len(dims)] = dims
    lo = np.asarray(domain.lower)
    ext = np.where(domain.extents > 0, domain.extents, 1.0)
    cell = ((pts - lo) / ext * dims3).astype(np.int64)
    np.clip(cell, 0, dims3 - 1, out=cell)
    return (cell[:, 0] * dims3[1] + cell[:, 1]) * dims3[2] + cell[:, 2]
