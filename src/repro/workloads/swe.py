"""A real particle shallow-water simulation (ExaMPM-style mini-app).

The paper's Dam Break was produced by ExaMPM, "a mini-app ... that
accurately represents the I/O workload of production applications". The
analytic sampler in :mod:`repro.workloads.dam_break` reproduces the
*distribution* trajectory; this module goes further and implements an
actual time-stepped particle method, so particles have persistent identity
and state across steps — which is what checkpoint/restart exercises and
what the :mod:`repro.driver` integration runs.

Method: particle shallow-water equations on a 2D (x, y) plane.

- The water column is a set of particles each representing an equal volume.
- Each step, particle mass is deposited onto a background grid with a
  cloud-in-cell (bilinear) kernel to estimate the local column height
  ``h`` — the particle-to-grid half of an MPM/PIC step.
- The momentum equation of the shallow-water system,
  ``dv/dt = -g ∇h - friction·v``, is evaluated per particle from the
  gridded height gradient (grid-to-particle), and positions advance with
  symplectic Euler. Walls reflect.
- A particle's display z-coordinate is a fixed fraction of its local
  column height (its "depth identity"), so the free surface emerges from
  the ensemble.

This is a genuine (if deliberately small) numerical method: mass is
conserved exactly, the dam-break surge front advances at ~2·sqrt(g·h0) as
Ritter's solution predicts, and the state is fully captured by the
particle arrays — which is exactly what the I/O layer checkpoints.
"""

from __future__ import annotations

import numpy as np

from ..core.rankdata import RankData
from ..types import Box, ParticleBatch
from .decomposition import grid_decompose, grid_dims, rank_cell_index

__all__ = ["ShallowWaterSim"]

G = 9.81


class ShallowWaterSim:
    """Dam-break water column on a particle shallow-water solver."""

    def __init__(
        self,
        n_particles: int = 20_000,
        domain: Box = Box((0.0, 0.0, 0.0), (4.0, 1.0, 1.0)),
        dam_x: float = 1.0,
        column_height: float = 1.0,
        grid_nx: int = 128,
        grid_ny: int = 32,
        dt: float = 2.0e-3,
        friction: float = 0.15,
        seed: int = 7,
    ):
        if n_particles < 1:
            raise ValueError("n_particles must be positive")
        self.domain = domain
        self.dam_x = dam_x
        self.column_height = column_height
        self.nx, self.ny = grid_nx, grid_ny
        self.dt = dt
        self.friction = friction
        self.step_count = 0

        lo = np.asarray(domain.lower)
        hi = np.asarray(domain.upper)
        self._lo2 = lo[:2]
        self._ext2 = (hi - lo)[:2]
        self._cell = self._ext2 / np.array([grid_nx, grid_ny])

        rng = np.random.default_rng(seed)
        # particles fill the column block behind the dam
        self.xy = np.column_stack(
            [
                lo[0] + rng.random(n_particles) * dam_x,
                lo[1] + rng.random(n_particles) * self._ext2[1],
            ]
        )
        self.vel = np.zeros((n_particles, 2))
        #: each particle's fixed fraction of the local column height
        self.depth_frac = rng.random(n_particles)
        #: column volume represented per particle (fixed: mass conservation)
        area = dam_x * self._ext2[1]
        self.volume_per_particle = area * column_height / n_particles

    @property
    def n_particles(self) -> int:
        return len(self.xy)

    # -- particle <-> grid transfers ------------------------------------------

    def _cic_weights(self, xy: np.ndarray):
        """Cloud-in-cell cell indices and weights for each particle."""
        gpos = (xy - self._lo2) / self._cell - 0.5
        base = np.floor(gpos).astype(np.int64)
        frac = gpos - base
        cells = []
        for dx in (0, 1):
            for dy in (0, 1):
                ix = np.clip(base[:, 0] + dx, 0, self.nx - 1)
                iy = np.clip(base[:, 1] + dy, 0, self.ny - 1)
                wx = frac[:, 0] if dx else 1.0 - frac[:, 0]
                wy = frac[:, 1] if dy else 1.0 - frac[:, 1]
                cells.append((ix, iy, wx * wy))
        return cells

    def height_field(self) -> np.ndarray:
        """(nx, ny) column height from particle volume deposition."""
        h = np.zeros((self.nx, self.ny))
        cell_area = self._cell[0] * self._cell[1]
        for ix, iy, w in self._cic_weights(self.xy):
            np.add.at(h, (ix, iy), w * self.volume_per_particle / cell_area)
        return h

    def _sample_gradient(self, h: np.ndarray) -> np.ndarray:
        """∇h at each particle (central differences, sampled bilinearly)."""
        gx, gy = np.gradient(h, self._cell[0], self._cell[1])
        grad = np.zeros_like(self.xy)
        for ix, iy, w in self._cic_weights(self.xy):
            grad[:, 0] += w * gx[ix, iy]
            grad[:, 1] += w * gy[ix, iy]
        return grad

    def sample_height(self, xy: np.ndarray | None = None) -> np.ndarray:
        """Column height at particle positions (for the z coordinate)."""
        h = self.height_field()
        xy = self.xy if xy is None else xy
        out = np.zeros(len(xy))
        for ix, iy, w in self._cic_weights(xy):
            out += w * h[ix, iy]
        return out

    # -- time stepping ----------------------------------------------------------

    def step(self, n: int = 1) -> None:
        """Advance the simulation ``n`` timesteps."""
        for _ in range(n):
            h = self.height_field()
            grad = self._sample_gradient(h)
            self.vel += self.dt * (-G * grad) - self.dt * self.friction * self.vel
            self.xy += self.dt * self.vel
            self._reflect_walls()
            self.step_count += 1

    def _reflect_walls(self) -> None:
        lo = self._lo2
        hi = self._lo2 + self._ext2
        for ax in (0, 1):
            under = self.xy[:, ax] < lo[ax]
            over = self.xy[:, ax] > hi[ax]
            self.xy[under, ax] = 2 * lo[ax] - self.xy[under, ax]
            self.xy[over, ax] = 2 * hi[ax] - self.xy[over, ax]
            self.vel[under | over, ax] *= -1.0
            np.clip(self.xy[:, ax], lo[ax], hi[ax], out=self.xy[:, ax])

    # -- I/O-facing views ----------------------------------------------------------

    def particles(self) -> ParticleBatch:
        """Current state as the attribute arrays the I/O layer stores.

        The batch is a *complete checkpoint*: :meth:`restore` rebuilds the
        exact solver state from it.
        """
        h = self.sample_height()
        zlo = np.asarray(self.domain.lower)[2]
        zhi = np.asarray(self.domain.upper)[2]
        # sloshing can locally pile columns above the tank height; the
        # display coordinate clamps to the lid
        z = np.minimum(zlo + self.depth_frac * np.maximum(h, 1e-9), zhi)
        pos = np.column_stack([self.xy[:, 0], self.xy[:, 1], z]).astype(np.float32)
        return ParticleBatch(
            pos,
            {
                "vel_x": self.vel[:, 0].copy(),
                "vel_y": self.vel[:, 1].copy(),
                "depth_frac": self.depth_frac.copy(),
                "column_height": h,
            },
        )

    def rank_data(self, nranks: int) -> RankData:
        """Decompose the current state over a fixed 2D rank grid."""
        batch = self.particles()
        bounds = grid_decompose(self.domain, nranks, ndims=2)
        dims = grid_dims(nranks, 2, self.domain.extents[:2])
        cells = rank_cell_index(batch.positions, self.domain, dims)
        counts = np.zeros(nranks, dtype=np.int64)
        batches = []
        for r in range(nranks):
            sel = cells == r
            counts[r] = int(sel.sum())
            batches.append(batch.select(sel))
        return RankData(bounds=bounds, counts=counts, batches=batches)

    def restore(self, batch: ParticleBatch, step_count: int) -> None:
        """Rebuild solver state from a checkpoint written by :meth:`particles`.

        Restart order is irrelevant (particles are interchangeable given
        their state), so reading the checkpoint on any rank layout works.
        """
        required = {"vel_x", "vel_y", "depth_frac"}
        if not required <= set(batch.attributes):
            raise ValueError(f"checkpoint missing attributes {required - set(batch.attributes)}")
        self.xy = batch.positions[:, :2].astype(np.float64).copy()
        self.vel = np.column_stack(
            [batch.attributes["vel_x"], batch.attributes["vel_y"]]
        ).astype(np.float64)
        self.depth_frac = batch.attributes["depth_frac"].astype(np.float64).copy()
        area = self.dam_x * self._ext2[1]
        self.volume_per_particle = area * self.column_height / len(batch)
        self.step_count = step_count

    # -- diagnostics -----------------------------------------------------------------

    def total_volume(self) -> float:
        """Conserved exactly: particles each carry fixed volume."""
        return self.n_particles * self.volume_per_particle

    def front_position(self, quantile: float = 0.995) -> float:
        """x-position of the surge front (leading particles)."""
        return float(np.quantile(self.xy[:, 0], quantile))
