"""Synthetic Dam Break: a stand-in for the ExaMPM/Cabana water column.

The paper's Dam Break (§VI-A2, Fig 8b) is a 3D free-surface water-column
collapse with a *fixed* number of particles that migrate through the
domain over a 2D (x, y) rank decomposition — early timesteps concentrate
all particles in the column's ranks, later ones spread them along the
floor. We reproduce that trajectory with the classical Ritter shallow-water
dam-break solution (height profile on a dry bed) blended into a settled
uniform layer after the surge reaches the far wall (DESIGN.md §2).

Two configurations mirror the paper: 2M particles written from 1536 ranks
and 8M from 6144. Each particle carries 3 float32 coordinates and 4 float64
attributes (44 B/particle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rankdata import RankData
from ..types import Box, ParticleBatch
from .decomposition import grid_decompose, grid_dims, rank_cell_index

__all__ = ["DamBreak"]

ATTRIBUTES = ("vel_x", "vel_z", "pressure", "density")


@dataclass(frozen=True)
class DamBreak:
    """Deterministic synthetic dam break over timesteps 0..4001."""

    #: tank: x is the flow direction, y the width, z up
    domain: Box = Box((0.0, 0.0, 0.0), (4.0, 1.0, 1.0))
    #: initial column occupies x in [0, dam_x], full height
    dam_x: float = 1.0
    column_height: float = 1.0
    #: sqrt(g*h0) front speed in domain units per timestep
    wave_speed: float = 1.0e-3
    ts_end: int = 4001
    #: relaxation timescale (timesteps) toward the settled layer after the
    #: surge reaches the far wall
    settle_steps: float = 800.0
    total: int = 2_000_000
    seed: int = 99

    # -- height profile ---------------------------------------------------

    def height_profile(self, timestep: int, x: np.ndarray) -> np.ndarray:
        """Free-surface height at positions ``x`` along the tank.

        Ritter's solution: undisturbed column behind the rarefaction,
        parabolic surge ahead of it, empty beyond the front; once the front
        reaches the far wall the profile relaxes exponentially toward the
        volume-conserving flat layer.
        """
        x = np.asarray(x, dtype=np.float64)
        lo = self.domain.lower[0]
        hi = self.domain.upper[0]
        h0 = self.column_height
        c0 = self.wave_speed  # sqrt(g h0) in domain units / step
        t = float(timestep)

        if t <= 0:
            return np.where(x <= lo + self.dam_x, h0, 0.0)

        xd = lo + self.dam_x
        x_tail = xd - c0 * t  # rarefaction tail moving into the column
        x_front = xd + 2 * c0 * t  # surge front

        h = np.zeros_like(x)
        h = np.where(x <= x_tail, h0, h)
        mid = (x > x_tail) & (x < np.minimum(x_front, hi))
        # Ritter: h = (2 c0 - (x - xd)/t)^2 / (9 g); with c0^2 = g h0 this
        # normalizes to h0/9 * (2 - (x-xd)/(c0 t))^2
        xi = (x[mid] - xd) / (c0 * t)
        h[mid] = h0 / 9.0 * (2.0 - xi) ** 2

        if x_front >= hi:
            # blend toward the settled uniform layer
            h_settled = h0 * self.dam_x / (hi - lo)
            t_wall = (hi - xd) / (2 * c0)
            blend = 1.0 - np.exp(-(t - t_wall) / self.settle_steps)
            h = (1.0 - blend) * h + blend * h_settled
        return np.maximum(h, 0.0)

    # -- sampling -------------------------------------------------------------

    def sample(self, timestep: int, n: int | None = None) -> ParticleBatch:
        """Draw particles from the water body at ``timestep``.

        x is sampled proportionally to the column height (mass per unit
        length), z uniformly below the surface, y uniformly across the
        width.
        """
        n = n if n is not None else self.total
        rng = np.random.default_rng((self.seed, timestep))
        lo = np.asarray(self.domain.lower)
        hi = np.asarray(self.domain.upper)

        grid = np.linspace(lo[0], hi[0], 2049)
        centers = 0.5 * (grid[:-1] + grid[1:])
        h = self.height_profile(timestep, centers)
        weights = np.maximum(h, 0.0)
        if weights.sum() <= 0:
            weights = np.ones_like(weights)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        u = rng.random(n)
        idx = np.searchsorted(cdf, u)
        cell_w = grid[1] - grid[0]
        x = grid[idx] + rng.random(n) * cell_w
        hx = np.maximum(self.height_profile(timestep, x), 1e-6)
        z = lo[2] + rng.random(n) * hx
        y = lo[1] + rng.random(n) * (hi[1] - lo[1])
        pos = np.column_stack([x, y, z])

        c0 = self.wave_speed
        xd = lo[0] + self.dam_x
        vel_x = np.clip((x - xd) / max(timestep, 1.0), -2 * c0, 2 * c0) / max(c0, 1e-12)
        attrs = {
            "vel_x": vel_x,
            "vel_z": -0.1 * rng.random(n),
            "pressure": 1000.0 * 9.81 * (hx - (z - lo[2])),
            "density": np.full(n, 1000.0) + rng.normal(0, 1.0, n),
        }
        return ParticleBatch(pos.astype(np.float32), attrs)

    # -- rank data ---------------------------------------------------------

    def rank_data(
        self,
        timestep: int,
        nranks: int,
        scale: float = 1.0,
        materialize: bool = False,
        sample_size: int = 200_000,
    ) -> RankData:
        """Per-rank counts (optionally particles) on the fixed 2D rank grid.

        Unlike the boiler, the decomposition never changes — the particles
        move across it, which is exactly what imbalances the I/O workload.
        """
        total = max(int(self.total * scale), 1)
        n_sample = total if materialize else min(total, sample_size)
        batch = self.sample(timestep, n_sample)

        rank_bounds = grid_decompose(self.domain, nranks, ndims=2)
        dims = grid_dims(nranks, 2, self.domain.extents[:2])
        cells = rank_cell_index(batch.positions, self.domain, dims)

        if materialize:
            batches = []
            counts = np.zeros(nranks, dtype=np.int64)
            for r in range(nranks):
                sel = cells == r
                counts[r] = int(sel.sum())
                batches.append(batch.select(sel))
            return RankData(bounds=rank_bounds, counts=counts, batches=batches)

        hist = np.bincount(cells, minlength=nranks).astype(np.float64)
        counts = np.round(hist * (total / max(hist.sum(), 1))).astype(np.int64)
        bpp = 3 * 4 + 4 * 8
        return RankData(bounds=rank_bounds, counts=counts, bytes_per_particle=float(bpp))
