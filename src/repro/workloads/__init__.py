"""Workload generators reproducing the paper's evaluation datasets.

- :mod:`repro.workloads.decomposition` — rank-grid domain decompositions;
- :mod:`repro.workloads.uniform` — the fixed uniform distribution of the
  weak-scaling study (32k particles/rank, 3 f32 coords + 14 f64 attrs);
- :mod:`repro.workloads.coal_boiler` — a synthetic stand-in for the Uintah
  Coal Boiler time series (particle injection, 4.6M → 41.5M particles);
- :mod:`repro.workloads.dam_break` — a synthetic stand-in for the
  ExaMPM/Cabana Dam Break (fixed particle count migrating through a 2D
  decomposition).

The Coal Boiler and Dam Break generators are substitutions for
production datasets we cannot obtain (DESIGN.md §2); they match the
published particle counts and produce the clustered, time-drifting
per-rank histograms that drive the adaptive-vs-AUG comparison.
"""

from .coal_boiler import CoalBoiler
from .dam_break import DamBreak
from .decomposition import grid_decompose, grid_dims
from .injection import InjectionSim
from .swe import ShallowWaterSim
from .uniform import compressible_rank_data, uniform_rank_data

__all__ = [
    "grid_dims",
    "grid_decompose",
    "uniform_rank_data",
    "compressible_rank_data",
    "CoalBoiler",
    "InjectionSim",
    "ShallowWaterSim",
    "DamBreak",
]
