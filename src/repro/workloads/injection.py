"""A time-stepped particle injection simulation (Uintah-boiler stand-in).

Where :mod:`repro.workloads.coal_boiler` draws each timestep's particle
*distribution* analytically, this module runs an actual simulation loop
with persistent particles: every step new particles enter at wall inlets
and every existing particle advects through a steady buoyant, swirling
velocity field plus an Ornstein–Uhlenbeck turbulent velocity — the
Lagrangian-particle side of a disperse multiphase solver, which is exactly
the class of simulation (§I) whose drifting, growing populations imbalance
the I/O workload.

State is fully captured by the particle arrays, so the I/O layer's
checkpoints restart it exactly (see :mod:`repro.driver`).
"""

from __future__ import annotations

import numpy as np

from ..core.rankdata import RankData
from ..types import Box, ParticleBatch
from .decomposition import grid_decompose, grid_dims, rank_cell_index

__all__ = ["InjectionSim"]


class InjectionSim:
    """Continuous particle injection into a tall, swirling chamber."""

    def __init__(
        self,
        domain: Box = Box((0.0, 0.0, 0.0), (6.0, 6.0, 12.0)),
        n_inlets: int = 8,
        injection_rate: int = 200,
        rise_speed: float = 3.0e-2,
        swirl_rate: float = 8.0e-3,
        turbulence: float = 2.0e-2,
        relaxation: float = 0.05,
        dt: float = 1.0,
        seed: int = 17,
    ):
        if injection_rate < 0:
            raise ValueError("injection_rate must be >= 0")
        self.domain = domain
        self.n_inlets = n_inlets
        self.injection_rate = injection_rate
        self.rise_speed = rise_speed
        self.swirl_rate = swirl_rate
        self.turbulence = turbulence
        self.relaxation = relaxation
        self.dt = dt
        self.step_count = 0
        self._rng = np.random.default_rng(seed)

        self.pos = np.empty((0, 3))
        self.turb_vel = np.empty((0, 3))
        self.temperature = np.empty(0)
        self.age = np.empty(0)

        lo = np.asarray(domain.lower)
        ext = domain.extents
        theta = np.linspace(0, 2 * np.pi, n_inlets, endpoint=False)
        cx, cy = lo[0] + ext[0] / 2, lo[1] + ext[1] / 2
        self._center = np.array([cx, cy])
        self._inlets = np.column_stack(
            [
                cx + 0.45 * ext[0] * np.cos(theta),
                cy + 0.45 * ext[1] * np.sin(theta),
                np.full(n_inlets, lo[2] + 0.08 * ext[2]),
            ]
        )

    @property
    def n_particles(self) -> int:
        return len(self.pos)

    # -- dynamics --------------------------------------------------------------

    def _mean_velocity(self, pos: np.ndarray) -> np.ndarray:
        """Steady buoyant swirl: rise plus solid-body rotation about the axis."""
        v = np.zeros_like(pos)
        dx = pos[:, 0] - self._center[0]
        dy = pos[:, 1] - self._center[1]
        v[:, 0] = -self.swirl_rate * dy
        v[:, 1] = self.swirl_rate * dx
        v[:, 2] = self.rise_speed
        return v

    def _inject(self) -> None:
        n = self.injection_rate
        if n == 0:
            return
        which = self._rng.integers(0, self.n_inlets, n)
        newpos = self._inlets[which] + self._rng.normal(0.0, 0.06, (n, 3))
        self.pos = np.concatenate([self.pos, newpos])
        self.turb_vel = np.concatenate([self.turb_vel, np.zeros((n, 3))])
        self.temperature = np.concatenate(
            [self.temperature, 1400.0 + self._rng.normal(0.0, 25.0, n)]
        )
        self.age = np.concatenate([self.age, np.zeros(n)])

    def step(self, n: int = 1) -> None:
        """Advance ``n`` timesteps: inject, advect, cool, reflect."""
        lo = np.asarray(self.domain.lower)
        hi = np.asarray(self.domain.upper)
        ext = np.where(hi > lo, hi - lo, 1.0)
        for _ in range(n):
            self._inject()
            if len(self.pos):
                # Ornstein-Uhlenbeck turbulent velocity per particle
                self.turb_vel += (
                    -self.relaxation * self.turb_vel * self.dt
                    + self.turbulence * self._rng.normal(size=self.pos.shape)
                )
                self.pos += (self._mean_velocity(self.pos) + self.turb_vel) * self.dt
                # reflective walls (fold), matching the analytic generator
                folded = np.mod(self.pos - lo, 2.0 * ext)
                self.pos = lo + np.where(folded > ext, 2.0 * ext - folded, folded)
                # cool toward the ambient profile as particles age
                self.temperature += -0.15 * self.dt * (
                    self.temperature - (700.0 + 20.0 * (hi[2] - self.pos[:, 2]))
                ) * 0.01
                self.age += self.dt
            self.step_count += 1

    # -- I/O-facing views ----------------------------------------------------------

    def particles(self) -> ParticleBatch:
        """Complete checkpoint of the simulation state."""
        return ParticleBatch(
            self.pos.astype(np.float32),
            {
                "turb_u": self.turb_vel[:, 0].copy(),
                "turb_v": self.turb_vel[:, 1].copy(),
                "turb_w": self.turb_vel[:, 2].copy(),
                "temperature": self.temperature.copy(),
                "age": self.age.copy(),
            },
        )

    def rank_data(self, nranks: int) -> RankData:
        """Decompose over a 3D grid refit to the occupied bounds each call
        (the Uintah behaviour the paper describes)."""
        batch = self.particles()
        if len(batch) == 0:
            bounds = grid_decompose(self.domain, nranks, ndims=3)
            return RankData(
                bounds=bounds,
                counts=np.zeros(nranks, dtype=np.int64),
                batches=[ParticleBatch.empty() for _ in range(nranks)],
            )
        data_box = batch.bounds
        bounds = grid_decompose(data_box, nranks, ndims=3)
        dims = grid_dims(nranks, 3, data_box.extents)
        cells = rank_cell_index(batch.positions, data_box, dims)
        counts = np.zeros(nranks, dtype=np.int64)
        batches = []
        for r in range(nranks):
            sel = cells == r
            counts[r] = int(sel.sum())
            batches.append(batch.select(sel))
        return RankData(bounds=bounds, counts=counts, batches=batches)

    def restore(self, batch: ParticleBatch, step_count: int) -> None:
        """Rebuild state from a checkpoint written by :meth:`particles`."""
        required = {"turb_u", "turb_v", "turb_w", "temperature", "age"}
        if not required <= set(batch.attributes):
            raise ValueError(f"checkpoint missing attributes {required - set(batch.attributes)}")
        self.pos = batch.positions.astype(np.float64).copy()
        self.turb_vel = np.column_stack(
            [batch.attributes["turb_u"], batch.attributes["turb_v"], batch.attributes["turb_w"]]
        ).astype(np.float64)
        self.temperature = batch.attributes["temperature"].astype(np.float64).copy()
        self.age = batch.attributes["age"].astype(np.float64).copy()
        self.step_count = step_count
