"""Checksum scrubbing: verify every CRC in a file or dataset.

Unlike :mod:`repro.bat.validate` (structural fsck over an *open* file),
the scrubber works on raw bytes and never builds numpy views over
unverified regions, so it survives — and precisely localizes — arbitrary
corruption: it names the exact bad section (``header``, ``dictionary``,
``treelet 12``, ...) instead of failing to parse.

Verification is layered to match the trust chain of the format: the
self-contained header CRC first (nothing in a damaged header is trusted),
then the footer's own CRC, then each metadata section, then each treelet
(whose offsets come from the — by then verified — shallow-leaf section),
then the whole-file digest, which catches flips in alignment padding that
no section covers.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import IntegrityError
from .format import (
    CHECKSUM_VERSION,
    HEADER_CRC_OFFSET,
    HEADER_SIZE,
    LEGACY_VERSION,
    MAGIC,
    SUPPORTED_VERSIONS,
    Header,
    shallow_leaf_dtype,
    unpack_footer,
)

__all__ = ["FileScrubReport", "DatasetScrubReport", "scrub_file", "scrub_dataset"]


@dataclass
class FileScrubReport:
    """Checksum findings for one file."""

    path: str
    #: "ok" | "legacy" (version 2: nothing to verify) | "corrupt" |
    #: "missing" | "error"
    status: str = "ok"
    version: int | None = None
    #: number of CRCs verified
    checked: int = 0
    #: exact sections whose checksums failed
    bad_sections: list[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "legacy")

    def summary(self) -> str:
        if self.status == "ok":
            return f"{self.path}: OK ({self.checked} checksums)"
        if self.status == "legacy":
            return f"{self.path}: LEGACY v{LEGACY_VERSION} (no checksums)"
        if self.status == "missing":
            return f"{self.path}: MISSING"
        what = ", ".join(self.bad_sections) or self.detail
        return f"{self.path}: {self.status.upper()} ({what})"

    def to_doc(self) -> dict:
        return {
            "path": self.path,
            "status": self.status,
            "version": self.version,
            "checked": self.checked,
            "bad_sections": list(self.bad_sections),
            "detail": self.detail,
        }


@dataclass
class DatasetScrubReport:
    """Checksum findings for a manifest and every leaf file it names."""

    path: str
    files: list[FileScrubReport] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return not self.detail and all(f.ok for f in self.files)

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.files:
            out[f.status] = out.get(f.status, 0) + 1
        return out

    def summary(self) -> str:
        status = "OK" if self.ok else "CORRUPT"
        counts = ", ".join(f"{v} {k}" for k, v in sorted(self.counts.items()))
        lines = [f"{self.path}: {status} ({len(self.files)} leaf files: {counts})"]
        if self.detail:
            lines.append(f"  manifest: {self.detail}")
        lines += [f"  {f.summary()}" for f in self.files]
        return "\n".join(lines)

    def to_doc(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "detail": self.detail,
            "files": [f.to_doc() for f in self.files],
        }


def scrub_file(path) -> FileScrubReport:
    """Verify every checksum of one BAT file, from raw bytes."""
    r = FileScrubReport(path=str(path))
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        r.status = "missing"
        r.detail = "file does not exist"
        return r
    except OSError as exc:
        r.status = "error"
        r.detail = str(exc)
        return r

    if len(data) < HEADER_SIZE:
        r.status = "corrupt"
        r.bad_sections.append("header")
        r.detail = f"truncated: {len(data)} bytes, header needs {HEADER_SIZE}"
        return r
    magic, version = struct.unpack_from("<4sI", data, 0)
    if magic != MAGIC:
        r.status = "corrupt"
        r.bad_sections.append("header")
        r.detail = f"bad magic {magic!r}"
        return r
    r.version = int(version)
    if version == LEGACY_VERSION:
        r.status = "legacy"
        r.detail = "legacy version-2 file carries no checksums"
        return r
    if version not in SUPPORTED_VERSIONS or version < CHECKSUM_VERSION:
        r.status = "corrupt"
        r.bad_sections.append("header")
        r.detail = f"unsupported version {version}"
        return r

    # 1. self-contained header CRC — nothing in a damaged header is trusted
    (stored,) = struct.unpack_from("<I", data, HEADER_CRC_OFFSET)
    r.checked += 1
    if zlib.crc32(data[:HEADER_CRC_OFFSET]) != stored:
        r.status = "corrupt"
        r.bad_sections.append("header")
        r.detail = "header checksum mismatch; offsets untrusted, deeper checks skipped"
        return r
    header = Header.unpack(data[:HEADER_SIZE])
    if header.file_size != len(data):
        # header is intact, so the file itself was truncated or extended
        r.status = "corrupt"
        r.bad_sections.append("file")
        r.detail = f"file is {len(data)} bytes, header says {header.file_size}"

    # 2. footer (self-verifying)
    try:
        footer = unpack_footer(data, header.footer_offset, header.n_shallow_leaves)
        r.checked += 1
    except IntegrityError as exc:
        r.status = "corrupt"
        r.bad_sections.append("footer")
        r.detail = str(exc)
        return r

    # 3. metadata sections
    for name, (off, nbytes) in header.section_extents().items():
        r.checked += 1
        if off + nbytes > len(data) or zlib.crc32(data[off : off + nbytes]) != footer.section_crcs[name]:
            r.bad_sections.append(name)

    # 4. treelets — offsets come from the shallow-leaf section, so they are
    # only trusted once that section verified
    if "shallow_leaves" not in r.bad_sections:
        leaves = np.frombuffer(
            data,
            dtype=shallow_leaf_dtype(header.n_attrs),
            count=header.n_shallow_leaves,
            offset=header.shallow_leaf_offset,
        )
        offs = leaves["treelet_offset"].astype(np.int64)
        nbs = leaves["treelet_nbytes"].astype(np.int64)
        for k in range(header.n_shallow_leaves):
            r.checked += 1
            off, nb = int(offs[k]), int(nbs[k])
            if (
                off < 0
                or off + nb > len(data)
                or zlib.crc32(data[off : off + nb]) != int(footer.treelet_crcs[k])
            ):
                r.bad_sections.append(f"treelet {k}")

    # 5. whole-file digest: catches flips in alignment padding between
    # sections, which no per-section CRC covers. Only reported when no
    # section was flagged — otherwise the mismatch is already explained.
    r.checked += 1
    if (
        0 < header.footer_offset <= len(data)
        and zlib.crc32(data[: header.footer_offset]) != footer.file_digest
        and not r.bad_sections
    ):
        r.bad_sections.append("file digest")

    if r.bad_sections:
        r.status = "corrupt"
    return r


def scrub_dataset(metadata_path) -> DatasetScrubReport:
    """Scrub a manifest and every leaf file it references."""
    from ..core.metadata import DatasetMetadata

    metadata_path = Path(metadata_path)
    report = DatasetScrubReport(path=str(metadata_path))
    try:
        meta = DatasetMetadata.load(metadata_path)
    except FileNotFoundError:
        report.detail = "manifest does not exist"
        return report
    except (ValueError, OSError) as exc:
        report.detail = f"cannot load manifest: {exc}"
        return report
    for leaf in meta.leaves:
        report.files.append(scrub_file(metadata_path.parent / leaf.file_name))
    return report
