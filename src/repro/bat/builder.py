"""In-situ BAT construction on an aggregator (paper §III-C).

``build_bat`` takes the particles an aggregator received and produces the
complete serialized file image plus the summary (attribute ranges and root
bitmaps) that the aggregator later sends to rank 0 for the top-level
metadata (§III-D). The build is the two-step scheme from the paper: a
bottom-up shallow radix tree over merged Morton subprefixes, then an
independent treelet per shallow leaf.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..atomic import atomic_write_bytes
from ..binning import EquiDepthBinning, EquiWidthBinning
from ..bitmaps import BitmapDictionary
from ..morton import MAX_BITS, encode_positions
from ..types import Box, ParticleBatch
from .build import DEFAULT_SUBPREFIX_BITS, build_radix_tree, shallow_tree_leaves
from .codecs import get_codec, select_codecs
from .format import (
    CODEC_VERSION,
    FLAG_COLUMN_CODECS,
    FLAG_COMPRESSED_TREELETS,
    FLAG_QUANTIZED_POSITIONS,
    HEADER_SIZE,
    LEAF_FLAG,
    LEGACY_VERSION,
    PAGE_SIZE,
    VERSION,
    Header,
    attr_table_dtype,
    column_dir_dtype,
    footer_size,
    pack_binning_section,
    pack_footer,
    pad_to,
    shallow_inner_dtype,
    shallow_leaf_dtype,
    treelet_header_dtype,
    treelet_node_dtype,
)
from .treelet import Treelet, build_treelet, propagate_bitmaps_bottom_up

__all__ = ["BATBuildConfig", "BuiltBAT", "build_bat"]


@dataclass(frozen=True)
class BATBuildConfig:
    """Knobs of the BAT build.

    The defaults follow the paper's evaluation: up to a 12-bit shallow
    subprefix, 8 LOD particles per treelet inner node, up to 128 particles
    per treelet leaf, 21-bit Morton quantization.

    ``subprefix_bits=None`` (the default) adapts the subprefix to the input
    size so each shallow leaf receives about ``target_treelet_points``
    particles, capped at the paper's 12 bits — the paper evaluated
    aggregators holding millions of particles, where 12 bits "provides
    satisfactory results"; a fixed 12 bits on a small input would shatter
    it into thousands of near-empty page-aligned treelets.
    """

    subprefix_bits: int | None = None
    lod_per_node: int = 8
    max_leaf_points: int = 128
    morton_bits: int = MAX_BITS
    target_treelet_points: int = 4096
    #: "equiwidth" (the paper's scheme) or "equidepth" (quantile bins — the
    #: §VII extension for skewed attributes)
    attribute_binning: str = "equiwidth"
    #: store treelet positions as uint16 quantized to the treelet bounds
    #: (§VII quantization extension; halves position storage, lossy to
    #: ~1/65535 of a treelet's extent)
    quantize_positions: bool = False
    #: zlib-compress each treelet payload (§VII compression extension;
    #: treelets decompress on first access rather than mapping in place)
    compress: bool = False
    #: emit the version-3 checksum footer (header CRC, per-section and
    #: per-treelet CRC32s, whole-file digest). ``False`` produces a legacy
    #: version-2 image, byte-identical to pre-checksum builds — used by the
    #: backward-compatibility tests.
    checksums: bool = True
    #: per-column codec spec (format v4). ``None`` (the default) keeps the
    #: version-3 raw-column layout byte-identical to previous builds.
    #: ``"auto"`` samples each column at write time and picks the best
    #: lossless codec above ``codec_floor_mbs``; a mapping assigns codecs per
    #: column name (``"positions"``, ``"nodes"``, attribute names; ``"*"`` as
    #: default, value ``"auto"`` to defer to sampling). Lossy ``quantize{b}``
    #: codecs are only ever used when named explicitly here.
    codecs: object = None
    #: nominal-throughput floor (MB/s) for auto codec selection; static per
    #: codec, so the choice is deterministic across machines and executors
    codec_floor_mbs: float = 50.0

    def __post_init__(self) -> None:
        if self.attribute_binning not in ("equiwidth", "equidepth"):
            raise ValueError("attribute_binning must be 'equiwidth' or 'equidepth'")
        if self.subprefix_bits is not None:
            if not 3 <= self.subprefix_bits <= 3 * self.morton_bits:
                raise ValueError("subprefix_bits must be in [3, 3*morton_bits]")
            if self.subprefix_bits % 3 != 0:
                raise ValueError("subprefix_bits must be a multiple of 3")
        if self.target_treelet_points < 1:
            raise ValueError("target_treelet_points must be >= 1")
        if self.lod_per_node < 1 or self.max_leaf_points < 1:
            raise ValueError("lod_per_node and max_leaf_points must be >= 1")
        if not 1 <= self.morton_bits <= MAX_BITS:
            raise ValueError(f"morton_bits must be in [1, {MAX_BITS}]")
        if self.codecs is not None:
            if not self.checksums:
                raise ValueError("codecs require checksums=True (v4 is a checksummed format)")
            if self.compress:
                raise ValueError("compress and codecs are mutually exclusive")
            if isinstance(self.codecs, str) and self.codecs != "auto":
                raise ValueError("codecs must be None, 'auto', or a column->codec mapping")

    def resolve_subprefix_bits(self, n_points: int) -> int:
        """Subprefix width to use for an input of ``n_points`` particles."""
        if self.subprefix_bits is not None:
            return self.subprefix_bits
        import math

        ratio = max(n_points / self.target_treelet_points, 1.0)
        levels = math.ceil(math.log2(ratio) / 3.0) if ratio > 1.0 else 1
        return int(min(max(3 * levels, 3), DEFAULT_SUBPREFIX_BITS, 3 * self.morton_bits))


@dataclass
class BuiltBAT:
    """A serialized BAT plus the summary sent to rank 0.

    ``data`` is the exact file image; writing it to disk and opening it with
    :class:`repro.bat.BATFile` is lossless. The object is also usable
    directly for in-transit analysis without touching disk.
    """

    data: bytes
    n_points: int
    bounds: Box
    #: per-attribute (lo, hi) local value ranges
    attr_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: per-attribute root bitmap (relative to the local range)
    root_bitmaps: dict[str, int] = field(default_factory=dict)
    #: bytes of structure beyond the raw particle payload
    overhead_bytes: int = 0
    raw_bytes: int = 0
    dict_entries: int = 0
    n_treelets: int = 0
    #: per-attribute binning scheme used by the file's bitmaps
    attr_binnings: dict = field(default_factory=dict)
    #: FLAG_* bits recorded in the header
    flags: int = 0
    #: column name -> codec id chosen by the build (empty for v2/v3 files)
    codec_table: dict = field(default_factory=dict)
    #: treelet payload bytes before / after per-column encoding (equal when
    #: no codecs are configured)
    payload_raw_bytes: int = 0
    payload_encoded_bytes: int = 0

    @property
    def nbytes(self) -> int:
        return len(self.data)

    @property
    def overhead_fraction(self) -> float:
        """Structure overhead relative to the raw data (paper reports ~0.9%)."""
        return self.overhead_bytes / self.raw_bytes if self.raw_bytes else 0.0

    def write(self, path) -> None:
        """Publish the image atomically (tmp file, fsync, rename)."""
        atomic_write_bytes(path, self.data)

    def open(self):
        """Open the image in memory for in-transit analysis (§III-C3).

        Returns a fully functional :class:`repro.bat.BATFile` without
        touching disk — the paper's "used for in transit visualization and
        analysis on the aggregators before or instead of being written".
        """
        from .file import BATFile

        return BATFile.from_bytes(self.data)


def _shallow_bitmaps_and_boxes(
    radix, leaf_bitmaps: np.ndarray, leaf_boxes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Propagate bitmaps (OR) and bboxes (union) up the shallow tree."""
    n_inner = radix.n_inner
    n_attrs = leaf_bitmaps.shape[1]
    inner_bm = np.zeros((n_inner, n_attrs), dtype=np.uint32)
    inner_box = np.zeros((n_inner, 6), dtype=np.float32)
    if n_inner == 0:
        return inner_bm, inner_box

    # Post-order DFS from the root; children (inner or leaf) are resolved
    # before their parent.
    state = np.zeros(n_inner, dtype=np.int8)
    stack = [radix.root]
    while stack:
        node = stack[-1]
        if state[node] == 0:
            state[node] = 1
            if not radix.left_is_leaf[node]:
                stack.append(int(radix.left[node]))
            if not radix.right_is_leaf[node]:
                stack.append(int(radix.right[node]))
            continue
        stack.pop()
        if state[node] == 2:
            continue
        state[node] = 2
        parts_bm = []
        parts_box = []
        for child, is_leaf in (
            (int(radix.left[node]), radix.left_is_leaf[node]),
            (int(radix.right[node]), radix.right_is_leaf[node]),
        ):
            if is_leaf:
                parts_bm.append(leaf_bitmaps[child])
                parts_box.append(leaf_boxes[child])
            else:
                parts_bm.append(inner_bm[child])
                parts_box.append(inner_box[child])
        inner_bm[node] = parts_bm[0] | parts_bm[1]
        lo = np.minimum(parts_box[0][:3], parts_box[1][:3])
        hi = np.maximum(parts_box[0][3:], parts_box[1][3:])
        inner_box[node] = np.concatenate([lo, hi])
    return inner_bm, inner_box


def build_bat(batch: ParticleBatch, config: BATBuildConfig | None = None) -> BuiltBAT:
    """Construct the BAT over an aggregator's particles and serialize it."""
    config = config or BATBuildConfig()
    n = len(batch)
    if n == 0:
        raise ValueError("cannot build a BAT over zero particles")

    bounds = batch.bounds
    subprefix_bits = config.resolve_subprefix_bits(n)
    codes = encode_positions(batch.positions, bounds, bits=config.morton_bits)
    sort_order = np.argsort(codes, kind="stable")
    uniq, starts = shallow_tree_leaves(codes[sort_order], subprefix_bits, config.morton_bits)
    radix = build_radix_tree(uniq, subprefix_bits)
    n_leaves = len(uniq)

    # Independent treelet builds per shallow leaf (parallel in the paper).
    treelets: list[Treelet] = []
    order_parts: list[np.ndarray] = []
    for k in range(n_leaves):
        seg = sort_order[starts[k] : starts[k + 1]]
        t = build_treelet(
            batch.positions[seg],
            lod_per_node=config.lod_per_node,
            max_leaf_points=config.max_leaf_points,
        )
        treelets.append(t)
        order_parts.append(seg[t.order])
    global_order = np.concatenate(order_parts)

    positions_no = batch.positions[global_order]
    attr_names = list(batch.attributes.keys())
    n_attrs = len(attr_names)
    attrs_no = {name: batch.attributes[name][global_order] for name in attr_names}
    attr_ranges = {
        name: (float(np.min(arr)), float(np.max(arr))) for name, arr in attrs_no.items()
    }
    if config.attribute_binning == "equidepth":
        attr_binnings = {name: EquiDepthBinning.fit(arr) for name, arr in attrs_no.items()}
    else:
        attr_binnings = {
            name: EquiWidthBinning(*attr_ranges[name]) for name in attr_names
        }

    # Per-treelet bitmaps -> dictionary IDs (ID 0 reserved for the empty
    # bitmap so absent attributes prune immediately). The whole forest is
    # processed in level-order numpy passes: global node ids are
    # treelet-major, one group-bitmap pass per attribute covers every
    # node's own slots at once, and one bottom-up propagation covers every
    # treelet's OR sweep.
    dictionary = BitmapDictionary()
    dictionary.add(0)
    bm_cols = max(n_attrs, 1)

    n_nodes_per = np.array([t.n_nodes for t in treelets], dtype=np.int64)
    node_starts = np.concatenate([[0], np.cumsum(n_nodes_per)])
    total_nodes = int(node_starts[-1])
    pts_per = np.array([t.n_points for t in treelets], dtype=np.int64)
    pt_starts = np.concatenate([[0], np.cumsum(pts_per)])

    leaf_boxes = np.zeros((n_leaves, 6), dtype=np.float32)
    leaf_boxes[:, :3] = np.minimum.reduceat(positions_no, pt_starts[:-1], axis=0)
    leaf_boxes[:, 3:] = np.maximum.reduceat(positions_no, pt_starts[:-1], axis=0)

    forest_axis = np.concatenate([t.axis for t in treelets])
    forest_depth = np.concatenate([t.depth for t in treelets])
    forest_count = np.concatenate([t.count for t in treelets]).astype(np.int64)
    forest_left = np.concatenate(
        [np.where(t.axis >= 0, t.left + node_starts[k], -1) for k, t in enumerate(treelets)]
    )
    forest_right = np.concatenate(
        [np.where(t.axis >= 0, t.right + node_starts[k], -1) for k, t in enumerate(treelets)]
    )
    # own-slot slices are contiguous/ascending/tiling within each treelet,
    # so the global slot->node map is one repeat
    owner = np.repeat(np.arange(total_nodes, dtype=np.int64), forest_count)

    node_bitmaps = np.zeros((total_nodes, bm_cols), dtype=np.uint32)
    for a, name in enumerate(attr_names):
        node_bitmaps[:, a] = attr_binnings[name].group_bitmaps(
            attrs_no[name], owner, total_nodes
        )
    propagate_bitmaps_bottom_up(
        forest_axis, forest_depth, forest_left, forest_right, node_bitmaps
    )
    # each treelet's root is its local node 0
    leaf_root_bitmaps = node_bitmaps[node_starts[:-1], :].copy()

    # Intern in the same order the per-node build would (treelet-major,
    # attribute-major within a treelet) so dictionary IDs — and therefore
    # file bytes — are independent of the vectorization.
    treelet_bitmap_ids = np.zeros((total_nodes, bm_cols), dtype=np.uint16)
    if n_attrs:
        ordered = np.concatenate(
            [
                node_bitmaps[node_starts[k] : node_starts[k + 1], :n_attrs].T.ravel()
                for k in range(n_leaves)
            ]
        )
        ordered_ids = dictionary.add_many(ordered)
        cur = 0
        for k in range(n_leaves):
            nk = int(n_nodes_per[k])
            chunk = ordered_ids[cur : cur + nk * n_attrs].reshape(n_attrs, nk).T
            treelet_bitmap_ids[node_starts[k] : node_starts[k + 1], :n_attrs] = chunk
            cur += nk * n_attrs

    inner_bm, inner_box = _shallow_bitmaps_and_boxes(radix, leaf_root_bitmaps, leaf_boxes)

    # ---- serialize -------------------------------------------------------
    atab = np.zeros(n_attrs, dtype=attr_table_dtype())
    for a, name in enumerate(attr_names):
        atab[a]["name"] = name.encode()[:40]
        atab[a]["dtype"] = batch.attributes[name].dtype.str.encode()
        atab[a]["lo"], atab[a]["hi"] = attr_ranges[name]

    inner_dt = shallow_inner_dtype(n_attrs)
    leaf_dt = shallow_leaf_dtype(n_attrs)
    inner_rec = np.zeros(radix.n_inner, dtype=inner_dt)
    if radix.n_inner:
        inner_rec["left"] = radix.left.astype(np.uint32) | np.where(
            radix.left_is_leaf, LEAF_FLAG, np.uint32(0)
        )
        inner_rec["right"] = radix.right.astype(np.uint32) | np.where(
            radix.right_is_leaf, LEAF_FLAG, np.uint32(0)
        )
        inner_rec["bbox"] = inner_box
        if n_attrs:
            inner_rec["bitmap_ids"] = dictionary.add_many(
                inner_bm[:, :n_attrs]
            ).reshape(radix.n_inner, n_attrs)

    leaf_rec = np.zeros(n_leaves, dtype=leaf_dt)
    node_dt = treelet_node_dtype(n_attrs)
    thead_dt = treelet_header_dtype()

    attr_table_offset = HEADER_SIZE
    shallow_inner_offset = attr_table_offset + atab.nbytes
    shallow_leaf_offset = shallow_inner_offset + inner_rec.nbytes
    dict_offset = shallow_leaf_offset + leaf_rec.nbytes
    leaf_rec["n_points"] = pts_per
    leaf_rec["bbox"] = leaf_boxes
    if n_attrs:
        # each treelet's root ID row, already interned above
        leaf_rec["bitmap_ids"] = treelet_bitmap_ids[node_starts[:-1], :n_attrs]

    dict_arr = dictionary.as_array()
    binning_offset = dict_offset + dict_arr.nbytes
    binning_bytes = b""
    if n_attrs:
        edge_tables = np.stack([attr_binnings[name].edges() for name in attr_names])
        binning_bytes = pack_binning_section(
            [attr_binnings[name].kind for name in attr_names], edge_tables
        )
    treelets_offset = pad_to(binning_offset + len(binning_bytes), PAGE_SIZE)

    use_codecs = config.codecs is not None
    flags = 0
    if config.quantize_positions:
        flags |= FLAG_QUANTIZED_POSITIONS
    if config.compress:
        flags |= FLAG_COMPRESSED_TREELETS
    if use_codecs:
        flags |= FLAG_COLUMN_CODECS

    # All node records in one structured array (treelet-major, so each
    # blob is a contiguous slice), and all quantization math in one
    # vectorized pass; the remaining loop only assembles bytes.
    all_nodes = np.zeros(total_nodes, dtype=node_dt)
    all_nodes["axis"] = forest_axis
    all_nodes["depth"] = forest_depth
    all_nodes["split"] = np.concatenate([t.split for t in treelets])
    all_nodes["left"] = np.concatenate([t.left for t in treelets])
    all_nodes["right"] = np.concatenate([t.right for t in treelets])
    all_nodes["begin"] = np.concatenate([t.begin for t in treelets])
    all_nodes["count"] = forest_count
    all_nodes["subtree_end"] = np.concatenate([t.subtree_end for t in treelets])
    if n_attrs:
        all_nodes["bitmap_ids"] = treelet_bitmap_ids[:, :n_attrs]

    quantized_all = None
    if config.quantize_positions:
        lo_pp = np.repeat(leaf_boxes[:, :3].astype(np.float64), pts_per, axis=0)
        ext_pp = np.maximum(
            np.repeat(leaf_boxes[:, 3:].astype(np.float64), pts_per, axis=0) - lo_pp, 0.0
        )
        scale_pp = np.where(ext_pp > 0, 65535.0 / np.where(ext_pp > 0, ext_pp, 1.0), 0.0)
        q = np.round((positions_no.astype(np.float64) - lo_pp) * scale_pp)
        quantized_all = np.clip(q, 0, 65535).astype("<u2")

    # Codec selection is per file and samples the *whole-file* columns, so
    # every treelet of a leaf uses the same codec per column and the choice
    # is a pure function of the input batch (executor-independent bytes).
    codec_map: dict[str, str] = {}
    encoded_cols: dict[str, list[tuple[bytes, float, float]]] = {}
    codec_wire_names: dict[str, bytes] = {}
    if use_codecs:
        pos_source = quantized_all if quantized_all is not None else positions_no
        file_columns = {"nodes": all_nodes, "positions": pos_source}
        for name in attr_names:
            file_columns[name] = attrs_no[name]
        codec_map = select_codecs(file_columns, config.codecs, config.codec_floor_mbs)
        # Encode each whole-file column once, batched across treelets, so
        # per-treelet Python/struct overhead is amortized (the delta codec
        # shares one diff/zigzag pass over the entire column). Node records
        # segment on node_starts; everything else is per-point.
        segment_sources = {
            "nodes": (all_nodes, node_starts),
            "positions": (pos_source, pt_starts),
        }
        for name in attr_names:
            segment_sources[name] = (attrs_no[name], pt_starts)
        for cname, (source, seg_starts) in segment_sources.items():
            codec = get_codec(codec_map[cname])
            # the directory records the codec's wire name, which for
            # parameterized specs (quantize_auto:<bound>) is not the spec
            codec_wire_names[cname] = codec.name.encode()
            encoded_cols[cname] = codec.encode_segments(
                np.ascontiguousarray(source), seg_starts
            )

    # Treelet blobs with page alignment.
    col_dir_dt = column_dir_dtype()
    blobs: list[bytes] = []
    offsets: list[int] = []
    cursor = treelets_offset
    max_depth = 0
    payload_raw_total = 0
    payload_enc_total = 0
    for k, t in enumerate(treelets):
        nodes = all_nodes[node_starts[k] : node_starts[k + 1]]
        max_depth = max(max_depth, t.max_depth)
        seg = slice(int(pt_starts[k]), int(pt_starts[k + 1]))

        if quantized_all is not None:
            pos_arr = quantized_all[seg]
        else:
            pos_arr = positions_no[seg]

        th = np.zeros(1, dtype=thead_dt)
        th[0]["n_nodes"] = t.n_nodes
        th[0]["n_points"] = t.n_points
        th[0]["max_depth"] = t.max_depth

        if use_codecs:
            columns = [("nodes", nodes), ("positions", pos_arr)]
            columns += [(name, attrs_no[name][seg]) for name in attr_names]
            col_dir = np.zeros(len(columns), dtype=col_dir_dt)
            payload_parts = []
            raw_nbytes = 0
            for i, (cname, arr) in enumerate(columns):
                enc, p0, p1 = encoded_cols[cname][k]
                col_dir[i]["codec"] = codec_wire_names[cname]
                col_dir[i]["enc_nbytes"] = len(enc)
                col_dir[i]["raw_nbytes"] = arr.nbytes
                col_dir[i]["p0"] = p0
                col_dir[i]["p1"] = p1
                raw_nbytes += arr.nbytes
                payload_parts.append(enc)
            th[0]["raw_nbytes"] = raw_nbytes
            payload = col_dir.tobytes() + b"".join(payload_parts)
            payload_raw_total += raw_nbytes
            payload_enc_total += sum(len(p) for p in payload_parts)
        else:
            payload_parts = [nodes.tobytes(), np.ascontiguousarray(pos_arr).tobytes()]
            for name in attr_names:
                payload_parts.append(np.ascontiguousarray(attrs_no[name][seg]).tobytes())
            payload = b"".join(payload_parts)
            payload_raw_total += len(payload)
            if config.compress:
                th[0]["raw_nbytes"] = len(payload)
                payload = zlib.compress(payload, level=6)
            payload_enc_total += len(payload)
        blob = th.tobytes() + payload

        aligned = pad_to(cursor, PAGE_SIZE)
        offsets.append(aligned)
        leaf_rec[k]["treelet_offset"] = aligned
        leaf_rec[k]["treelet_nbytes"] = len(blob)
        cursor = aligned + len(blob)
        blobs.append(blob)

    footer_offset = cursor
    file_size = footer_offset + footer_size(n_leaves) if config.checksums else cursor
    header = Header(
        n_points=n,
        n_attrs=n_attrs,
        morton_bits=config.morton_bits,
        subprefix_bits=subprefix_bits,
        lod_per_node=config.lod_per_node,
        max_leaf_points=config.max_leaf_points,
        n_shallow_inner=radix.n_inner,
        n_shallow_leaves=n_leaves,
        dict_entries=len(dictionary),
        max_treelet_depth=max_depth,
        bounds=bounds.as_array(),
        attr_table_offset=attr_table_offset,
        shallow_inner_offset=shallow_inner_offset,
        shallow_leaf_offset=shallow_leaf_offset,
        dict_offset=dict_offset,
        treelets_offset=treelets_offset,
        file_size=file_size,
        flags=flags,
        binning_offset=binning_offset if n_attrs else 0,
        footer_offset=footer_offset if config.checksums else 0,
        version=CODEC_VERSION if use_codecs else (VERSION if config.checksums else LEGACY_VERSION),
    )

    out = bytearray(file_size)
    out[0:HEADER_SIZE] = header.pack()
    out[attr_table_offset : attr_table_offset + atab.nbytes] = atab.tobytes()
    out[shallow_inner_offset : shallow_inner_offset + inner_rec.nbytes] = inner_rec.tobytes()
    out[shallow_leaf_offset : shallow_leaf_offset + leaf_rec.nbytes] = leaf_rec.tobytes()
    out[dict_offset : dict_offset + dict_arr.nbytes] = dict_arr.tobytes()
    out[binning_offset : binning_offset + len(binning_bytes)] = binning_bytes
    for off, blob in zip(offsets, blobs):
        out[off : off + len(blob)] = blob

    if config.checksums:
        section_crcs = {
            name: zlib.crc32(out[o : o + nb])
            for name, (o, nb) in header.section_extents().items()
        }
        treelet_crcs = [
            zlib.crc32(out[off : off + len(blob)]) for off, blob in zip(offsets, blobs)
        ]
        digest = zlib.crc32(out[:footer_offset])
        out[footer_offset:file_size] = pack_footer(section_crcs, treelet_crcs, digest)

    raw = batch.nbytes
    root_bitmaps = {}
    for a, name in enumerate(attr_names):
        if radix.n_inner:
            root_bitmaps[name] = int(inner_bm[radix.root, a])
        else:
            root_bitmaps[name] = int(leaf_root_bitmaps[0, a])

    return BuiltBAT(
        data=bytes(out),
        n_points=n,
        bounds=bounds,
        attr_ranges=attr_ranges,
        root_bitmaps=root_bitmaps,
        overhead_bytes=file_size - raw,
        raw_bytes=raw,
        dict_entries=len(dictionary),
        n_treelets=n_leaves,
        attr_binnings=attr_binnings,
        flags=flags,
        codec_table=dict(codec_map),
        payload_raw_bytes=payload_raw_total,
        payload_encoded_bytes=payload_enc_total,
    )
