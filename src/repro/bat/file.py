"""Memory-mapped BAT file reader (paper §V).

Reads go through ``mmap`` so the OS page cache serves repeated traversals
and the 4 KB-aligned treelets map cleanly onto pages. The shallow tree,
attribute table, and bitmap dictionary — touched by every query — live in
the first pages of the file.
"""

from __future__ import annotations

import mmap
import os
import threading
import zlib
from collections.abc import Mapping

import numpy as np

from ..binning import make_binning
from ..errors import IntegrityError
from ..types import AttributeSpec, Box
from .codecs import decode_column, get_codec
from .format import (
    CHECKSUM_VERSION,
    CODEC_VERSION,
    FLAG_COMPRESSED_TREELETS,
    FLAG_QUANTIZED_POSITIONS,
    HEADER_SIZE,
    LEAF_FLAG,
    Header,
    attr_table_dtype,
    column_dir_dtype,
    shallow_inner_dtype,
    shallow_leaf_dtype,
    treelet_header_dtype,
    treelet_node_dtype,
    unpack_binning_section,
    unpack_footer,
)

__all__ = ["BATFile", "TreeletView"]


class _LazyColumns(Mapping):
    """Attribute columns of one v4 treelet, decoded on first access.

    Looks like the plain dict v2/v3 treelets carry, but a column's payload
    is only run through its codec when something subscripts it — queries
    that filter or select a subset of attributes never touch (or pay for)
    the rest. Decoded columns are cached for the life of the treelet view.
    """

    __slots__ = ("_file", "_names", "_col_dir", "_starts", "_n_pts", "_leaf", "_cache")

    def __init__(self, file, names, col_dir, starts, n_pts, leaf):
        self._file = file
        self._names = names
        self._col_dir = col_dir
        self._starts = starts
        self._n_pts = n_pts
        self._leaf = leaf
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            idx = self._names.index(name) if name in self._names else -1
            if idx < 0:
                raise KeyError(name)
            # nodes and positions occupy directory slots 0 and 1
            arr = self._file._decode_treelet_column(
                self._leaf, self._col_dir, self._starts, 2 + idx,
                self._file.attr_dtypes[name], self._n_pts,
            )
            # with a DecodedColumnCache attached, *it* owns retention (and
            # its byte budget must actually bound decoded memory); only
            # cache-less handles memoize for their own lifetime
            if self._file.column_cache is None:
                self._cache[name] = arr
        return arr

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name) -> bool:
        return name in self._names


class TreeletView:
    """Zero-copy views into one treelet's region of the mapped file.

    ``attributes`` is a plain dict for v2/v3 files; for v4 files it is a
    lazy mapping that decodes a column the first time it is subscripted.
    Both support the full read-only mapping protocol.

    For v4 files ``nodes`` and ``positions`` are lazy too: the treelet
    header already carries ``n_points`` and ``max_depth``, so a full-speed
    plan (no box test, no filters) can emit a whole treelet without ever
    decoding its node records — or, under column projection, its position
    block. Accessing the property triggers (and memoizes) the decode.
    """

    __slots__ = (
        "_nodes", "_positions", "attributes", "max_depth", "_n_points",
        "_nodes_thunk", "_positions_thunk", "_memoize",
    )

    def __init__(
        self,
        nodes: np.ndarray | None = None,
        positions: np.ndarray | None = None,
        attributes: Mapping | None = None,
        max_depth: int = 0,
        n_points: int | None = None,
        nodes_thunk=None,
        positions_thunk=None,
        memoize: bool = True,
    ):
        self._nodes = nodes
        self._positions = positions
        self.attributes = attributes if attributes is not None else {}
        self.max_depth = int(max_depth)
        self._n_points = n_points
        self._nodes_thunk = nodes_thunk
        self._positions_thunk = positions_thunk
        # views of a handle with a DecodedColumnCache attached do not
        # memoize: retention (and the byte budget) belongs to that tier
        self._memoize = bool(memoize)

    @property
    def nodes(self) -> np.ndarray:  # structured treelet_node_dtype
        if self._nodes is not None:
            return self._nodes
        arr = self._nodes_thunk()
        if self._memoize:
            self._nodes = arr
        return arr

    @property
    def positions(self) -> np.ndarray:  # (n, 3) float32, node order
        if self._positions is not None:
            return self._positions
        arr = self._positions_thunk()
        if self._memoize:
            self._positions = arr
        return arr

    @property
    def n_points(self) -> int:
        if self._n_points is not None:
            return self._n_points
        return len(self.positions)


class BATFile:
    """One aggregator's BAT file, opened read-only via memory mapping.

    Usable as a context manager. All returned arrays are views into the
    mapping and become invalid after :meth:`close`.
    """

    def __init__(self, path):
        self.path = str(path)
        self._f = open(self.path, "rb")
        # Identity of the file *object* behind this handle, captured from
        # the open fd so it cannot race a concurrent os.replace. Caches use
        # it to detect that the path now names different bytes: an atomic
        # publish (tmp + rename) always lands a new inode, and an in-place
        # rewrite changes size or mtime_ns.
        st = os.fstat(self._f.fileno())
        self.stat_signature = (st.st_mtime_ns, st.st_size, st.st_ino)
        #: inode-qualified cache key — two handles for the same *path* but
        #: different file generations never share decoded-column entries
        self.cache_key = f"{self.path}\x00{st.st_ino}:{st.st_mtime_ns}"
        try:
            self._mm = mmap.mmap(self._f.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            # an empty file cannot be mapped; report it like any other
            # not-a-BAT-file input instead of leaking the mmap detail
            self._f.close()
            self._f = None
            raise IntegrityError(
                f"not a BAT file (empty file): {self.path}",
                section="header", path=self.path,
            ) from None
        try:
            self._parse()
        except BaseException:
            # a failed parse must not leak the fd/mapping: close() may run
            # never (caller has no object) so release here before re-raising
            self.close()
            raise

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "<memory>") -> "BATFile":
        """Open a BAT image that was never written to disk.

        This is the paper's in-transit path (§III-C3): "the tree can be
        used for in transit visualization and analysis on the aggregators
        before or instead of being written to disk." All query APIs work
        identically; the buffer replaces the memory map.
        """
        self = cls.__new__(cls)
        self.path = name
        self._f = None
        self.stat_signature = None
        self.cache_key = name
        self._mm = bytes(data)
        self._parse()
        return self

    def _parse(self) -> None:
        try:
            self.header = Header.unpack(self._mm[:HEADER_SIZE])
        except IntegrityError as exc:
            exc.path = self.path
            raise
        h = self.header
        if h.file_size != len(self._mm):
            raise IntegrityError(
                f"BAT file size mismatch: header says {h.file_size}, "
                f"file is {len(self._mm)}",
                section="header", path=self.path,
            )
        # With the header validated (CRC-checked for v3), every section
        # extent it implies must land inside the buffer before any
        # np.frombuffer view is built over it.
        for name, (off, nbytes) in h.section_extents().items():
            if off < 0 or off + nbytes > len(self._mm):
                raise IntegrityError(
                    f"BAT section {name!r} out of bounds "
                    f"(offset {off}, {nbytes} bytes, file is {len(self._mm)})",
                    section=name, path=self.path,
                )
        self._footer = None
        self._treelet_crcs = None
        # slicing an mmap copies; slicing one long-lived memoryview of it
        # hands codecs zero-copy windows into the mapped pages instead
        self._buf = memoryview(self._mm)
        #: column bytes materialized for queries so far (v4 decode accounting)
        self.decoded_bytes = 0
        self._dbytes_lock = threading.Lock()
        #: optional DecodedColumnCache attached by the file-handle cache
        self.column_cache = None
        self._column_summary = None
        if h.version >= CHECKSUM_VERSION:
            try:
                self._footer = unpack_footer(self._mm, h.footer_offset, h.n_shallow_leaves)
            except IntegrityError as exc:
                exc.path = self.path
                raise
            self._treelet_crcs = self._footer.treelet_crcs
            for name, (off, nbytes) in h.section_extents().items():
                actual = zlib.crc32(self._mm[off : off + nbytes])
                if actual != self._footer.section_crcs[name]:
                    raise IntegrityError(
                        f"BAT section {name!r} checksum mismatch in {self.path}",
                        section=name, path=self.path,
                    )
        self._inner_dt = shallow_inner_dtype(h.n_attrs)
        self._leaf_dt = shallow_leaf_dtype(h.n_attrs)
        self._node_dt = treelet_node_dtype(h.n_attrs)

        atab = np.frombuffer(
            self._mm, dtype=attr_table_dtype(), count=h.n_attrs, offset=h.attr_table_offset
        )
        self.attr_names: list[str] = [
            bytes(rec["name"]).rstrip(b"\0").decode() for rec in atab
        ]
        self.attr_dtypes: dict[str, np.dtype] = {
            name: np.dtype(bytes(rec["dtype"]).rstrip(b"\0").decode())
            for name, rec in zip(self.attr_names, atab)
        }
        self.attr_ranges: dict[str, tuple[float, float]] = {
            name: (float(rec["lo"]), float(rec["hi"]))
            for name, rec in zip(self.attr_names, atab)
        }
        self.shallow_inner = np.frombuffer(
            self._mm, dtype=self._inner_dt, count=h.n_shallow_inner, offset=h.shallow_inner_offset
        )
        self.shallow_leaves = np.frombuffer(
            self._mm, dtype=self._leaf_dt, count=h.n_shallow_leaves, offset=h.shallow_leaf_offset
        )
        self.dictionary = np.frombuffer(
            self._mm, dtype=np.uint32, count=h.dict_entries, offset=h.dict_offset
        )
        #: per-attribute binning scheme (drives query-bitmap computation)
        self.binnings: dict[str, object] = {}
        if h.n_attrs and h.binning_offset:
            kinds, edge_tables = unpack_binning_section(
                self._mm, h.binning_offset, h.n_attrs
            )
            for a, name in enumerate(self.attr_names):
                lo, hi = self.attr_ranges[name]
                self.binnings[name] = make_binning(kinds[a], lo, hi, edge_tables[a])
        self._treelet_cache: dict[int, TreeletView] = {}
        self._visit_rank: np.ndarray | None = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the mapping.

        If the caller still holds numpy views into the file, the mapping
        cannot be unmapped yet; it is released when the last view dies
        (CPython keeps an mmap alive while exported buffers exist), so the
        views stay valid either way.

        Safe to call on a partially constructed instance (a parse failure
        releases its handles through here).
        """
        cache = getattr(self, "_treelet_cache", None)
        if cache is not None:
            cache.clear()
        self.shallow_inner = None
        self.shallow_leaves = None
        self.dictionary = None
        buf = getattr(self, "_buf", None)
        if buf is not None:
            try:
                buf.release()
            except BufferError:
                pass  # exported to a live array; freed when it is collected
            self._buf = None
        if getattr(self, "_mm", None) is not None:
            if isinstance(self._mm, mmap.mmap):
                try:
                    self._mm.close()
                except BufferError:
                    pass  # outstanding views; freed when they are collected
            self._mm = None
        if getattr(self, "_f", None) is not None:
            self._f.close()
            self._f = None

    def __enter__(self) -> "BATFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure ----------------------------------------------------------

    @property
    def n_points(self) -> int:
        return self.header.n_points

    @property
    def bounds(self) -> Box:
        return Box.from_array(self.header.bounds)

    @property
    def n_treelets(self) -> int:
        return self.header.n_shallow_leaves

    @property
    def max_treelet_depth(self) -> int:
        return self.header.max_treelet_depth

    def attribute_specs(self) -> list[AttributeSpec]:
        return [AttributeSpec(n, self.attr_dtypes[n]) for n in self.attr_names]

    def attr_index(self, name: str) -> int:
        try:
            return self.attr_names.index(name)
        except ValueError:
            raise KeyError(f"no attribute {name!r} in {self.path}") from None

    def bitmap(self, bitmap_id: int) -> int:
        """Resolve a 16-bit dictionary ID to its 32-bit bitmap."""
        return int(self.dictionary[bitmap_id])

    def bitmaps_many(self, bitmap_ids: np.ndarray) -> np.ndarray:
        """Resolve an array of dictionary IDs to their uint32 bitmaps."""
        return self.dictionary[np.asarray(bitmap_ids, dtype=np.int64)]

    def shallow_leaf_visit_rank(self) -> np.ndarray:
        """Rank of each shallow leaf in stack-DFS visit order, cached.

        The recursive traversal pops a LIFO stack, so the *right* child of
        every inner node is visited first. Pruning removes subtrees but
        never reorders survivors, which makes this full-tree rank the
        canonical emission order for any query's surviving leaves.
        """
        if self._visit_rank is None:
            rank = np.empty(self.header.n_shallow_leaves, dtype=np.int64)
            n = 0
            stack = [self.root()]
            while stack:
                idx, is_leaf = stack.pop()
                if is_leaf:
                    rank[idx] = n
                    n += 1
                else:
                    stack.extend(self.children(idx))
            self._visit_rank = rank
        return self._visit_rank

    def leaf_box(self, leaf: int) -> Box:
        b = self.shallow_leaves[leaf]["bbox"]
        return Box(tuple(map(float, b[:3])), tuple(map(float, b[3:])))

    def inner_box(self, inner: int) -> Box:
        b = self.shallow_inner[inner]["bbox"]
        return Box(tuple(map(float, b[:3])), tuple(map(float, b[3:])))

    def root(self) -> tuple[int, bool]:
        """(index, is_leaf) of the shallow root."""
        if self.header.n_shallow_inner == 0:
            return 0, True
        return 0, False

    def children(self, inner: int) -> list[tuple[int, bool]]:
        """Decode an inner node's (child index, child-is-leaf) pairs."""
        rec = self.shallow_inner[inner]
        out = []
        for key in ("left", "right"):
            raw = np.uint32(rec[key])
            is_leaf = bool(raw & LEAF_FLAG)
            out.append((int(raw & ~LEAF_FLAG), is_leaf))
        return out

    @property
    def quantized(self) -> bool:
        return bool(self.header.flags & FLAG_QUANTIZED_POSITIONS)

    @property
    def compressed(self) -> bool:
        return bool(self.header.flags & FLAG_COMPRESSED_TREELETS)

    @property
    def version(self) -> int:
        return self.header.version

    @property
    def checksummed(self) -> bool:
        """True when the file carries the version-3 checksum footer."""
        return self._treelet_crcs is not None

    @property
    def column_encoded(self) -> bool:
        """True when treelets carry a per-column codec directory (v4)."""
        return self.header.version >= CODEC_VERSION

    def column_summary(self) -> dict[str, dict]:
        """Per-column codec id, encoded/raw byte totals, and error bound.

        Aggregated over every treelet's column directory without decoding
        any payload. Raw-layout (v2/v3) files report the ``raw`` codec with
        equal encoded and raw sizes.
        """
        if self._column_summary is not None:
            return self._column_summary
        h = self.header
        names = ["nodes", "positions", *self.attr_names]
        out = {n: {"codec": "raw", "enc_nbytes": 0, "raw_nbytes": 0, "error_bound": 0.0}
               for n in names}
        if not self.column_encoded:
            node_sz = self._node_dt.itemsize
            pos_sz = 6 if self.quantized else 12
            for rec in self.shallow_leaves:
                th = np.frombuffer(
                    self._mm, dtype=treelet_header_dtype(), count=1,
                    offset=int(rec["treelet_offset"]),
                )[0]
                out["nodes"]["raw_nbytes"] += int(th["n_nodes"]) * node_sz
                out["positions"]["raw_nbytes"] += int(th["n_points"]) * pos_sz
                for name in self.attr_names:
                    out[name]["raw_nbytes"] += (
                        int(th["n_points"]) * self.attr_dtypes[name].itemsize
                    )
            for rec in out.values():
                rec["enc_nbytes"] = rec["raw_nbytes"]
        else:
            head = treelet_header_dtype().itemsize
            dir_dt = column_dir_dtype()
            for leaf in range(h.n_shallow_leaves):
                off = int(self.shallow_leaves[leaf]["treelet_offset"])
                col_dir = np.frombuffer(
                    self._mm, dtype=dir_dt, count=len(names), offset=off + head
                )
                for i, name in enumerate(names):
                    d = col_dir[i]
                    codec_name = bytes(d["codec"]).rstrip(b"\0").decode()
                    rec = out[name]
                    rec["codec"] = codec_name
                    rec["enc_nbytes"] += int(d["enc_nbytes"])
                    rec["raw_nbytes"] += int(d["raw_nbytes"])
                    codec = get_codec(codec_name)
                    if not codec.lossless:
                        dtype = (
                            self.attr_dtypes[name] if name in self.attr_dtypes else np.float32
                        )
                        rec["error_bound"] = max(
                            rec["error_bound"],
                            float(codec.error_bound(float(d["p0"]), float(d["p1"]), dtype)),
                        )
        self._column_summary = out
        return out

    def _decode_treelet_column(self, leaf, col_dir, starts, idx, dtype, count, transform=None):
        """Decode directory slot ``idx`` of one v4 treelet to a flat array.

        Consults the attached :class:`DecodedColumnCache` first; a hit
        skips the codec (and ``transform``) entirely and does *not* count
        toward ``decoded_bytes`` (the counter measures real decode work).
        ``transform`` post-processes the raw codec output — the position
        slot uses it to reshape/dequantize — and the cache stores the
        *transformed* product, so hits skip that work too.
        """
        cache = self.column_cache
        if cache is not None:
            arr = cache.get(self.cache_key, leaf, idx)
            if arr is not None:
                return arr
        d = col_dir[idx]
        codec_name = bytes(d["codec"]).rstrip(b"\0").decode()
        buf = self._buf[int(starts[idx]) : int(starts[idx + 1])]
        arr = decode_column(codec_name, buf, dtype, count, float(d["p0"]), float(d["p1"]))
        if arr.nbytes != int(d["raw_nbytes"]):
            raise IntegrityError(
                f"treelet {leaf} column {idx}: decoded {arr.nbytes} bytes, "
                f"directory says {int(d['raw_nbytes'])} in {self.path}",
                section=f"treelet {leaf}", path=self.path,
            )
        with self._dbytes_lock:
            self.decoded_bytes += arr.nbytes
        if transform is not None:
            arr = transform(arr)
        if cache is not None:
            cache.put(self.cache_key, leaf, idx, arr)
        return arr

    def treelet(self, leaf: int) -> TreeletView:
        """Map (or decompress/decode) the treelet of shallow leaf ``leaf``.

        Plain files hand back zero-copy views into the mapping; compressed
        treelets inflate on first access, and quantized positions decode to
        float32 against the leaf's bounding box. Either way the view is
        cached, so repeated traversals pay once — including the treelet's
        CRC32 verification on checksummed files, which runs on first touch
        so queries that prune a damaged treelet never pay for (or trip
        over) it.
        """
        cached = self._treelet_cache.get(leaf)
        if cached is not None:
            return cached
        rec = self.shallow_leaves[leaf]
        off = int(rec["treelet_offset"])
        nbytes = int(rec["treelet_nbytes"])
        if off < 0 or off + nbytes > len(self._mm):
            raise IntegrityError(
                f"treelet {leaf} out of bounds (offset {off}, {nbytes} bytes) "
                f"in {self.path}",
                section=f"treelet {leaf}", path=self.path,
            )
        if self._treelet_crcs is not None:
            actual = zlib.crc32(self._mm[off : off + nbytes])
            if actual != int(self._treelet_crcs[leaf]):
                raise IntegrityError(
                    f"treelet {leaf} checksum mismatch in {self.path}",
                    section=f"treelet {leaf}", path=self.path,
                )
        th = np.frombuffer(self._mm, dtype=treelet_header_dtype(), count=1, offset=off)[0]
        n_nodes = int(th["n_nodes"])
        n_pts = int(th["n_points"])
        head = treelet_header_dtype().itemsize

        if self.column_encoded:
            view = self._treelet_v4(leaf, rec, off, head, n_nodes, n_pts, int(th["max_depth"]))
            self._treelet_cache[leaf] = view
            return view

        if self.compressed:
            comp = self._mm[off + head : off + int(rec["treelet_nbytes"])]
            payload = zlib.decompress(comp)
            if len(payload) != int(th["raw_nbytes"]):
                raise IntegrityError(
                    f"treelet {leaf}: decompressed size mismatch in {self.path}",
                    section=f"treelet {leaf}", path=self.path,
                )
            buf, base = payload, 0
        else:
            buf, base = self._mm, off + head

        cursor = base
        nodes = np.frombuffer(buf, dtype=self._node_dt, count=n_nodes, offset=cursor)
        cursor += nodes.nbytes
        if self.quantized:
            q = np.frombuffer(buf, dtype="<u2", count=3 * n_pts, offset=cursor).reshape(
                n_pts, 3
            )
            cursor += q.nbytes
            lo = np.asarray(rec["bbox"][:3], dtype=np.float64)
            ext = np.maximum(np.asarray(rec["bbox"][3:], dtype=np.float64) - lo, 0.0)
            positions = (lo + q.astype(np.float64) / 65535.0 * ext).astype(np.float32)
        else:
            positions = np.frombuffer(
                buf, dtype=np.float32, count=3 * n_pts, offset=cursor
            ).reshape(n_pts, 3)
            cursor += positions.nbytes
        attrs: dict[str, np.ndarray] = {}
        for name in self.attr_names:
            dt = self.attr_dtypes[name]
            attrs[name] = np.frombuffer(buf, dtype=dt, count=n_pts, offset=cursor)
            cursor += n_pts * dt.itemsize
        view = TreeletView(
            nodes=nodes, positions=positions, attributes=attrs, max_depth=int(th["max_depth"])
        )
        self._treelet_cache[leaf] = view
        return view

    def _treelet_v4(self, leaf, rec, off, head, n_nodes, n_pts, max_depth) -> TreeletView:
        """Build the view of a column-encoded (v4) treelet.

        *Everything* decodes lazily: node records and the position block go
        behind thunks on the view (a full-speed plan under column
        projection may need neither), and attribute columns go behind a
        :class:`_LazyColumns` mapping so only the columns a query filters
        on or materializes ever run through their codec.
        """
        n_cols = 2 + self.header.n_attrs
        dir_dt = column_dir_dtype()
        col_dir = np.frombuffer(self._mm, dtype=dir_dt, count=n_cols, offset=off + head)
        base = off + head + col_dir.nbytes
        starts = base + np.concatenate(
            [[0], np.cumsum(col_dir["enc_nbytes"].astype(np.int64))]
        )
        if int(starts[-1]) > off + int(rec["treelet_nbytes"]):
            raise IntegrityError(
                f"treelet {leaf}: column payloads overrun the treelet block "
                f"in {self.path}",
                section=f"treelet {leaf}", path=self.path,
            )

        def nodes_thunk() -> np.ndarray:
            return self._decode_treelet_column(
                leaf, col_dir, starts, 0, self._node_dt, n_nodes
            )

        # copy the bbox floats out of the shallow-leaf record so the thunk
        # holds plain values, not a structured view pinning the mapping
        bbox = np.asarray(rec["bbox"], dtype=np.float64).copy()

        def dequantize(flat: np.ndarray) -> np.ndarray:
            if self.quantized:
                q = flat.reshape(n_pts, 3)
                lo = bbox[:3]
                ext = np.maximum(bbox[3:] - lo, 0.0)
                return (lo + q.astype(np.float64) / 65535.0 * ext).astype(np.float32)
            return flat.reshape(n_pts, 3)

        def positions_thunk() -> np.ndarray:
            pos_dt = np.dtype("<u2") if self.quantized else np.dtype("<f4")
            return self._decode_treelet_column(
                leaf, col_dir, starts, 1, pos_dt, 3 * n_pts, transform=dequantize
            )

        attrs = _LazyColumns(self, list(self.attr_names), col_dir, starts, n_pts, leaf)
        return TreeletView(
            attributes=attrs,
            max_depth=max_depth,
            n_points=n_pts,
            nodes_thunk=nodes_thunk,
            positions_thunk=positions_thunk,
            memoize=self.column_cache is None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BATFile({self.path!r}, points={self.n_points}, "
            f"treelets={self.n_treelets}, attrs={self.attr_names})"
        )
