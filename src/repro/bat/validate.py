"""Integrity validation for BAT files and datasets (fsck-style).

A production I/O library must be able to tell a damaged checkpoint from a
good one *before* a restart consumes it. ``validate_file`` walks every
structural invariant of the format:

- header magic/version/size bookkeeping,
- section offsets in order and within the file,
- shallow tree: every leaf reachable exactly once, child pointers in range,
- treelets: page alignment, node slices tile the particle range,
  parent/child depth relations, subtree contiguity,
- bitmaps: every 16-bit ID resolves in the dictionary; node bitmaps are
  supersets of their children's,
- particles: positions inside their leaf's (slightly padded) bbox.

``validate_dataset`` additionally cross-checks the manifest against the
leaf files (counts, bounds, attribute ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .file import BATFile
from .format import PAGE_SIZE

__all__ = ["ValidationReport", "validate_file", "validate_dataset"]


@dataclass
class ValidationReport:
    """Findings of one validation pass."""

    path: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def check(self, condition: bool, msg: str) -> bool:
        self.checks += 1
        if not condition:
            self.errors.append(msg)
        return condition

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.errors)} ERROR(S)"
        lines = [f"{self.path}: {status} ({self.checks} checks)"]
        lines += [f"  error: {e}" for e in self.errors]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_file(path, deep: bool = True) -> ValidationReport:
    """Validate one BAT file; ``deep=False`` skips per-treelet checks."""
    report = ValidationReport(path=str(path))
    try:
        bat = BATFile(path)
    except Exception as exc:  # noqa: BLE001 - any parse failure is the finding
        report.error(f"cannot open: {exc}")
        return report
    try:
        _validate_open_file(bat, report, deep)
    finally:
        bat.close()
    return report


def _validate_open_file(bat: BATFile, report: ValidationReport, deep: bool) -> None:
    h = bat.header
    report.check(h.n_points > 0, "file holds zero particles")
    report.check(
        h.attr_table_offset
        <= h.shallow_inner_offset
        <= h.shallow_leaf_offset
        <= h.dict_offset
        <= h.treelets_offset,
        "section offsets out of order",
    )
    report.check(h.treelets_offset % PAGE_SIZE == 0, "treelet section not page aligned")

    # shallow tree reachability
    root, root_is_leaf = bat.root()
    seen_leaves: set[int] = set()
    seen_inner: set[int] = set()
    stack = [(root, root_is_leaf)]
    while stack:
        idx, is_leaf = stack.pop()
        if is_leaf:
            if not report.check(0 <= idx < h.n_shallow_leaves, f"leaf index {idx} out of range"):
                continue
            if not report.check(idx not in seen_leaves, f"leaf {idx} reached twice"):
                continue
            seen_leaves.add(idx)
        else:
            if not report.check(0 <= idx < max(h.n_shallow_inner, 1), f"inner index {idx} out of range"):
                continue
            if not report.check(idx not in seen_inner, f"inner {idx} reached twice (cycle?)"):
                continue
            seen_inner.add(idx)
            stack.extend(bat.children(idx))
    report.check(
        seen_leaves == set(range(h.n_shallow_leaves)),
        f"unreachable shallow leaves: {sorted(set(range(h.n_shallow_leaves)) - seen_leaves)[:5]}",
    )

    # leaf records (vectorized across all leaves; failures name the first)
    offs = bat.shallow_leaves["treelet_offset"].astype(np.int64)
    nbs = bat.shallow_leaves["treelet_nbytes"].astype(np.int64)
    misaligned = np.nonzero(offs % PAGE_SIZE != 0)[0]
    report.check(
        len(misaligned) == 0, f"treelet {misaligned[0] if len(misaligned) else 0} not page aligned"
    )
    past_end = np.nonzero(offs + nbs > h.file_size)[0]
    report.check(
        len(past_end) == 0,
        f"treelet {past_end[0] if len(past_end) else 0} extends past end of file",
    )
    total_points = int(bat.shallow_leaves["n_points"].astype(np.int64).sum())
    report.check(
        total_points == h.n_points,
        f"leaf point counts sum to {total_points}, header says {h.n_points}",
    )

    # bitmap dictionary IDs in range
    for arr in (bat.shallow_inner, bat.shallow_leaves):
        if len(arr):
            ids = arr["bitmap_ids"]
            report.check(
                int(ids.max(initial=0)) < max(h.dict_entries, 1),
                "shallow-node bitmap ID exceeds dictionary",
            )

    if not deep:
        return

    for k in range(h.n_shallow_leaves):
        _validate_treelet(bat, k, report)


def _validate_treelet(bat: BATFile, leaf: int, report: ValidationReport) -> None:
    h = bat.header
    try:
        tv = bat.treelet(leaf)
    except Exception as exc:  # noqa: BLE001
        report.error(f"treelet {leaf}: cannot load ({exc})")
        return
    nodes = tv.nodes
    n = len(nodes)
    rec = bat.shallow_leaves[leaf]
    if not report.check(tv.n_points == int(rec["n_points"]), f"treelet {leaf}: point count mismatch"):
        return

    # every per-node invariant below is one vectorized comparison over the
    # whole treelet; error messages name the first offending node
    b = nodes["begin"].astype(np.int64)
    c = nodes["count"].astype(np.int64)
    e = nodes["subtree_end"].astype(np.int64)
    bad = np.nonzero(~((b + c <= e) & (e <= tv.n_points)))[0]
    if not report.check(
        len(bad) == 0,
        f"treelet {leaf} node {bad[0] if len(bad) else 0}: bad slice"
        + (f" [{b[bad[0]]},{b[bad[0]] + c[bad[0]]},{e[bad[0]]})" if len(bad) else ""),
    ):
        return
    inner = np.nonzero(nodes["axis"] >= 0)[0]
    if len(inner):
        l = nodes["left"][inner].astype(np.int64)
        r = nodes["right"][inner].astype(np.int64)
        bad = np.nonzero(~((inner < l) & (l < n) & (inner < r) & (r < n)))[0]
        if not report.check(
            len(bad) == 0, f"treelet {leaf} node {inner[bad[0]] if len(bad) else 0}: bad children"
        ):
            return
        bad = np.nonzero((b[l] != b[inner] + c[inner]) | (e[r] != e[inner]))[0]
        report.check(
            len(bad) == 0,
            f"treelet {leaf} node {inner[bad[0]] if len(bad) else 0}: children do not tile subtree",
        )
        d = nodes["depth"].astype(np.int64)
        bad = np.nonzero(d[l] != d[inner] + 1)[0]
        report.check(
            len(bad) == 0,
            f"treelet {leaf} node {inner[bad[0]] if len(bad) else 0}: child depth not parent+1",
        )
        if h.n_attrs:
            # bitmap containment: parent covers children, all attrs at once
            dict_arr = np.asarray(bat.dictionary, dtype=np.uint32)
            pb = dict_arr[nodes["bitmap_ids"][inner]]
            ok = True
            for child in (l, r):
                cb = dict_arr[nodes["bitmap_ids"][child]]
                contained = (pb & cb) == cb
                if not contained.all():
                    i_bad, a_bad = np.nonzero(~contained)
                    ok = report.check(
                        False,
                        f"treelet {leaf} node {inner[i_bad[0]]} attr {a_bad[0]}: "
                        "child bitmap not contained",
                    )
                else:
                    report.checks += 1
            if not ok:
                return
    # coverage multiplicity via a difference array (+1 at begin, -1 at
    # begin+count): prefix sums are all 1 iff the slices partition
    cover = np.zeros(tv.n_points + 1, dtype=np.int64)
    np.add.at(cover, b, 1)
    np.add.at(cover, b + c, -1)
    report.check(
        bool((np.cumsum(cover[:-1]) == 1).all()),
        f"treelet {leaf}: node slices do not partition particles",
    )

    # particles inside leaf bbox (pad for float32 rounding / quantization)
    box = bat.leaf_box(leaf)
    ext = np.maximum(box.extents, 1e-6)
    lo = np.asarray(box.lower) - 1e-4 * ext
    hi = np.asarray(box.upper) + 1e-4 * ext
    inside = ((tv.positions >= lo.astype(np.float32)) & (tv.positions <= hi.astype(np.float32))).all()
    report.check(bool(inside), f"treelet {leaf}: particles outside leaf bounds")


def validate_dataset(metadata_path, deep: bool = False) -> ValidationReport:
    """Validate a manifest and every leaf file it references."""
    from ..core.metadata import DatasetMetadata

    metadata_path = Path(metadata_path)
    report = ValidationReport(path=str(metadata_path))
    try:
        meta = DatasetMetadata.load(metadata_path)
    except Exception as exc:  # noqa: BLE001
        report.error(f"cannot load metadata: {exc}")
        return report
    if meta.layout != "bat":
        report.warnings.append(f"layout {meta.layout!r}: only manifest checks performed")

    for leaf in meta.leaves:
        fpath = metadata_path.parent / leaf.file_name
        if not report.check(fpath.exists(), f"missing leaf file {leaf.file_name}"):
            continue
        if meta.layout != "bat":
            continue
        sub = validate_file(fpath, deep=deep)
        report.checks += sub.checks
        report.errors.extend(f"{leaf.file_name}: {e}" for e in sub.errors)
        if sub.ok:
            with BATFile(fpath) as f:
                report.check(
                    f.n_points == leaf.count,
                    f"{leaf.file_name}: manifest says {leaf.count} points, file has {f.n_points}",
                )
                report.check(
                    leaf.bounds.contains_box(f.bounds) or f.bounds.contains_box(leaf.bounds),
                    f"{leaf.file_name}: bounds disagree with manifest",
                )
                for name, (lo, hi) in f.attr_ranges.items():
                    glo, ghi = meta.attr_ranges.get(name, (None, None))
                    report.check(
                        glo is not None and glo <= lo and hi <= ghi,
                        f"{leaf.file_name}: attribute {name} range outside global range",
                    )
    return report
