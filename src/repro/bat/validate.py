"""Integrity validation for BAT files and datasets (fsck-style).

A production I/O library must be able to tell a damaged checkpoint from a
good one *before* a restart consumes it. ``validate_file`` walks every
structural invariant of the format:

- header magic/version/size bookkeeping,
- section offsets in order and within the file,
- shallow tree: every leaf reachable exactly once, child pointers in range,
- treelets: page alignment, node slices tile the particle range,
  parent/child depth relations, subtree contiguity,
- bitmaps: every 16-bit ID resolves in the dictionary; node bitmaps are
  supersets of their children's,
- particles: positions inside their leaf's (slightly padded) bbox.

``validate_dataset`` additionally cross-checks the manifest against the
leaf files (counts, bounds, attribute ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..types import Box
from .file import BATFile
from .format import PAGE_SIZE

__all__ = ["ValidationReport", "validate_file", "validate_dataset"]


@dataclass
class ValidationReport:
    """Findings of one validation pass."""

    path: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def check(self, condition: bool, msg: str) -> bool:
        self.checks += 1
        if not condition:
            self.errors.append(msg)
        return condition

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.errors)} ERROR(S)"
        lines = [f"{self.path}: {status} ({self.checks} checks)"]
        lines += [f"  error: {e}" for e in self.errors]
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_file(path, deep: bool = True) -> ValidationReport:
    """Validate one BAT file; ``deep=False`` skips per-treelet checks."""
    report = ValidationReport(path=str(path))
    try:
        bat = BATFile(path)
    except Exception as exc:  # noqa: BLE001 - any parse failure is the finding
        report.error(f"cannot open: {exc}")
        return report
    try:
        _validate_open_file(bat, report, deep)
    finally:
        bat.close()
    return report


def _validate_open_file(bat: BATFile, report: ValidationReport, deep: bool) -> None:
    h = bat.header
    report.check(h.n_points > 0, "file holds zero particles")
    report.check(
        h.attr_table_offset
        <= h.shallow_inner_offset
        <= h.shallow_leaf_offset
        <= h.dict_offset
        <= h.treelets_offset,
        "section offsets out of order",
    )
    report.check(h.treelets_offset % PAGE_SIZE == 0, "treelet section not page aligned")

    # shallow tree reachability
    root, root_is_leaf = bat.root()
    seen_leaves: set[int] = set()
    seen_inner: set[int] = set()
    stack = [(root, root_is_leaf)]
    while stack:
        idx, is_leaf = stack.pop()
        if is_leaf:
            if not report.check(0 <= idx < h.n_shallow_leaves, f"leaf index {idx} out of range"):
                continue
            if not report.check(idx not in seen_leaves, f"leaf {idx} reached twice"):
                continue
            seen_leaves.add(idx)
        else:
            if not report.check(0 <= idx < max(h.n_shallow_inner, 1), f"inner index {idx} out of range"):
                continue
            if not report.check(idx not in seen_inner, f"inner {idx} reached twice (cycle?)"):
                continue
            seen_inner.add(idx)
            stack.extend(bat.children(idx))
    report.check(
        seen_leaves == set(range(h.n_shallow_leaves)),
        f"unreachable shallow leaves: {sorted(set(range(h.n_shallow_leaves)) - seen_leaves)[:5]}",
    )

    # leaf records
    total_points = 0
    for k in range(h.n_shallow_leaves):
        rec = bat.shallow_leaves[k]
        report.check(
            int(rec["treelet_offset"]) % PAGE_SIZE == 0, f"treelet {k} not page aligned"
        )
        report.check(
            int(rec["treelet_offset"]) + int(rec["treelet_nbytes"]) <= h.file_size,
            f"treelet {k} extends past end of file",
        )
        total_points += int(rec["n_points"])
    report.check(
        total_points == h.n_points,
        f"leaf point counts sum to {total_points}, header says {h.n_points}",
    )

    # bitmap dictionary IDs in range
    for arr in (bat.shallow_inner, bat.shallow_leaves):
        if len(arr):
            ids = arr["bitmap_ids"]
            report.check(
                int(ids.max(initial=0)) < max(h.dict_entries, 1),
                "shallow-node bitmap ID exceeds dictionary",
            )

    if not deep:
        return

    for k in range(h.n_shallow_leaves):
        _validate_treelet(bat, k, report)


def _validate_treelet(bat: BATFile, leaf: int, report: ValidationReport) -> None:
    h = bat.header
    try:
        tv = bat.treelet(leaf)
    except Exception as exc:  # noqa: BLE001
        report.error(f"treelet {leaf}: cannot load ({exc})")
        return
    nodes = tv.nodes
    n = len(nodes)
    rec = bat.shallow_leaves[leaf]
    if not report.check(tv.n_points == int(rec["n_points"]), f"treelet {leaf}: point count mismatch"):
        return

    slots = np.zeros(tv.n_points, dtype=np.int64)
    for i in range(n):
        b, c, e = int(nodes[i]["begin"]), int(nodes[i]["count"]), int(nodes[i]["subtree_end"])
        if not report.check(
            b + c <= e <= tv.n_points, f"treelet {leaf} node {i}: bad slice [{b},{b + c},{e})"
        ):
            return
        slots[b : b + c] += 1
        if nodes[i]["axis"] >= 0:
            l, r = int(nodes[i]["left"]), int(nodes[i]["right"])
            if not report.check(i < l < n and i < r < n, f"treelet {leaf} node {i}: bad children"):
                return
            report.check(
                int(nodes[l]["begin"]) == b + c and int(nodes[r]["subtree_end"]) == e,
                f"treelet {leaf} node {i}: children do not tile subtree",
            )
            report.check(
                int(nodes[l]["depth"]) == int(nodes[i]["depth"]) + 1,
                f"treelet {leaf} node {i}: child depth not parent+1",
            )
            # bitmap containment: parent covers children
            for a in range(h.n_attrs):
                pb = bat.bitmap(int(nodes[i]["bitmap_ids"][a]))
                for child in (l, r):
                    cb = bat.bitmap(int(nodes[child]["bitmap_ids"][a]))
                    report.check(
                        pb & cb == cb,
                        f"treelet {leaf} node {i} attr {a}: child bitmap not contained",
                    )
    report.check(
        bool((slots == 1).all()), f"treelet {leaf}: node slices do not partition particles"
    )

    # particles inside leaf bbox (pad for float32 rounding / quantization)
    box = bat.leaf_box(leaf)
    ext = np.maximum(box.extents, 1e-6)
    lo = np.asarray(box.lower) - 1e-4 * ext
    hi = np.asarray(box.upper) + 1e-4 * ext
    inside = ((tv.positions >= lo.astype(np.float32)) & (tv.positions <= hi.astype(np.float32))).all()
    report.check(bool(inside), f"treelet {leaf}: particles outside leaf bounds")


def validate_dataset(metadata_path, deep: bool = False) -> ValidationReport:
    """Validate a manifest and every leaf file it references."""
    from ..core.metadata import DatasetMetadata

    metadata_path = Path(metadata_path)
    report = ValidationReport(path=str(metadata_path))
    try:
        meta = DatasetMetadata.load(metadata_path)
    except Exception as exc:  # noqa: BLE001
        report.error(f"cannot load metadata: {exc}")
        return report
    if meta.layout != "bat":
        report.warnings.append(f"layout {meta.layout!r}: only manifest checks performed")

    for leaf in meta.leaves:
        fpath = metadata_path.parent / leaf.file_name
        if not report.check(fpath.exists(), f"missing leaf file {leaf.file_name}"):
            continue
        if meta.layout != "bat":
            continue
        sub = validate_file(fpath, deep=deep)
        report.checks += sub.checks
        report.errors.extend(f"{leaf.file_name}: {e}" for e in sub.errors)
        if sub.ok:
            with BATFile(fpath) as f:
                report.check(
                    f.n_points == leaf.count,
                    f"{leaf.file_name}: manifest says {leaf.count} points, file has {f.n_points}",
                )
                report.check(
                    leaf.bounds.contains_box(f.bounds) or f.bounds.contains_box(leaf.bounds),
                    f"{leaf.file_name}: bounds disagree with manifest",
                )
                for name, (lo, hi) in f.attr_ranges.items():
                    glo, ghi = meta.attr_ranges.get(name, (None, None))
                    report.check(
                        glo is not None and glo <= lo and hi <= ghi,
                        f"{leaf.file_name}: attribute {name} range outside global range",
                    )
    return report
