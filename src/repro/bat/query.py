"""Visualization reads on a BAT file (paper §V).

Queries take a quality level, an optional bounding box, and a set of
attribute filters. Spatial pruning uses the k-d hierarchy (exact);
attribute pruning uses the binned bitmaps (conservative — a final
false-positive check is applied to every returned particle). Progressive
reads pass the previously fetched quality so only the increment is
processed.

Quality ∈ [0, 1] maps to a maximum treelet depth through a log remap:
the number of LOD particles doubles per level, so the remap
``e(q) = log2(1 + q·(2^(D+1) − 1))`` makes perceived quality progress
smoothly. A node at depth *d* is processed fully when ``d < floor(e)`` and
fractionally (a prefix of its particles) when ``d == floor(e)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..bitmaps import query_bitmap
from ..types import Box, ParticleBatch
from .file import BATFile

__all__ = ["AttributeFilter", "QueryStats", "quality_to_depth", "query_file"]


@dataclass(frozen=True)
class AttributeFilter:
    """Keep particles with ``lo <= value(name) <= hi``."""

    name: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"filter on {self.name!r} has hi < lo")


@dataclass
class QueryStats:
    """Work counters for one query; summed across files by dataset reads."""

    treelets_visited: int = 0
    nodes_visited: int = 0
    points_tested: int = 0
    points_returned: int = 0
    pruned_spatial: int = 0
    pruned_bitmap: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.treelets_visited += other.treelets_visited
        self.nodes_visited += other.nodes_visited
        self.points_tested += other.points_tested
        self.points_returned += other.points_returned
        self.pruned_spatial += other.pruned_spatial
        self.pruned_bitmap += other.pruned_bitmap

    @staticmethod
    def merge_ordered(indexed) -> "QueryStats":
        """Merge ``(file_index, stats)`` pairs in file-index order.

        Parallel dataset queries complete out of order; sorting before
        merging pins the merge sequence (and therefore any consumer that
        observes intermediate totals) to the file order, byte-for-byte
        identical to a serial run.
        """
        total = QueryStats()
        for _, s in sorted(indexed, key=lambda pair: pair[0]):
            total.merge(s)
        return total


def quality_to_depth(quality: float, max_depth: int) -> float:
    """Log-remapped effective depth ``e`` ∈ [0, max_depth+1] (see module doc)."""
    if not 0.0 <= quality <= 1.0:
        raise ValueError("quality must be in [0, 1]")
    levels = max_depth + 1
    if quality == 0.0:
        return 0.0
    e = math.log2(1.0 + quality * (2.0**levels - 1.0))
    return min(e, float(levels))


def _depth_fraction(depth: int, e: float) -> float:
    """Fraction of a depth-``depth`` node's own particles covered at ``e``."""
    fl = math.floor(e)
    if depth < fl:
        return 1.0
    if depth == fl:
        return e - fl
    return 0.0


@dataclass
class _QueryContext:
    box: Box | None
    filters: tuple[AttributeFilter, ...]
    qbitmaps: dict[str, int]
    e_prev: float
    e_new: float
    stats: QueryStats = field(default_factory=QueryStats)
    chunks_pos: list[np.ndarray] = field(default_factory=list)
    chunks_attr: dict[str, list[np.ndarray]] = field(default_factory=dict)
    callback: object = None
    #: names to materialize in the result; None = all
    attributes: tuple[str, ...] | None = None

    def select_attrs(self, attrs: dict) -> dict:
        if self.attributes is None:
            return attrs
        return {k: v for k, v in attrs.items() if k in self.attributes}

    def emit(self, positions: np.ndarray, attrs: dict[str, np.ndarray]) -> None:
        if len(positions) == 0:
            return
        self.stats.points_returned += len(positions)
        if self.callback is not None:
            self.callback(positions, attrs)
            return
        self.chunks_pos.append(np.asarray(positions))
        for name, arr in attrs.items():
            self.chunks_attr.setdefault(name, []).append(np.asarray(arr))


def query_file(
    bat: BATFile,
    quality: float = 1.0,
    prev_quality: float = 0.0,
    box: Box | None = None,
    filters: tuple[AttributeFilter, ...] | list[AttributeFilter] = (),
    callback=None,
    attributes: list[str] | None = None,
) -> tuple[ParticleBatch | None, QueryStats]:
    """Run one (progressive) visualization read against a BAT file.

    Returns ``(batch, stats)``; ``batch`` is ``None`` when a ``callback`` is
    given (the paper's API invokes a user callback for each point; here the
    callback receives chunked arrays for vectorization).

    ``attributes`` restricts which attribute arrays are materialized in the
    result — the array-per-attribute storage model means unrequested
    attributes are never touched (filter attributes are still read for the
    false-positive check but only returned if requested).
    """
    if prev_quality > quality:
        raise ValueError("prev_quality must be <= quality")
    if attributes is not None:
        for name in attributes:
            bat.attr_index(name)  # raises KeyError for unknown names
    filters = tuple(filters)
    qbitmaps: dict[str, int] = {}
    for f in filters:
        bat.attr_index(f.name)  # raises KeyError for unknown attributes
        binning = bat.binnings.get(f.name)
        if binning is not None:
            qbitmaps[f.name] = int(binning.query(f.lo, f.hi))
        else:
            lo, hi = bat.attr_ranges[f.name]
            qbitmaps[f.name] = int(query_bitmap(f.lo, f.hi, lo, hi))

    ctx = _QueryContext(
        box=box,
        filters=filters,
        qbitmaps=qbitmaps,
        e_prev=quality_to_depth(prev_quality, bat.max_treelet_depth),
        e_new=quality_to_depth(quality, bat.max_treelet_depth),
        callback=callback,
        attributes=tuple(attributes) if attributes is not None else None,
    )

    empty_filter = any(q == 0 for q in qbitmaps.values())
    root_prunes = box is not None and not bat.bounds.intersects(box)
    if not (empty_filter or root_prunes or ctx.e_new == 0.0):
        _traverse_shallow(bat, ctx)

    if callback is not None:
        return None, ctx.stats
    if not ctx.chunks_pos:
        specs = bat.attribute_specs()
        if attributes is not None:
            specs = [sp for sp in specs if sp.name in attributes]
        return ParticleBatch.empty(specs), ctx.stats
    positions = np.concatenate(ctx.chunks_pos, axis=0)
    attrs = {name: np.concatenate(parts) for name, parts in ctx.chunks_attr.items()}
    return ParticleBatch(positions, attrs), ctx.stats


def _bitmaps_prune(bat: BATFile, bitmap_ids, ctx: _QueryContext) -> bool:
    """True when the node's bitmaps prove no filter can match below it."""
    for f in ctx.filters:
        a = bat.attr_index(f.name)
        node_bm = bat.bitmap(int(bitmap_ids[a]))
        if node_bm & ctx.qbitmaps[f.name] == 0:
            return True
    return False


def _traverse_shallow(bat: BATFile, ctx: _QueryContext) -> None:
    root, root_is_leaf = bat.root()
    stack = [(root, root_is_leaf)]
    while stack:
        idx, is_leaf = stack.pop()
        ctx.stats.nodes_visited += 1
        rec = bat.shallow_leaves[idx] if is_leaf else bat.shallow_inner[idx]
        nb = rec["bbox"]
        node_box = Box(tuple(map(float, nb[:3])), tuple(map(float, nb[3:])))
        if ctx.box is not None and not node_box.intersects(ctx.box):
            ctx.stats.pruned_spatial += 1
            continue
        if ctx.filters and _bitmaps_prune(bat, rec["bitmap_ids"], ctx):
            ctx.stats.pruned_bitmap += 1
            continue
        if is_leaf:
            ctx.stats.treelets_visited += 1
            _traverse_treelet(bat, idx, node_box, ctx)
        else:
            stack.extend(bat.children(idx))


def _traverse_treelet(bat: BATFile, leaf: int, leaf_box: Box, ctx: _QueryContext) -> None:
    tv = bat.treelet(leaf)
    nodes = tv.nodes
    full_speed = (
        ctx.box is None or ctx.box.contains_box(leaf_box)
    ) and not ctx.filters and ctx.e_prev == 0.0 and ctx.e_new >= tv.max_depth + 1
    if full_speed:
        # Whole treelet requested at full quality: one contiguous emit.
        ctx.stats.nodes_visited += 1
        ctx.emit(tv.positions, ctx.select_attrs(tv.attributes))
        return

    stack: list[tuple[int, Box]] = [(0, leaf_box)]
    while stack:
        node_id, node_box = stack.pop()
        ctx.stats.nodes_visited += 1
        rec = nodes[node_id]
        if ctx.box is not None and not node_box.intersects(ctx.box):
            ctx.stats.pruned_spatial += 1
            continue
        if ctx.filters and _bitmaps_prune(bat, rec["bitmap_ids"], ctx):
            ctx.stats.pruned_bitmap += 1
            continue

        depth = int(rec["depth"])
        f0 = _depth_fraction(depth, ctx.e_prev)
        f1 = _depth_fraction(depth, ctx.e_new)
        begin = int(rec["begin"])
        count = int(rec["count"])
        # Rounded (not floored) so small nodes still contribute at low
        # quality; monotone in f, hits `count` exactly at f == 1.
        lo_slot = begin + int(f0 * count + 0.5)
        hi_slot = begin + int(f1 * count + 0.5)
        if hi_slot > lo_slot:
            _emit_points(tv, lo_slot, hi_slot, ctx)

        if rec["axis"] >= 0:
            ax = int(rec["axis"])
            pos = float(rec["split"])
            left_box, right_box = node_box.split(ax, pos)
            stack.append((int(rec["right"]), right_box))
            stack.append((int(rec["left"]), left_box))


def _emit_points(tv, lo_slot: int, hi_slot: int, ctx: _QueryContext) -> None:
    pos = tv.positions[lo_slot:hi_slot]
    ctx.stats.points_tested += len(pos)
    mask = None
    if ctx.box is not None:
        mask = ctx.box.contains_points(pos)
    for f in ctx.filters:
        vals = tv.attributes[f.name][lo_slot:hi_slot]
        fmask = (vals >= f.lo) & (vals <= f.hi)
        mask = fmask if mask is None else (mask & fmask)
    wanted = tv.attributes if ctx.attributes is None else {
        n: a for n, a in tv.attributes.items() if n in ctx.attributes
    }
    if mask is None:
        ctx.emit(pos, {n: a[lo_slot:hi_slot] for n, a in wanted.items()})
    elif mask.any():
        ctx.emit(
            pos[mask],
            {n: a[lo_slot:hi_slot][mask] for n, a in wanted.items()},
        )
