"""Visualization reads on a BAT file (paper §V).

Queries take a quality level, an optional bounding box, and a set of
attribute filters. Spatial pruning uses the k-d hierarchy (exact);
attribute pruning uses the binned bitmaps (conservative — a final
false-positive check is applied to every returned particle). Progressive
reads pass the previously fetched quality so only the increment is
processed.

Quality ∈ [0, 1] maps to a maximum treelet depth through a log remap:
the number of LOD particles doubles per level, so the remap
``e(q) = log2(1 + q·(2^(D+1) − 1))`` makes perceived quality progress
smoothly. A node at depth *d* is processed fully when ``d < floor(e)`` and
fractionally (a prefix of its particles) when ``d == floor(e)``.

Two traversal engines implement the same query semantics:

- ``"frontier"`` (default) — an iterative walk that batches every node at
  one depth into numpy arrays: box-overlap tests, bitmap dictionary
  lookups, and the quality-depth cutoff are evaluated array-wise, and each
  treelet's surviving particle ranges are gathered and emitted once. It
  also stops descending below ``floor(e_new)``, where no node can
  contribute particles.
- ``"recursive"`` — the original per-node stack walk, kept as the
  reference implementation; property tests pin the frontier engine's
  output to it byte for byte.

Both engines return identical batches and identical ``points_tested`` /
``points_returned`` / ``treelets_visited`` counters; ``nodes_visited`` and
the per-subtree prune counters can be lower for the frontier engine
because of its depth cutoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..bitmaps import query_bitmap
from ..errors import InvalidRequestError
from ..types import Box, ParticleBatch
from .file import BATFile
from .format import LEAF_FLAG

__all__ = [
    "AttributeFilter",
    "QueryStats",
    "ENGINES",
    "quality_to_depth",
    "quality_for_depth",
    "default_quality_ladder",
    "query_file",
    "FileIncrement",
    "stream_query_file",
]

#: available traversal engines, in preference order
ENGINES = ("frontier", "recursive")


@dataclass(frozen=True)
class AttributeFilter:
    """Keep particles with ``lo <= value(name) <= hi``."""

    name: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise InvalidRequestError(f"filter on {self.name!r} has hi < lo")


@dataclass
class QueryStats:
    """Work counters for one query; summed across files by dataset reads."""

    treelets_visited: int = 0
    nodes_visited: int = 0
    points_tested: int = 0
    points_returned: int = 0
    pruned_spatial: int = 0
    pruned_bitmap: int = 0
    #: leaf files the query planner skipped without opening them
    pruned_files: int = 0
    #: leaf files actually opened and traversed
    files_opened: int = 0
    #: leaf files skipped because they were corrupt or missing (degraded
    #: reads): both files quarantined during this query and files a prior
    #: query quarantined that the plan excluded up front
    quarantined_files: int = 0
    #: v4 column bytes materialized for this query (0 for v2/v3 files and
    #: for decoded-column-cache hits — it measures real decode work); set
    #: by the dataset layer from the handle's counter delta
    decoded_bytes: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.treelets_visited += other.treelets_visited
        self.nodes_visited += other.nodes_visited
        self.points_tested += other.points_tested
        self.points_returned += other.points_returned
        self.pruned_spatial += other.pruned_spatial
        self.pruned_bitmap += other.pruned_bitmap
        self.pruned_files += other.pruned_files
        self.files_opened += other.files_opened
        self.quarantined_files += other.quarantined_files
        self.decoded_bytes += other.decoded_bytes

    @staticmethod
    def merge_ordered(indexed) -> "QueryStats":
        """Merge ``(file_index, stats)`` pairs in file-index order.

        Parallel dataset queries complete out of order; sorting before
        merging pins the merge sequence (and therefore any consumer that
        observes intermediate totals) to the file order, byte-for-byte
        identical to a serial run.
        """
        total = QueryStats()
        for _, s in sorted(indexed, key=lambda pair: pair[0]):
            total.merge(s)
        return total


def quality_to_depth(quality: float, max_depth: int) -> float:
    """Log-remapped effective depth ``e`` ∈ [0, max_depth+1] (see module doc)."""
    if not 0.0 <= quality <= 1.0:
        raise InvalidRequestError("quality must be in [0, 1]")
    levels = max_depth + 1
    if quality == 0.0:
        return 0.0
    e = math.log2(1.0 + quality * (2.0**levels - 1.0))
    return min(e, float(levels))


def quality_for_depth(e: float, max_depth: int) -> float:
    """Inverse of :func:`quality_to_depth`: the quality whose effective
    depth is exactly ``e`` on a tree with ``max_depth`` treelet levels."""
    levels = max_depth + 1
    if e <= 0.0:
        return 0.0
    e = min(e, float(levels))
    return (2.0**e - 1.0) / (2.0**levels - 1.0)


def default_quality_ladder(
    quality: float, prev_quality: float = 0.0, levels: int = 8
) -> tuple[float, ...]:
    """Quality rungs for a streamed progressive read.

    Returns an ascending ladder ending exactly at ``quality``: one rung
    per frontier depth level of a nominal ``levels``-level tree, so each
    streamed increment roughly doubles the number of delivered particles
    (particle counts double per treelet depth). The ladder is a pure
    increment schedule — any ascending ladder ending at ``quality``
    reassembles to the same bytes — so ``levels`` needs only to be in the
    ballpark of the data's real treelet depth for the increments to line
    up with the frontier.
    """
    if not 0.0 <= prev_quality <= quality <= 1.0:
        raise InvalidRequestError("need 0 <= prev_quality <= quality <= 1")
    denom = 2.0**levels - 1.0
    rungs = [
        q
        for e in range(1, levels)
        if prev_quality < (q := (2.0**e - 1.0) / denom) < quality
    ]
    rungs.append(quality)
    return tuple(rungs)


def _depth_fraction(depth: int, e: float) -> float:
    """Fraction of a depth-``depth`` node's own particles covered at ``e``."""
    fl = math.floor(e)
    if depth < fl:
        return 1.0
    if depth == fl:
        return e - fl
    return 0.0


@dataclass
class _QueryContext:
    box: Box | None
    filters: tuple[AttributeFilter, ...]
    qbitmaps: dict[str, int]
    e_prev: float
    e_new: float
    stats: QueryStats = field(default_factory=QueryStats)
    chunks_pos: list[np.ndarray] = field(default_factory=list)
    chunks_attr: dict[str, list[np.ndarray]] = field(default_factory=dict)
    callback: object = None
    #: names to materialize in the result; None = all
    attributes: tuple[str, ...] | None = None
    #: False = column-projected read: positions are neither returned nor
    #: decoded (unless a box test still needs them)
    with_positions: bool = True

    def select_attrs(self, attrs) -> dict:
        # key-based so unselected lazy (v4) columns never decode
        if self.attributes is None:
            return {k: attrs[k] for k in attrs}
        return {k: attrs[k] for k in attrs if k in self.attributes}

    def emit(
        self,
        positions: np.ndarray | None,
        attrs: dict[str, np.ndarray],
        count: int | None = None,
    ) -> None:
        n = int(count) if positions is None else len(positions)
        if n == 0:
            return
        self.stats.points_returned += n
        if self.callback is not None:
            self.callback(positions, attrs)
            return
        if positions is not None:
            self.chunks_pos.append(np.asarray(positions))
        for name, arr in attrs.items():
            self.chunks_attr.setdefault(name, []).append(np.asarray(arr))


def query_file(
    bat: BATFile,
    quality: float = 1.0,
    prev_quality: float = 0.0,
    box: Box | None = None,
    filters: tuple[AttributeFilter, ...] | list[AttributeFilter] = (),
    callback=None,
    attributes: list[str] | None = None,
    engine: str = "frontier",
    with_positions: bool = True,
) -> tuple[ParticleBatch | None, QueryStats]:
    """Run one (progressive) visualization read against a BAT file.

    Returns ``(batch, stats)``; ``batch`` is ``None`` when a ``callback`` is
    given (the paper's API invokes a user callback for each point; here the
    callback receives chunked arrays for vectorization — the chunk
    granularity is an engine detail, per node for ``"recursive"`` and per
    treelet for ``"frontier"``).

    ``attributes`` restricts which attribute arrays are materialized in the
    result — the array-per-attribute storage model means unrequested
    attributes are never touched (filter attributes are still read for the
    false-positive check but only returned if requested).

    ``with_positions=False`` projects positions away too: the result batch
    carries ``positions=None`` plus a row count, and on column-encoded
    (v4) files the position block is only decoded where a box test still
    needs it. Callbacks then receive ``None`` as their positions argument.
    """
    if prev_quality > quality:
        raise InvalidRequestError("prev_quality must be <= quality")
    if engine not in ENGINES:
        raise InvalidRequestError(f"unknown traversal engine {engine!r} (choose from {ENGINES})")
    if attributes is not None:
        for name in attributes:
            bat.attr_index(name)  # raises KeyError for unknown names
    filters = tuple(filters)
    qbitmaps: dict[str, int] = {}
    for f in filters:
        bat.attr_index(f.name)  # raises KeyError for unknown attributes
        binning = bat.binnings.get(f.name)
        if binning is not None:
            qbitmaps[f.name] = int(binning.query(f.lo, f.hi))
        else:
            lo, hi = bat.attr_ranges[f.name]
            qbitmaps[f.name] = int(query_bitmap(f.lo, f.hi, lo, hi))

    ctx = _QueryContext(
        box=box,
        filters=filters,
        qbitmaps=qbitmaps,
        e_prev=quality_to_depth(prev_quality, bat.max_treelet_depth),
        e_new=quality_to_depth(quality, bat.max_treelet_depth),
        callback=callback,
        attributes=tuple(attributes) if attributes is not None else None,
        with_positions=bool(with_positions),
    )
    ctx.stats.files_opened = 1

    empty_filter = any(q == 0 for q in qbitmaps.values())
    root_prunes = box is not None and not bat.bounds.intersects(box)
    if not (empty_filter or root_prunes or ctx.e_new == 0.0):
        if engine == "recursive":
            _traverse_shallow(bat, ctx)
        else:
            _frontier_shallow(bat, ctx)

    if callback is not None:
        return None, ctx.stats
    if ctx.stats.points_returned == 0:
        specs = bat.attribute_specs()
        if attributes is not None:
            specs = [sp for sp in specs if sp.name in attributes]
        return ParticleBatch.empty(specs, with_positions=with_positions), ctx.stats
    attrs = {name: np.concatenate(parts) for name, parts in ctx.chunks_attr.items()}
    if not with_positions:
        return ParticleBatch(None, attrs, count=ctx.stats.points_returned), ctx.stats
    positions = np.concatenate(ctx.chunks_pos, axis=0)
    return ParticleBatch(positions, attrs), ctx.stats


# -- recursive engine (reference implementation) -----------------------------


def _bitmaps_prune(bat: BATFile, bitmap_ids, ctx: _QueryContext) -> bool:
    """True when the node's bitmaps prove no filter can match below it."""
    for f in ctx.filters:
        a = bat.attr_index(f.name)
        node_bm = bat.bitmap(int(bitmap_ids[a]))
        if node_bm & ctx.qbitmaps[f.name] == 0:
            return True
    return False


def _traverse_shallow(bat: BATFile, ctx: _QueryContext) -> None:
    root, root_is_leaf = bat.root()
    stack = [(root, root_is_leaf)]
    while stack:
        idx, is_leaf = stack.pop()
        ctx.stats.nodes_visited += 1
        rec = bat.shallow_leaves[idx] if is_leaf else bat.shallow_inner[idx]
        nb = rec["bbox"]
        node_box = Box(tuple(map(float, nb[:3])), tuple(map(float, nb[3:])))
        if ctx.box is not None and not node_box.intersects(ctx.box):
            ctx.stats.pruned_spatial += 1
            continue
        if ctx.filters and _bitmaps_prune(bat, rec["bitmap_ids"], ctx):
            ctx.stats.pruned_bitmap += 1
            continue
        if is_leaf:
            ctx.stats.treelets_visited += 1
            _traverse_treelet(bat, idx, node_box, ctx)
        else:
            stack.extend(bat.children(idx))


def _full_speed(tv, leaf_box: Box, ctx: _QueryContext) -> bool:
    """Whole treelet requested at full quality: one contiguous emit."""
    return (
        (ctx.box is None or ctx.box.contains_box(leaf_box))
        and not ctx.filters
        and ctx.e_prev == 0.0
        and ctx.e_new >= tv.max_depth + 1
    )


def _emit_full_treelet(tv, ctx: _QueryContext) -> None:
    """Emit a whole treelet (full-speed plan) decoding only what's needed.

    No box test runs here, so under column projection the node records and
    the position block are never touched — a one-column read decodes just
    that column.
    """
    ctx.stats.nodes_visited += 1
    attrs = ctx.select_attrs(tv.attributes)
    if ctx.with_positions:
        ctx.emit(tv.positions, attrs)
    else:
        ctx.emit(None, attrs, count=tv.n_points)


def _traverse_treelet(bat: BATFile, leaf: int, leaf_box: Box, ctx: _QueryContext) -> None:
    tv = bat.treelet(leaf)
    if _full_speed(tv, leaf_box, ctx):
        _emit_full_treelet(tv, ctx)
        return

    nodes = tv.nodes
    stack: list[tuple[int, Box]] = [(0, leaf_box)]
    while stack:
        node_id, node_box = stack.pop()
        ctx.stats.nodes_visited += 1
        rec = nodes[node_id]
        if ctx.box is not None and not node_box.intersects(ctx.box):
            ctx.stats.pruned_spatial += 1
            continue
        if ctx.filters and _bitmaps_prune(bat, rec["bitmap_ids"], ctx):
            ctx.stats.pruned_bitmap += 1
            continue

        depth = int(rec["depth"])
        f0 = _depth_fraction(depth, ctx.e_prev)
        f1 = _depth_fraction(depth, ctx.e_new)
        begin = int(rec["begin"])
        count = int(rec["count"])
        # Rounded (not floored) so small nodes still contribute at low
        # quality; monotone in f, hits `count` exactly at f == 1.
        lo_slot = begin + int(f0 * count + 0.5)
        hi_slot = begin + int(f1 * count + 0.5)
        if hi_slot > lo_slot:
            _emit_points(tv, lo_slot, hi_slot, ctx)

        if rec["axis"] >= 0:
            ax = int(rec["axis"])
            pos = float(rec["split"])
            left_box, right_box = node_box.split(ax, pos)
            stack.append((int(rec["right"]), right_box))
            stack.append((int(rec["left"]), left_box))


def _emit_points(tv, lo_slot: int, hi_slot: int, ctx: _QueryContext) -> None:
    n_sel = hi_slot - lo_slot
    ctx.stats.points_tested += n_sel
    # positions decode only when returned or needed for the box test
    pos = None
    if ctx.with_positions or ctx.box is not None:
        pos = tv.positions[lo_slot:hi_slot]
    mask = None
    if ctx.box is not None:
        mask = ctx.box.contains_points(pos)
    for f in ctx.filters:
        vals = tv.attributes[f.name][lo_slot:hi_slot]
        fmask = (vals >= f.lo) & (vals <= f.hi)
        mask = fmask if mask is None else (mask & fmask)
    if not ctx.with_positions:
        pos = None
    # selection is by key so lazily decoded (v4) columns outside the
    # requested set are never materialized
    names = [n for n in tv.attributes if ctx.attributes is None or n in ctx.attributes]
    if mask is None:
        ctx.emit(pos, {n: tv.attributes[n][lo_slot:hi_slot] for n in names}, count=n_sel)
    elif mask.any():
        ctx.emit(
            pos[mask] if pos is not None else None,
            {n: tv.attributes[n][lo_slot:hi_slot][mask] for n in names},
            count=int(mask.sum()),
        )


# -- frontier engine (vectorized) --------------------------------------------


def _frontier_keep(bat: BATFile, recs: np.ndarray, ctx: _QueryContext) -> np.ndarray:
    """Survivor mask for one frontier of shallow records (spatial + bitmap).

    Mirrors the recursive order of checks so the prune counters agree:
    spatial pruning is counted first, bitmap pruning only among the
    spatial survivors.
    """
    n = len(recs)
    keep = np.ones(n, dtype=bool)
    if ctx.box is not None:
        bb = recs["bbox"]
        lo, hi = bb[:, :3], bb[:, 3:]
        qlo = np.asarray(ctx.box.lower)
        qhi = np.asarray(ctx.box.upper)
        keep = np.all((lo <= qhi) & (hi >= qlo) & (lo <= hi), axis=1)
        ctx.stats.pruned_spatial += int(n - keep.sum())
    if ctx.filters:
        ok = np.ones(n, dtype=bool)
        ids = recs["bitmap_ids"]
        for f in ctx.filters:
            a = bat.attr_index(f.name)
            bms = bat.bitmaps_many(ids[:, a])
            ok &= (bms & np.uint32(ctx.qbitmaps[f.name])) != 0
        ctx.stats.pruned_bitmap += int((keep & ~ok).sum())
        keep &= ok
    return keep


def _frontier_survivor_leaves(bat: BATFile, ctx: _QueryContext) -> np.ndarray:
    """Surviving shallow leaves in stack-DFS visit order.

    Level-by-level walk of the shallow tree, one numpy pass per depth.
    Children sit exactly one level below their parents, so each frontier
    holds all surviving nodes of one depth. Surviving leaves are collected
    and re-ordered by the stack-DFS visit rank — pruning removes subtrees
    but never reorders the rest, so traversing the returned leaves in
    order matches the recursive engine's emission order exactly.
    """
    empty = np.empty(0, dtype=np.int64)
    root, root_is_leaf = bat.root()
    inner = empty if root_is_leaf else np.array([root], dtype=np.int64)
    leaves = np.array([root], dtype=np.int64) if root_is_leaf else empty
    found: list[np.ndarray] = []
    while inner.size or leaves.size:
        if leaves.size:
            ctx.stats.nodes_visited += len(leaves)
            keep = _frontier_keep(bat, bat.shallow_leaves[leaves], ctx)
            if keep.any():
                found.append(leaves[keep])
        if inner.size:
            ctx.stats.nodes_visited += len(inner)
            recs = bat.shallow_inner[inner]
            keep = _frontier_keep(bat, recs, ctx)
            srecs = recs[keep]
            raw = np.concatenate([srecs["left"], srecs["right"]]).astype(np.uint32)
            is_leaf = (raw & LEAF_FLAG) != 0
            child = (raw & ~LEAF_FLAG).astype(np.int64)
            inner, leaves = child[~is_leaf], child[is_leaf]
        else:
            inner = leaves = empty
    if not found:
        return empty
    hits = np.concatenate(found)
    rank = bat.shallow_leaf_visit_rank()
    return hits[np.argsort(rank[hits])]


def _frontier_shallow(bat: BATFile, ctx: _QueryContext) -> None:
    for leaf in _frontier_survivor_leaves(bat, ctx):
        ctx.stats.treelets_visited += 1
        _frontier_treelet(bat, int(leaf), bat.leaf_box(int(leaf)), ctx)


def _frontier_treelet(bat: BATFile, leaf: int, leaf_box: Box, ctx: _QueryContext) -> None:
    """Frontier walk of one treelet; surviving ranges gathered in one emit.

    Node boxes are carried alongside the frontier as (n, 3) float64 arrays
    and split vectorized; every node of a treelet level shares one depth,
    so the quality fractions are scalars per level. Descent stops below
    ``floor(e_new)`` — no deeper node can contribute particles.
    """
    tv = bat.treelet(leaf)
    if _full_speed(tv, leaf_box, ctx):
        _emit_full_treelet(tv, ctx)
        return

    nodes = tv.nodes
    fl_new = math.floor(ctx.e_new)
    qlo = qhi = None
    if ctx.box is not None:
        qlo = np.asarray(ctx.box.lower)
        qhi = np.asarray(ctx.box.upper)
    ids = np.zeros(1, dtype=np.int64)
    lo = np.asarray(leaf_box.lower, dtype=np.float64).reshape(1, 3)
    hi = np.asarray(leaf_box.upper, dtype=np.float64).reshape(1, 3)
    emit_ids: list[np.ndarray] = []
    emit_lo: list[np.ndarray] = []
    emit_hi: list[np.ndarray] = []
    depth = 0
    while ids.size:
        ctx.stats.nodes_visited += len(ids)
        recs = nodes[ids]
        keep = np.ones(len(ids), dtype=bool)
        if qlo is not None:
            keep = np.all((lo <= qhi) & (hi >= qlo) & (lo <= hi), axis=1)
            ctx.stats.pruned_spatial += int(len(ids) - keep.sum())
        if ctx.filters:
            ok = np.ones(len(ids), dtype=bool)
            for f in ctx.filters:
                a = bat.attr_index(f.name)
                bms = bat.bitmaps_many(recs["bitmap_ids"][:, a])
                ok &= (bms & np.uint32(ctx.qbitmaps[f.name])) != 0
            ctx.stats.pruned_bitmap += int((keep & ~ok).sum())
            keep &= ok

        f0 = _depth_fraction(depth, ctx.e_prev)
        f1 = _depth_fraction(depth, ctx.e_new)
        if f1 > f0 and keep.any():
            beg = recs["begin"][keep].astype(np.int64)
            cnt = recs["count"][keep].astype(np.int64)
            # Same rounding as the recursive engine: truncation of
            # f*count + 0.5 (values are non-negative).
            lo_slot = beg + (f0 * cnt + 0.5).astype(np.int64)
            hi_slot = beg + (f1 * cnt + 0.5).astype(np.int64)
            nz = hi_slot > lo_slot
            if nz.any():
                emit_ids.append(ids[keep][nz])
                emit_lo.append(lo_slot[nz])
                emit_hi.append(hi_slot[nz])

        if depth + 1 > fl_new:
            break
        desc = keep & (recs["axis"] >= 0)
        if not desc.any():
            break
        drecs = recs[desc]
        plo, phi = lo[desc], hi[desc]
        ax = drecs["axis"].astype(np.int64)
        sp = drecs["split"].astype(np.float64)
        rows = np.arange(len(drecs))
        lhi = phi.copy()
        lhi[rows, ax] = sp
        rlo = plo.copy()
        rlo[rows, ax] = sp
        ids = np.concatenate(
            [drecs["left"].astype(np.int64), drecs["right"].astype(np.int64)]
        )
        lo = np.concatenate([plo, rlo])
        hi = np.concatenate([lhi, phi])
        depth += 1

    if not emit_ids:
        return
    all_ids = np.concatenate(emit_ids)
    all_lo = np.concatenate(emit_lo)
    all_hi = np.concatenate(emit_hi)
    # Node ids are assigned in pre-order, which is exactly the recursive
    # engine's emission order (and ascending slot order, by construction
    # of the node-order particle layout).
    order = np.argsort(all_ids)
    _emit_ranges(tv, all_lo[order], all_hi[order], ctx)


def _concat_ranges(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenate ``[lo[i], hi[i])`` ranges into one index array, no loop."""
    lens = hi - lo
    nz = lens > 0
    if not nz.all():
        lo, hi, lens = lo[nz], hi[nz], lens[nz]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = lo[0]
    ends = np.cumsum(lens)[:-1]
    steps[ends] = lo[1:] - hi[:-1] + 1
    return np.cumsum(steps)


def _gather_rows(tv, lo_slot: np.ndarray, hi_slot: np.ndarray, ctx: _QueryContext):
    """Like :func:`_emit_ranges`, but return the rows with their slot keys.

    Returns ``(positions | None, attrs, slots, count)``; ``slots`` carries
    the node-order slot index of every returned row so a streamed read can
    be reassembled into the direct emission order (ascending slot within a
    treelet).
    """
    if (lo_slot[1:] == hi_slot[:-1]).all():
        sel: slice | np.ndarray = slice(int(lo_slot[0]), int(hi_slot[-1]))
        slots = np.arange(sel.start, sel.stop, dtype=np.int64)
        n_sel = sel.stop - sel.start
    else:
        sel = _concat_ranges(lo_slot, hi_slot)
        slots = sel
        n_sel = len(sel)
    ctx.stats.points_tested += n_sel
    pos = None
    if ctx.with_positions or ctx.box is not None:
        pos = tv.positions[sel]
    mask = None
    if ctx.box is not None:
        mask = ctx.box.contains_points(pos)
    for f in ctx.filters:
        vals = tv.attributes[f.name][sel]
        fmask = (vals >= f.lo) & (vals <= f.hi)
        mask = fmask if mask is None else (mask & fmask)
    if not ctx.with_positions:
        pos = None
    names = [n for n in tv.attributes if ctx.attributes is None or n in ctx.attributes]
    if mask is None:
        attrs = {n: tv.attributes[n][sel] for n in names}
        count = n_sel
    else:
        count = int(mask.sum())
        if count == 0:
            return None, {}, np.empty(0, dtype=np.int64), 0
        attrs = {n: tv.attributes[n][sel][mask] for n in names}
        pos = pos[mask] if pos is not None else None
        slots = slots[mask]
    ctx.stats.points_returned += count
    return pos, attrs, slots, count


def _emit_ranges(tv, lo_slot: np.ndarray, hi_slot: np.ndarray, ctx: _QueryContext) -> None:
    """Gather the surviving slot ranges of one treelet and emit them once.

    A single contiguous run (the common case for full-quality reads of a
    whole subtree) stays a zero-copy slice of the mapped file; fragmented
    ranges gather through one fancy-index pass.
    """
    if (lo_slot[1:] == hi_slot[:-1]).all():
        sel: slice | np.ndarray = slice(int(lo_slot[0]), int(hi_slot[-1]))
        n_sel = sel.stop - sel.start
    else:
        sel = _concat_ranges(lo_slot, hi_slot)
        n_sel = len(sel)
    ctx.stats.points_tested += n_sel
    # positions decode only when returned or needed for the box test
    pos = None
    if ctx.with_positions or ctx.box is not None:
        pos = tv.positions[sel]
    mask = None
    if ctx.box is not None:
        mask = ctx.box.contains_points(pos)
    for f in ctx.filters:
        vals = tv.attributes[f.name][sel]
        fmask = (vals >= f.lo) & (vals <= f.hi)
        mask = fmask if mask is None else (mask & fmask)
    if not ctx.with_positions:
        pos = None
    # selection is by key so lazily decoded (v4) columns outside the
    # requested set are never materialized
    names = [n for n in tv.attributes if ctx.attributes is None or n in ctx.attributes]
    if mask is None:
        ctx.emit(pos, {n: tv.attributes[n][sel] for n in names}, count=n_sel)
    elif mask.any():
        ctx.emit(
            pos[mask] if pos is not None else None,
            {n: tv.attributes[n][sel][mask] for n in names},
            count=int(mask.sum()),
        )


# -- streaming frontier engine ------------------------------------------------


@dataclass
class FileIncrement:
    """Rows one quality rung of a streamed file read adds.

    ``treelet_rank`` and ``slots`` are per-row order keys: stably sorting
    the concatenation of a file's increments by ``(treelet_rank, slot)``
    reproduces the direct synchronous emission order byte for byte —
    treelets emit in visit-rank order, and within a treelet node ids are
    assigned pre-order, which is ascending slot order by construction of
    the node-order particle layout.
    """

    quality: float
    prev_quality: float
    positions: np.ndarray | None
    attributes: dict[str, np.ndarray]
    count: int
    treelet_rank: np.ndarray
    slots: np.ndarray


class _TreeletStream:
    """Stateful frontier walk of one treelet, advanced one rung at a time.

    Spatial and bitmap pruning are quality-independent, so each depth's
    survivors are computed once and cached; a rung only extends the
    descent when its effective depth reaches below every prior rung's.
    Per-rung emission then reads the cached ``(ids, begin, count)``
    survivor arrays, with the same monotone slot-range rounding as the
    one-shot engines — consecutive rungs chain with no gap and no overlap.
    """

    __slots__ = ("tv", "_sv", "_fr_ids", "_fr_lo", "_fr_hi")

    def __init__(self, bat: BATFile, leaf: int, leaf_box: Box) -> None:
        self.tv = bat.treelet(leaf)
        #: per-depth survivors: (node ids, begin, count) int64 triples
        self._sv: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._fr_ids = np.zeros(1, dtype=np.int64)
        self._fr_lo = np.asarray(leaf_box.lower, dtype=np.float64).reshape(1, 3)
        self._fr_hi = np.asarray(leaf_box.upper, dtype=np.float64).reshape(1, 3)

    def _extend(self, bat: BATFile, ctx: _QueryContext, upto: int) -> None:
        """Grow the cached survivor levels through depth ``upto``."""
        nodes = self.tv.nodes
        qlo = qhi = None
        if ctx.box is not None:
            qlo = np.asarray(ctx.box.lower)
            qhi = np.asarray(ctx.box.upper)
        while self._fr_ids.size and len(self._sv) <= upto:
            ids, lo, hi = self._fr_ids, self._fr_lo, self._fr_hi
            ctx.stats.nodes_visited += len(ids)
            recs = nodes[ids]
            keep = np.ones(len(ids), dtype=bool)
            if qlo is not None:
                keep = np.all((lo <= qhi) & (hi >= qlo) & (lo <= hi), axis=1)
                ctx.stats.pruned_spatial += int(len(ids) - keep.sum())
            if ctx.filters:
                ok = np.ones(len(ids), dtype=bool)
                for f in ctx.filters:
                    a = bat.attr_index(f.name)
                    bms = bat.bitmaps_many(recs["bitmap_ids"][:, a])
                    ok &= (bms & np.uint32(ctx.qbitmaps[f.name])) != 0
                ctx.stats.pruned_bitmap += int((keep & ~ok).sum())
                keep &= ok
            srecs = recs[keep]
            self._sv.append(
                (
                    ids[keep],
                    srecs["begin"].astype(np.int64),
                    srecs["count"].astype(np.int64),
                )
            )
            desc = keep & (recs["axis"] >= 0)
            if not desc.any():
                self._fr_ids = np.empty(0, dtype=np.int64)
                continue
            drecs = recs[desc]
            plo, phi = lo[desc], hi[desc]
            ax = drecs["axis"].astype(np.int64)
            sp = drecs["split"].astype(np.float64)
            rows = np.arange(len(drecs))
            lhi = phi.copy()
            lhi[rows, ax] = sp
            rlo = plo.copy()
            rlo[rows, ax] = sp
            self._fr_ids = np.concatenate(
                [drecs["left"].astype(np.int64), drecs["right"].astype(np.int64)]
            )
            self._fr_lo = np.concatenate([plo, rlo])
            self._fr_hi = np.concatenate([lhi, phi])

    def rung(self, bat: BATFile, ctx: _QueryContext, e_lo: float, e_hi: float):
        """Rows this treelet adds between effective depths ``e_lo → e_hi``."""
        fl_hi = math.floor(e_hi)
        self._extend(bat, ctx, fl_hi)
        parts_ids: list[np.ndarray] = []
        parts_lo: list[np.ndarray] = []
        parts_hi: list[np.ndarray] = []
        for d in range(math.floor(e_lo), min(fl_hi, len(self._sv) - 1) + 1):
            ids, beg, cnt = self._sv[d]
            if not ids.size:
                continue
            f0 = _depth_fraction(d, e_lo)
            f1 = _depth_fraction(d, e_hi)
            if f1 <= f0:
                continue
            lo_slot = beg + (f0 * cnt + 0.5).astype(np.int64)
            hi_slot = beg + (f1 * cnt + 0.5).astype(np.int64)
            nz = hi_slot > lo_slot
            if nz.any():
                parts_ids.append(ids[nz])
                parts_lo.append(lo_slot[nz])
                parts_hi.append(hi_slot[nz])
        if not parts_ids:
            return None, {}, np.empty(0, dtype=np.int64), 0
        order = np.argsort(np.concatenate(parts_ids))
        return _gather_rows(
            self.tv,
            np.concatenate(parts_lo)[order],
            np.concatenate(parts_hi)[order],
            ctx,
        )


def stream_query_file(
    bat: BATFile,
    ladder,
    prev_quality: float = 0.0,
    box: Box | None = None,
    filters: tuple[AttributeFilter, ...] | list[AttributeFilter] = (),
    attributes: list[str] | None = None,
    with_positions: bool = True,
    stats: QueryStats | None = None,
):
    """Stream one file's (progressive) read as per-rung increments.

    ``ladder`` is a non-descending sequence of qualities starting above
    ``prev_quality`` and ending at the target quality (see
    :func:`default_quality_ladder`). Exactly one :class:`FileIncrement` is
    yielded per rung — possibly empty. Two invariants hold, both inherited
    from the monotone slot-range rounding shared with the one-shot
    engines:

    - *Reassembly*: the concatenation of all increments, stably sorted by
      ``(treelet_rank, slot)``, is byte-identical to
      ``query_file(bat, ladder[-1], prev_quality, ...)``.
    - *Truncation*: stopping after rung *k* leaves exactly the rows of a
      direct query at quality ``ladder[k]`` — rung ranges chain with no
      overlap and no gap, so a shed or abandoned stream is a valid
      lower-quality result, refinable later from ``prev_quality =
      ladder[k]``.

    ``stats`` may pass a caller-owned :class:`QueryStats` to accumulate
    into (the dataset layer shares one across a stream's files); work
    counters advance as rungs are consumed. After the final rung,
    ``points_returned`` and the prune counters equal a direct one-shot
    query's; ``points_tested``/``nodes_visited`` can be higher where the
    one-shot engines take the whole-treelet fast path a rung-split read
    cannot.
    """
    ladder = tuple(float(q) for q in ladder)
    if not ladder:
        raise InvalidRequestError("ladder must have at least one rung")
    lo = prev_quality
    for q in ladder:
        if not lo <= q <= 1.0:
            raise InvalidRequestError(
                "ladder must be non-descending within [prev_quality, 1]"
            )
        lo = q
    if attributes is not None:
        for name in attributes:
            bat.attr_index(name)  # raises KeyError for unknown names
    filters = tuple(filters)
    qbitmaps: dict[str, int] = {}
    for f in filters:
        bat.attr_index(f.name)  # raises KeyError for unknown attributes
        binning = bat.binnings.get(f.name)
        if binning is not None:
            qbitmaps[f.name] = int(binning.query(f.lo, f.hi))
        else:
            alo, ahi = bat.attr_ranges[f.name]
            qbitmaps[f.name] = int(query_bitmap(f.lo, f.hi, alo, ahi))

    ctx = _QueryContext(
        box=box,
        filters=filters,
        qbitmaps=qbitmaps,
        e_prev=quality_to_depth(prev_quality, bat.max_treelet_depth),
        e_new=quality_to_depth(ladder[-1], bat.max_treelet_depth),
        attributes=tuple(attributes) if attributes is not None else None,
        with_positions=bool(with_positions),
    )
    if stats is not None:
        ctx.stats = stats
    ctx.stats.files_opened += 1

    empty_filter = any(q == 0 for q in qbitmaps.values())
    root_prunes = box is not None and not bat.bounds.intersects(box)
    streams: list[_TreeletStream] = []
    if not (empty_filter or root_prunes or ctx.e_new == 0.0):
        for leaf in _frontier_survivor_leaves(bat, ctx):
            ctx.stats.treelets_visited += 1
            streams.append(_TreeletStream(bat, int(leaf), bat.leaf_box(int(leaf))))

    specs = bat.attribute_specs()
    if attributes is not None:
        specs = [sp for sp in specs if sp.name in attributes]
    prev = prev_quality
    for q in ladder:
        e_lo = quality_to_depth(prev, bat.max_treelet_depth)
        e_hi = quality_to_depth(q, bat.max_treelet_depth)
        pos_parts: list[np.ndarray] = []
        slot_parts: list[np.ndarray] = []
        rank_parts: list[np.ndarray] = []
        attr_parts: dict[str, list[np.ndarray]] = {sp.name: [] for sp in specs}
        total = 0
        if e_hi > e_lo:
            for rank, ts in enumerate(streams):
                pos, attrs, slots, count = ts.rung(bat, ctx, e_lo, e_hi)
                if not count:
                    continue
                total += count
                if pos is not None:
                    pos_parts.append(pos)
                for name, arr in attrs.items():
                    attr_parts[name].append(arr)
                slot_parts.append(slots)
                rank_parts.append(np.full(count, rank, dtype=np.int64))
        if total == 0:
            yield FileIncrement(
                quality=q,
                prev_quality=prev,
                positions=np.empty((0, 3), dtype=np.float32) if with_positions else None,
                attributes={sp.name: np.empty(0, dtype=sp.dtype) for sp in specs},
                count=0,
                treelet_rank=np.empty(0, dtype=np.int64),
                slots=np.empty(0, dtype=np.int64),
            )
        else:
            yield FileIncrement(
                quality=q,
                prev_quality=prev,
                positions=(
                    np.concatenate(pos_parts, axis=0) if with_positions else None
                ),
                attributes={
                    name: np.concatenate(parts) for name, parts in attr_parts.items()
                },
                count=total,
                treelet_rank=np.concatenate(rank_parts),
                slots=np.concatenate(slot_parts),
            )
        prev = q
