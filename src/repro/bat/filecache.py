"""Bounded LRU cache of open :class:`BATFile` handles.

Repeated dataset and time-series queries touch the same leaf files over
and over; re-opening them per query costs an ``open``/``mmap``/header
parse each time, and keeping every handle open forever runs a long
time-series session into the file-descriptor limit. The cache bounds the
number of simultaneously open files and closes the least-recently-used
handle on eviction (safe even with outstanding numpy views — see
:meth:`BATFile.close`).

One cache can back several :class:`~repro.core.dataset.BATDataset`
instances (a :class:`~repro.core.timeseries.TimeSeriesDataset` shares one
across all its steps), so the bound applies to the session, not to each
timestep separately.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

from .colcache import DEFAULT_COLUMN_CACHE_BYTES, DecodedColumnCache
from .file import BATFile

__all__ = ["BATFileCache", "DEFAULT_CAPACITY"]

#: default maximum number of simultaneously open leaf files
DEFAULT_CAPACITY = 64


class BATFileCache:
    """LRU-bounded pool of open, memory-mapped BAT files.

    Thread-safe: the serve layer's scheduler workers share one cache
    across every session, so lookup, insert, and eviction are guarded by
    a lock (process-parallel query paths still open their own handles
    inside worker tasks — see :mod:`repro.core.dataset` — the cache
    serves the serial and threaded paths). Eviction may close a handle
    another thread is still reading through an outstanding numpy view;
    that is safe — see :meth:`BATFile.close`.

    The hit/miss/eviction counters feed the serve metrics surface
    (:meth:`stats`), so they must stay exact under concurrency.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        column_cache_bytes: int = DEFAULT_COLUMN_CACHE_BYTES,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.RLock()
        self._open: OrderedDict[str, BATFile] = OrderedDict()
        #: decoded-column tier shared by every handle this cache opens;
        #: a zero budget disables it (handles decode cold every time)
        self.column_cache = (
            DecodedColumnCache(column_cache_bytes) if column_cache_bytes > 0 else None
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: opens that raised (missing or corrupt file) — nothing is cached
        #: for a failed open, so retries re-attempt the open
        self.open_errors = 0
        #: cached handles found pointing at replaced bytes (the path was
        #: atomically republished since the open) and reopened fresh
        self.stale_reopens = 0
        #: column bytes decoded by handles already evicted or dropped;
        #: :meth:`stats` adds the live handles' counters on top
        self._retired_decoded_bytes = 0
        #: path -> lease count; leased handles are never closed by
        #: eviction or :meth:`drop` (streamed reads hold treelet state
        #: across rungs, and a closed handle nulls its section arrays)
        self._pins: dict[str, int] = {}
        #: handles dropped while leased: closed on last release
        self._deferred: dict[str, list[BATFile]] = {}

    def _retire(self, f: BATFile) -> None:
        """Account for a handle leaving the cache and drop its columns.

        Column entries are invalidated because the path may be *rewritten*
        before it is next opened (the writer's atomic replace) — decoded
        columns must never outlive the handle that produced them.
        """
        self._retired_decoded_bytes += f.decoded_bytes
        if self.column_cache is not None:
            self.column_cache.invalidate(f.cache_key)

    @staticmethod
    def _is_stale(f: BATFile, key: str) -> bool:
        """True when ``key`` no longer names the bytes ``f`` has mapped.

        An atomic republish (``os.replace``) lands a new inode; an
        in-place rewrite changes size or mtime_ns. A vanished path also
        counts as stale — the reopen attempt surfaces the real error.
        In-memory handles (``from_bytes``) have no signature and are
        never stale.
        """
        if f.stat_signature is None:
            return False
        try:
            st = os.stat(key)
        except OSError:
            return True
        return (st.st_mtime_ns, st.st_size, st.st_ino) != f.stat_signature

    def _discard_stale(self, key: str, f: BATFile) -> None:
        """Forget a stale handle (close deferred while the path is leased).

        A lease pins the *handle generation* a stream started on: the
        stream keeps reading the old mapping until its lease releases,
        while the cache entry is replaced so new requests see new bytes.
        """
        self._open.pop(key, None)
        self._retire(f)
        if key in self._pins:
            self._deferred.setdefault(key, []).append(f)
        else:
            f.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._open)

    def get(self, path) -> BATFile:
        """Return an open handle for ``path``, opening and caching on miss."""
        key = str(Path(path))
        with self._lock:
            f = self._open.get(key)
            if f is not None:
                if self._is_stale(f, key):
                    # the path was replaced since this handle opened:
                    # serving its mmap would return the *old* file's bytes
                    self.stale_reopens += 1
                    self._discard_stale(key, f)
                else:
                    self.hits += 1
                    self._open.move_to_end(key)
                    return f
            self.misses += 1
            try:
                f = BATFile(key)
            except Exception:
                self.open_errors += 1
                raise
            f.column_cache = self.column_cache
            self._open[key] = f
            while len(self._open) > self.capacity:
                # leased handles are skipped: a streamed read may hold
                # treelet state in them for many rungs. The cache can
                # transiently exceed capacity while leases are out; the
                # bound resumes once they release.
                victim_key = next(
                    (k for k in self._open if k not in self._pins), None
                )
                if victim_key is None:
                    break
                victim = self._open.pop(victim_key)
                self._retire(victim)
                victim.close()
                self.evictions += 1
            return f

    def peek(self, path) -> BATFile | None:
        """Return the cached handle for ``path`` without opening on miss.

        Does not count as a hit or miss and does not touch LRU order —
        used by callers that merely want metadata from an already-open
        file and must not fault planner-skipped files into the cache. A
        stale handle (path replaced since open) is discarded, not
        returned: peek answers "what is at this path", never "what used
        to be".
        """
        with self._lock:
            key = str(Path(path))
            f = self._open.get(key)
            if f is not None and self._is_stale(f, key):
                self._discard_stale(key, f)
                return None
            return f

    def drop(self, path) -> None:
        """Close and forget one path, if cached.

        A leased handle is forgotten (and its decoded columns invalidated
        — the path may be rewritten) but its close is deferred to the
        last lease release, so streams in flight keep a valid handle.
        """
        with self._lock:
            key = str(Path(path))
            f = self._open.pop(key, None)
            if f is not None:
                self._retire(f)
                if key in self._pins:
                    self._deferred.setdefault(key, []).append(f)
                    f = None
        if f is not None:
            f.close()

    @contextmanager
    def lease(self, paths):
        """Keep handles for ``paths`` open for the duration of the block.

        Streamed reads (:meth:`BATDataset.stream`) hold per-treelet state
        referencing a handle's section arrays across quality rungs; a
        lease prevents eviction (or a concurrent :meth:`drop`) from
        closing those handles mid-stream. Leases nest and are counted per
        path; they pin only handles, not cache *entries* — lookups and
        LRU order behave as usual.
        """
        keys = [str(Path(p)) for p in paths]
        with self._lock:
            for k in keys:
                self._pins[k] = self._pins.get(k, 0) + 1
        try:
            yield
        finally:
            victims: list[BATFile] = []
            with self._lock:
                for k in keys:
                    n = self._pins[k] - 1
                    if n:
                        self._pins[k] = n
                    else:
                        del self._pins[k]
                        victims.extend(self._deferred.pop(k, ()))
            for f in victims:
                f.close()

    def stats(self) -> dict:
        """Counter snapshot for the serve metrics surface."""
        with self._lock:
            total = self.hits + self.misses
            decoded = self._retired_decoded_bytes + sum(
                f.decoded_bytes for f in self._open.values()
            )
            out = {
                "open": len(self._open),
                "capacity": self.capacity,
                "leased": len(self._pins),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "open_errors": self.open_errors,
                "stale_reopens": self.stale_reopens,
                "hit_rate": self.hits / total if total else 0.0,
                #: column bytes materialized through this cache's handles —
                #: the v4 decode-skipping story in one number
                "decoded_bytes": decoded,
            }
            if self.column_cache is not None:
                out["decoded_columns"] = self.column_cache.stats()
            return out

    def close(self) -> None:
        """Close every cached handle (leases do not survive a close)."""
        with self._lock:
            victims = list(self._open.values())
            self._open.clear()
            for f in victims:
                self._retire(f)
            for deferred in self._deferred.values():
                victims.extend(deferred)
            self._deferred.clear()
            self._pins.clear()
        for f in victims:
            f.close()

    def __enter__(self) -> "BATFileCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BATFileCache(open={len(self._open)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
