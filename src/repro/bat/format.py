"""On-disk BAT file format (paper §III-C3, Fig 2).

Layout, in file order::

    header (256 B, fixed)
    attribute table          (64 B per attribute)
    shallow inner nodes      (structured records)
    shallow leaf nodes       (structured records, treelet offsets)
    bitmap dictionary        (u32 per entry)
    -- pad to 4 KB --
    treelet 0 (4 KB aligned) : treelet header | nodes | positions | attrs...
    treelet 1 (4 KB aligned)
    ...

Everything frequently touched during traversal (tree + dictionary) sits at
the start of the file; treelets are page-aligned for memory-mapped access.
All integers are little-endian.

Version 3 appends a checksum footer after the last treelet::

    footer magic "BATC" | footer version | n_treelets
    CRC32 per metadata section (header, attr table, shallow inner,
        shallow leaves, dictionary, binning)
    CRC32 per treelet block
    whole-file digest (CRC32 of every byte before the footer)
    footer CRC32

and stores a self-contained header CRC32 in the header's last four bytes,
so a flipped bit in the header itself is caught before any offset in it is
trusted. Version-2 files (no checksums) remain readable.

Version 4 re-encodes each treelet column-by-column. The treelet block
becomes::

    treelet header (16 B, raw_nbytes = decoded payload size)
    column directory: 48 B per column for nodes, positions, attr 0..N-1
        (codec id | encoded bytes | raw bytes | two f8 codec params)
    encoded column payloads, back to back

The directory sits inside the treelet block, so the existing per-treelet
footer CRCs cover codec ids and sizes with no new trust machinery. Codecs
live in :mod:`repro.bat.codecs`; v2/v3 files remain readable.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import IntegrityError

__all__ = [
    "MAGIC",
    "VERSION",
    "LEGACY_VERSION",
    "CHECKSUM_VERSION",
    "CODEC_VERSION",
    "SUPPORTED_VERSIONS",
    "column_dir_dtype",
    "HEADER_SIZE",
    "PAGE_SIZE",
    "Header",
    "Footer",
    "METADATA_SECTIONS",
    "footer_size",
    "pack_footer",
    "unpack_footer",
    "attr_table_dtype",
    "shallow_inner_dtype",
    "shallow_leaf_dtype",
    "treelet_node_dtype",
    "treelet_header_dtype",
    "LEAF_FLAG",
]

MAGIC = b"BATF"
#: default write version: checksummed, raw columns (byte-identical to PR 4)
VERSION = 3
#: first version with the checksum footer / header self-CRC
CHECKSUM_VERSION = 3
#: first version with per-column codecs (treelet column directory)
CODEC_VERSION = 4
#: last pre-checksum version; still readable, no integrity verification
LEGACY_VERSION = 2
SUPPORTED_VERSIONS = (LEGACY_VERSION, VERSION, CODEC_VERSION)
HEADER_SIZE = 256
PAGE_SIZE = 4096
#: the header CRC32 covers bytes [0, HEADER_CRC_OFFSET) and is stored
#: little-endian in the header's final four bytes (version >= 3)
HEADER_CRC_OFFSET = HEADER_SIZE - 4

#: High bit of a shallow inner node's child field: set when the child is a
#: shallow *leaf* index rather than another inner node.
LEAF_FLAG = np.uint32(0x80000000)

#: header flag: treelet positions stored as uint16 quantized against the
#: shallow leaf's bounding box (6 B/particle instead of 12 B) — the §VII
#: quantization extension; lossy to ~1/65535 of the leaf extent.
FLAG_QUANTIZED_POSITIONS = 0x1
#: header flag: each treelet's payload (nodes + positions + attributes) is
#: zlib-compressed — the §VII compression extension; treelets decompress on
#: first access instead of mapping in place.
FLAG_COMPRESSED_TREELETS = 0x2
#: header flag: treelets carry a per-column codec directory (version >= 4);
#: columns decode independently, and only when a query touches them.
FLAG_COLUMN_CODECS = 0x4

_HEADER_FMT = "<4sI Q IIIIII III 6d 9Q"
_HEADER_FIELDS = struct.calcsize(_HEADER_FMT)
assert _HEADER_FIELDS <= HEADER_CRC_OFFSET


@dataclass
class Header:
    """Parsed fixed-size file header."""

    n_points: int
    n_attrs: int
    morton_bits: int
    subprefix_bits: int
    lod_per_node: int
    max_leaf_points: int
    n_shallow_inner: int
    n_shallow_leaves: int
    dict_entries: int
    max_treelet_depth: int
    bounds: np.ndarray  # (2, 3) float64 local bounds
    attr_table_offset: int
    shallow_inner_offset: int
    shallow_leaf_offset: int
    dict_offset: int
    treelets_offset: int
    file_size: int
    #: FLAG_* bits
    flags: int = 0
    #: offset of the binning section (per-attr kind bytes + edge tables);
    #: 0 when the file has no attributes
    binning_offset: int = 0
    #: offset of the checksum footer; 0 in legacy (version-2) files
    footer_offset: int = 0
    #: on-disk format version this header was read from / will pack as
    version: int = field(default=VERSION, compare=False)

    def pack(self) -> bytes:
        b = self.bounds.reshape(6)
        raw = struct.pack(
            _HEADER_FMT,
            MAGIC,
            self.version,
            self.n_points,
            self.n_attrs,
            self.morton_bits,
            self.subprefix_bits,
            self.lod_per_node,
            self.max_leaf_points,
            self.n_shallow_inner,
            self.n_shallow_leaves,
            self.dict_entries,
            self.max_treelet_depth,
            *b.tolist(),
            self.attr_table_offset,
            self.shallow_inner_offset,
            self.shallow_leaf_offset,
            self.dict_offset,
            self.treelets_offset,
            self.file_size,
            self.flags,
            self.binning_offset,
            self.footer_offset,
        )
        out = bytearray(raw.ljust(HEADER_SIZE, b"\0"))
        if self.version >= CHECKSUM_VERSION:
            crc = zlib.crc32(bytes(out[:HEADER_CRC_OFFSET]))
            out[HEADER_CRC_OFFSET:HEADER_SIZE] = struct.pack("<I", crc)
        return bytes(out)

    @staticmethod
    def unpack(raw: bytes) -> "Header":
        if len(raw) < HEADER_SIZE:
            raise IntegrityError("not a BAT file (truncated BAT header)", section="header")
        vals = struct.unpack(_HEADER_FMT, raw[:_HEADER_FIELDS])
        magic, version = vals[0], vals[1]
        if magic != MAGIC:
            raise IntegrityError(f"not a BAT file (magic {magic!r})", section="header")
        if version not in SUPPORTED_VERSIONS:
            raise IntegrityError(f"unsupported BAT version {version}", section="header")
        if version >= CHECKSUM_VERSION:
            # the header carries its own CRC so none of its offsets are
            # trusted (e.g. to find the footer) if the header itself is bad
            (stored,) = struct.unpack_from("<I", raw, HEADER_CRC_OFFSET)
            actual = zlib.crc32(bytes(raw[:HEADER_CRC_OFFSET]))
            if stored != actual:
                raise IntegrityError(
                    f"BAT header checksum mismatch "
                    f"(stored {stored:#010x}, computed {actual:#010x})",
                    section="header",
                )
        bounds = np.array(vals[12:18], dtype=np.float64).reshape(2, 3)
        return Header(
            n_points=vals[2],
            n_attrs=vals[3],
            morton_bits=vals[4],
            subprefix_bits=vals[5],
            lod_per_node=vals[6],
            max_leaf_points=vals[7],
            n_shallow_inner=vals[8],
            n_shallow_leaves=vals[9],
            dict_entries=vals[10],
            max_treelet_depth=vals[11],
            bounds=bounds,
            attr_table_offset=vals[18],
            shallow_inner_offset=vals[19],
            shallow_leaf_offset=vals[20],
            dict_offset=vals[21],
            treelets_offset=vals[22],
            file_size=vals[23],
            flags=vals[24],
            binning_offset=vals[25],
            footer_offset=vals[26],
            version=version,
        )

    def section_extents(self) -> dict[str, tuple[int, int]]:
        """(offset, nbytes) of every metadata section, in file order.

        Sizes are derived from the counts in the header, so the extents are
        only meaningful once the header itself has been validated.
        """
        n_attrs = self.n_attrs
        binning_nbytes = (
            pad_to(max(n_attrs, 1), 8) + n_attrs * 33 * 8 if self.binning_offset else 0
        )
        return {
            "header": (0, HEADER_SIZE),
            "attr_table": (self.attr_table_offset, n_attrs * attr_table_dtype().itemsize),
            "shallow_inner": (
                self.shallow_inner_offset,
                self.n_shallow_inner * shallow_inner_dtype(n_attrs).itemsize,
            ),
            "shallow_leaves": (
                self.shallow_leaf_offset,
                self.n_shallow_leaves * shallow_leaf_dtype(n_attrs).itemsize,
            ),
            "dictionary": (self.dict_offset, self.dict_entries * 4),
            "binning": (self.binning_offset, binning_nbytes),
        }


def attr_table_dtype() -> np.dtype:
    """64-byte attribute descriptor: name, numpy dtype string, local range."""
    return np.dtype(
        [("name", "S40"), ("dtype", "S8"), ("lo", "<f8"), ("hi", "<f8")]
    )


def shallow_inner_dtype(n_attrs: int) -> np.dtype:
    """Shallow (Karras) inner node: children, bbox, per-attr bitmap IDs."""
    return np.dtype(
        [
            ("left", "<u4"),
            ("right", "<u4"),
            ("bbox", "<f4", (6,)),
            ("bitmap_ids", "<u2", (max(n_attrs, 1),)),
        ]
    )


def shallow_leaf_dtype(n_attrs: int) -> np.dtype:
    """Shallow leaf: where its treelet lives, plus bbox and bitmap IDs."""
    return np.dtype(
        [
            ("treelet_offset", "<u8"),
            ("treelet_nbytes", "<u8"),
            ("n_points", "<u8"),
            ("bbox", "<f4", (6,)),
            ("bitmap_ids", "<u2", (max(n_attrs, 1),)),
        ]
    )


def treelet_node_dtype(n_attrs: int) -> np.dtype:
    """Treelet k-d node; ``axis == -1`` marks a leaf."""
    return np.dtype(
        [
            ("axis", "i1"),
            ("pad", "u1"),
            ("depth", "<u2"),
            ("split", "<f4"),
            ("left", "<i4"),
            ("right", "<i4"),
            ("begin", "<u4"),
            ("count", "<u4"),
            ("subtree_end", "<u4"),
            ("bitmap_ids", "<u2", (max(n_attrs, 1),)),
        ]
    )


def column_dir_dtype() -> np.dtype:
    """48-byte per-column codec descriptor in a version-4 treelet.

    One record per column in on-disk order: node records, positions, then
    each attribute. ``p0``/``p1`` are codec parameters (for ``quantize{b}``
    the range origin and quantization step, from which the recorded error
    bound derives).
    """
    return np.dtype(
        [
            ("codec", "S16"),
            ("enc_nbytes", "<u8"),
            ("raw_nbytes", "<u8"),
            ("p0", "<f8"),
            ("p1", "<f8"),
        ]
    )


def treelet_header_dtype() -> np.dtype:
    """16-byte treelet preamble; ``raw_nbytes`` is the decompressed payload
    size (0 for uncompressed files)."""
    return np.dtype(
        [("n_nodes", "<u4"), ("n_points", "<u4"), ("max_depth", "<u4"), ("raw_nbytes", "<u4")]
    )


def pad_to(offset: int, alignment: int) -> int:
    """Next multiple of ``alignment`` at or after ``offset``."""
    return (offset + alignment - 1) // alignment * alignment


# -- checksum footer (version >= 3) ----------------------------------------

FOOTER_MAGIC = b"BATC"
FOOTER_VERSION = 1
#: metadata sections covered by the footer's fixed CRC block, in order
METADATA_SECTIONS = (
    "header",
    "attr_table",
    "shallow_inner",
    "shallow_leaves",
    "dictionary",
    "binning",
)
_FOOTER_FIXED = struct.calcsize("<4sII") + 4 * len(METADATA_SECTIONS)


@dataclass
class Footer:
    """Parsed checksum footer of a version-3 file."""

    section_crcs: dict[str, int]
    treelet_crcs: np.ndarray  # (n_treelets,) uint32
    #: CRC32 of every byte before the footer
    file_digest: int


def footer_size(n_treelets: int) -> int:
    """On-disk footer size: fixed block + one CRC per treelet + digest + CRC."""
    return _FOOTER_FIXED + 4 * n_treelets + 8


def pack_footer(section_crcs: dict[str, int], treelet_crcs, file_digest: int) -> bytes:
    crcs = np.ascontiguousarray(treelet_crcs, dtype="<u4")
    body = struct.pack("<4sII", FOOTER_MAGIC, FOOTER_VERSION, len(crcs))
    body += struct.pack(
        f"<{len(METADATA_SECTIONS)}I", *(section_crcs[s] for s in METADATA_SECTIONS)
    )
    body += crcs.tobytes()
    body += struct.pack("<I", file_digest)
    return body + struct.pack("<I", zlib.crc32(body))


def unpack_footer(buf, offset: int, n_treelets: int) -> Footer:
    """Parse and self-verify the footer at ``offset``.

    ``n_treelets`` comes from the (already CRC-verified) header; a mismatch
    means the footer does not belong to this file.
    """
    size = footer_size(n_treelets)
    if offset <= 0 or offset + size > len(buf):
        raise IntegrityError(
            f"BAT footer out of bounds (offset {offset}, need {size} bytes)",
            section="footer",
        )
    raw = bytes(buf[offset : offset + size])
    (stored,) = struct.unpack_from("<I", raw, size - 4)
    if zlib.crc32(raw[: size - 4]) != stored:
        raise IntegrityError("BAT footer checksum mismatch", section="footer")
    magic, version, count = struct.unpack_from("<4sII", raw, 0)
    if magic != FOOTER_MAGIC:
        raise IntegrityError(f"bad BAT footer magic {magic!r}", section="footer")
    if version != FOOTER_VERSION:
        raise IntegrityError(f"unsupported BAT footer version {version}", section="footer")
    if count != n_treelets:
        raise IntegrityError(
            f"BAT footer treelet count mismatch (footer {count}, header {n_treelets})",
            section="footer",
        )
    fields = struct.unpack_from(f"<{len(METADATA_SECTIONS)}I", raw, struct.calcsize("<4sII"))
    section_crcs = dict(zip(METADATA_SECTIONS, fields))
    treelet_crcs = np.frombuffer(raw, dtype="<u4", count=n_treelets, offset=_FOOTER_FIXED)
    (file_digest,) = struct.unpack_from("<I", raw, _FOOTER_FIXED + 4 * n_treelets)
    return Footer(section_crcs=section_crcs, treelet_crcs=treelet_crcs, file_digest=file_digest)


def pack_binning_section(kinds: list[int], edge_tables: np.ndarray) -> bytes:
    """Serialize per-attribute binning info.

    ``kinds`` is one code per attribute (see :mod:`repro.binning`);
    ``edge_tables`` is ``(n_attrs, 33)`` float64 (zeros for attributes whose
    binning derives its edges from the (lo, hi) range).
    """
    n = len(kinds)
    kind_bytes = bytes(kinds).ljust(pad_to(max(n, 1), 8), b"\0")
    return kind_bytes + np.ascontiguousarray(edge_tables, dtype="<f8").tobytes()


def unpack_binning_section(buf, offset: int, n_attrs: int) -> tuple[list[int], np.ndarray]:
    """Inverse of :func:`pack_binning_section`."""
    kinds = list(buf[offset : offset + n_attrs])
    edges_off = offset + pad_to(max(n_attrs, 1), 8)
    edges = np.frombuffer(buf, dtype="<f8", count=n_attrs * 33, offset=edges_off)
    return kinds, edges.reshape(n_attrs, 33)
