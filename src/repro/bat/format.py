"""On-disk BAT file format (paper §III-C3, Fig 2).

Layout, in file order::

    header (256 B, fixed)
    attribute table          (64 B per attribute)
    shallow inner nodes      (structured records)
    shallow leaf nodes       (structured records, treelet offsets)
    bitmap dictionary        (u32 per entry)
    -- pad to 4 KB --
    treelet 0 (4 KB aligned) : treelet header | nodes | positions | attrs...
    treelet 1 (4 KB aligned)
    ...

Everything frequently touched during traversal (tree + dictionary) sits at
the start of the file; treelets are page-aligned for memory-mapped access.
All integers are little-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "PAGE_SIZE",
    "Header",
    "attr_table_dtype",
    "shallow_inner_dtype",
    "shallow_leaf_dtype",
    "treelet_node_dtype",
    "treelet_header_dtype",
    "LEAF_FLAG",
]

MAGIC = b"BATF"
VERSION = 2
HEADER_SIZE = 256
PAGE_SIZE = 4096

#: High bit of a shallow inner node's child field: set when the child is a
#: shallow *leaf* index rather than another inner node.
LEAF_FLAG = np.uint32(0x80000000)

#: header flag: treelet positions stored as uint16 quantized against the
#: shallow leaf's bounding box (6 B/particle instead of 12 B) — the §VII
#: quantization extension; lossy to ~1/65535 of the leaf extent.
FLAG_QUANTIZED_POSITIONS = 0x1
#: header flag: each treelet's payload (nodes + positions + attributes) is
#: zlib-compressed — the §VII compression extension; treelets decompress on
#: first access instead of mapping in place.
FLAG_COMPRESSED_TREELETS = 0x2

_HEADER_FMT = "<4sI Q IIIIII III 6d 8Q"
_HEADER_FIELDS = struct.calcsize(_HEADER_FMT)
assert _HEADER_FIELDS <= HEADER_SIZE


@dataclass
class Header:
    """Parsed fixed-size file header."""

    n_points: int
    n_attrs: int
    morton_bits: int
    subprefix_bits: int
    lod_per_node: int
    max_leaf_points: int
    n_shallow_inner: int
    n_shallow_leaves: int
    dict_entries: int
    max_treelet_depth: int
    bounds: np.ndarray  # (2, 3) float64 local bounds
    attr_table_offset: int
    shallow_inner_offset: int
    shallow_leaf_offset: int
    dict_offset: int
    treelets_offset: int
    file_size: int
    #: FLAG_* bits
    flags: int = 0
    #: offset of the binning section (per-attr kind bytes + edge tables);
    #: 0 when the file has no attributes
    binning_offset: int = 0

    def pack(self) -> bytes:
        b = self.bounds.reshape(6)
        raw = struct.pack(
            _HEADER_FMT,
            MAGIC,
            VERSION,
            self.n_points,
            self.n_attrs,
            self.morton_bits,
            self.subprefix_bits,
            self.lod_per_node,
            self.max_leaf_points,
            self.n_shallow_inner,
            self.n_shallow_leaves,
            self.dict_entries,
            self.max_treelet_depth,
            *b.tolist(),
            self.attr_table_offset,
            self.shallow_inner_offset,
            self.shallow_leaf_offset,
            self.dict_offset,
            self.treelets_offset,
            self.file_size,
            self.flags,
            self.binning_offset,
        )
        return raw.ljust(HEADER_SIZE, b"\0")

    @staticmethod
    def unpack(raw: bytes) -> "Header":
        if len(raw) < HEADER_SIZE:
            raise ValueError("truncated BAT header")
        vals = struct.unpack(_HEADER_FMT, raw[:_HEADER_FIELDS])
        magic, version = vals[0], vals[1]
        if magic != MAGIC:
            raise ValueError(f"not a BAT file (magic {magic!r})")
        if version != VERSION:
            raise ValueError(f"unsupported BAT version {version}")
        bounds = np.array(vals[12:18], dtype=np.float64).reshape(2, 3)
        return Header(
            n_points=vals[2],
            n_attrs=vals[3],
            morton_bits=vals[4],
            subprefix_bits=vals[5],
            lod_per_node=vals[6],
            max_leaf_points=vals[7],
            n_shallow_inner=vals[8],
            n_shallow_leaves=vals[9],
            dict_entries=vals[10],
            max_treelet_depth=vals[11],
            bounds=bounds,
            attr_table_offset=vals[18],
            shallow_inner_offset=vals[19],
            shallow_leaf_offset=vals[20],
            dict_offset=vals[21],
            treelets_offset=vals[22],
            file_size=vals[23],
            flags=vals[24],
            binning_offset=vals[25],
        )


def attr_table_dtype() -> np.dtype:
    """64-byte attribute descriptor: name, numpy dtype string, local range."""
    return np.dtype(
        [("name", "S40"), ("dtype", "S8"), ("lo", "<f8"), ("hi", "<f8")]
    )


def shallow_inner_dtype(n_attrs: int) -> np.dtype:
    """Shallow (Karras) inner node: children, bbox, per-attr bitmap IDs."""
    return np.dtype(
        [
            ("left", "<u4"),
            ("right", "<u4"),
            ("bbox", "<f4", (6,)),
            ("bitmap_ids", "<u2", (max(n_attrs, 1),)),
        ]
    )


def shallow_leaf_dtype(n_attrs: int) -> np.dtype:
    """Shallow leaf: where its treelet lives, plus bbox and bitmap IDs."""
    return np.dtype(
        [
            ("treelet_offset", "<u8"),
            ("treelet_nbytes", "<u8"),
            ("n_points", "<u8"),
            ("bbox", "<f4", (6,)),
            ("bitmap_ids", "<u2", (max(n_attrs, 1),)),
        ]
    )


def treelet_node_dtype(n_attrs: int) -> np.dtype:
    """Treelet k-d node; ``axis == -1`` marks a leaf."""
    return np.dtype(
        [
            ("axis", "i1"),
            ("pad", "u1"),
            ("depth", "<u2"),
            ("split", "<f4"),
            ("left", "<i4"),
            ("right", "<i4"),
            ("begin", "<u4"),
            ("count", "<u4"),
            ("subtree_end", "<u4"),
            ("bitmap_ids", "<u2", (max(n_attrs, 1),)),
        ]
    )


def treelet_header_dtype() -> np.dtype:
    """16-byte treelet preamble; ``raw_nbytes`` is the decompressed payload
    size (0 for uncompressed files)."""
    return np.dtype(
        [("n_nodes", "<u4"), ("n_points", "<u4"), ("max_depth", "<u4"), ("raw_nbytes", "<u4")]
    )


def pad_to(offset: int, alignment: int) -> int:
    """Next multiple of ``alignment`` at or after ``offset``."""
    return (offset + alignment - 1) // alignment * alignment


def pack_binning_section(kinds: list[int], edge_tables: np.ndarray) -> bytes:
    """Serialize per-attribute binning info.

    ``kinds`` is one code per attribute (see :mod:`repro.binning`);
    ``edge_tables`` is ``(n_attrs, 33)`` float64 (zeros for attributes whose
    binning derives its edges from the (lo, hi) range).
    """
    n = len(kinds)
    kind_bytes = bytes(kinds).ljust(pad_to(max(n, 1), 8), b"\0")
    return kind_bytes + np.ascontiguousarray(edge_tables, dtype="<f8").tobytes()


def unpack_binning_section(buf, offset: int, n_attrs: int) -> tuple[list[int], np.ndarray]:
    """Inverse of :func:`pack_binning_section`."""
    kinds = list(buf[offset : offset + n_attrs])
    edges_off = offset + pad_to(max(n_attrs, 1), 8)
    edges = np.frombuffer(buf, dtype="<f8", count=n_attrs * 33, offset=edges_off)
    return kinds, edges.reshape(n_attrs, 33)
