"""Pluggable per-column codecs for BAT treelet payloads (format v4).

Each treelet column (the node records, the position block, and every
attribute column) can be encoded independently through a codec picked at
write time. The registry ships four families:

``raw``
    Identity. Always available; the fallback when nothing else wins.
``zlib``
    DEFLATE over the column's bytes. Dtype-agnostic, lossless.
``delta``
    Delta + bit-packing for integer columns. Values are differenced in
    wrapping 64-bit arithmetic, zigzag-mapped, and packed at the minimum
    bit width that holds the largest delta. Morton-ordered data (sorted
    ids, quantized positions) has tiny deltas, so this routinely beats
    DEFLATE on those columns at several times the throughput.
``quantize{bits}``
    Error-bounded lossy quantization of float columns onto a uniform
    ``2**bits``-step grid over the column's range. The scale (and with it
    the worst-case absolute error, ``scale / 2``) is recorded in the
    column directory, so readers can surface the bound. Never chosen
    automatically — only when a build config names it explicitly.

Codec *choice* must be deterministic: the same input bytes have to
produce the same file no matter which executor built which leaf (the
byte-identity invariant the whole write path is property-tested on).
The write-time sampler therefore never measures wall-clock — each codec
declares a nominal throughput, and :func:`select_codecs` filters on that
static figure before comparing sampled ratios.
"""

from __future__ import annotations

import re
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import CodecError

__all__ = [
    "Codec",
    "CODEC_RAW",
    "CODEC_ZLIB",
    "CODEC_DELTA",
    "available_codecs",
    "get_codec",
    "register_codec",
    "select_codecs",
    "encode_column",
    "decode_column",
]

CODEC_RAW = "raw"
CODEC_ZLIB = "zlib"
CODEC_DELTA = "delta"

#: elements sampled per column when auto-selecting (deterministic stride, no RNG)
SAMPLE_ELEMENTS = 65536
#: an encoder must beat raw by this factor on the sample to displace it
RAW_MARGIN = 0.9


class Codec:
    """One column codec: a name, a loss class, and encode/decode.

    ``throughput_mbs`` is a *declared nominal* encode rate (MB/s), not a
    measurement — the selector compares it against the configured floor so
    codec choice stays deterministic across machines and executors.
    """

    name: str = "?"
    lossless: bool = True
    throughput_mbs: float = 1000.0

    def can_encode(self, dtype: np.dtype) -> bool:
        raise NotImplementedError

    def encode(self, arr: np.ndarray) -> tuple[bytes, float, float]:
        """Return ``(payload, p0, p1)``; params land in the column directory."""
        raise NotImplementedError

    def decode(self, buf, dtype: np.dtype, n_elems: int, p0: float, p1: float) -> np.ndarray:
        """Inverse of :meth:`encode`; returns a flat array of ``n_elems``."""
        raise NotImplementedError

    def error_bound(self, p0: float, p1: float, dtype=np.float64) -> float:
        """Worst-case absolute error of a decoded value (0 for lossless)."""
        return 0.0


class _RawCodec(Codec):
    name = CODEC_RAW
    lossless = True
    throughput_mbs = 4000.0

    def can_encode(self, dtype):
        return True

    def encode(self, arr):
        return np.ascontiguousarray(arr).tobytes(), 0.0, 0.0

    def decode(self, buf, dtype, n_elems, p0, p1):
        return np.frombuffer(buf, dtype=dtype, count=n_elems)


class _ZlibCodec(Codec):
    name = CODEC_ZLIB
    lossless = True
    throughput_mbs = 90.0

    def __init__(self, level: int = 6):
        self.level = int(level)

    def can_encode(self, dtype):
        return True

    def encode(self, arr):
        return zlib.compress(np.ascontiguousarray(arr).tobytes(), self.level), 0.0, 0.0

    def decode(self, buf, dtype, n_elems, p0, p1):
        raw = zlib.decompress(bytes(buf))
        out = np.frombuffer(raw, dtype=dtype, count=n_elems)
        if out.nbytes != len(raw):
            raise CodecError(
                f"zlib payload decoded to {len(raw)} bytes, expected {out.nbytes}",
                codec=self.name,
            )
        return out


# delta payload: u8 first-value bits | u1 bit width | packed zigzag deltas
_DELTA_HEADER = struct.Struct("<QB")


class _DeltaBitpackCodec(Codec):
    """Delta + minimal-width bit-packing for integer columns."""

    name = CODEC_DELTA
    lossless = True
    throughput_mbs = 600.0

    def can_encode(self, dtype):
        dtype = np.dtype(dtype)
        return dtype.kind in "iu" and dtype.itemsize <= 8

    def encode(self, arr):
        flat = np.ascontiguousarray(arr).ravel()
        if not self.can_encode(flat.dtype):
            raise CodecError(f"delta codec cannot encode dtype {flat.dtype}", codec=self.name)
        if flat.size == 0:
            return _DELTA_HEADER.pack(0, 0), 0.0, 0.0
        # All arithmetic wraps mod 2**64, so the decode cumsum is exact even
        # when deltas of extreme uint64 values overflow the signed range.
        vals = flat.astype(np.int64, copy=False)
        with np.errstate(over="ignore"):
            deltas = np.diff(vals)
            zig = ((deltas << 1) ^ (deltas >> 63)).view(np.uint64)
        first = int(vals[0].view(np.uint64))
        width = int(zig.max()).bit_length() if zig.size else 0
        header = _DELTA_HEADER.pack(first, width)
        if width == 0 or zig.size == 0:
            return header, 0.0, 0.0
        shifts = np.arange(width, dtype=np.uint64)
        bits = ((zig[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        return header + np.packbits(bits, bitorder="little").tobytes(), 0.0, 0.0

    def decode(self, buf, dtype, n_elems, p0, p1):
        dtype = np.dtype(dtype)
        buf = bytes(buf)
        if len(buf) < _DELTA_HEADER.size:
            raise CodecError("delta payload truncated", codec=self.name)
        first, width = _DELTA_HEADER.unpack_from(buf)
        if n_elems == 0:
            return np.empty(0, dtype=dtype)
        n_deltas = n_elems - 1
        if width == 0 or n_deltas == 0:
            zig = np.zeros(n_deltas, dtype=np.uint64)
        else:
            packed = np.frombuffer(buf, dtype=np.uint8, offset=_DELTA_HEADER.size)
            bits = np.unpackbits(packed, bitorder="little")
            if bits.size < n_deltas * width:
                raise CodecError("delta payload truncated", codec=self.name)
            bits = bits[: n_deltas * width].reshape(n_deltas, width).astype(np.uint64)
            zig = (bits << np.arange(width, dtype=np.uint64)).sum(axis=1, dtype=np.uint64)
        deltas = ((zig >> np.uint64(1)).view(np.int64)) ^ -((zig & np.uint64(1)).view(np.int64))
        out = np.empty(n_elems, dtype=np.int64)
        out[0] = np.uint64(first).view(np.int64)
        with np.errstate(over="ignore"):
            out[1:] = np.cumsum(deltas) + out[0]
        if dtype.kind == "u":
            return out.view(np.uint64).astype(dtype, copy=False)
        return out.astype(dtype, copy=False)


class _QuantizeCodec(Codec):
    """Error-bounded lossy quantization onto a ``2**bits``-level grid."""

    lossless = False
    throughput_mbs = 800.0

    def __init__(self, bits: int):
        if not 1 <= bits <= 32:
            raise CodecError(f"quantize bits must be in [1, 32], got {bits}")
        self.bits = int(bits)
        self.name = f"quantize{bits}"
        self._container = (
            np.uint8 if bits <= 8 else np.uint16 if bits <= 16 else np.uint32
        )

    def can_encode(self, dtype):
        return np.dtype(dtype).kind == "f"

    def encode(self, arr):
        flat = np.ascontiguousarray(arr).ravel()
        if not self.can_encode(flat.dtype):
            raise CodecError(
                f"{self.name} requires a float column, got {flat.dtype}", codec=self.name
            )
        if flat.size == 0:
            return b"", 0.0, 0.0
        lo = float(np.min(flat))
        hi = float(np.max(flat))
        levels = (1 << self.bits) - 1
        scale = (hi - lo) / levels if hi > lo else 0.0
        if scale == 0.0:
            q = np.zeros(flat.size, dtype=self._container)
        else:
            q = np.clip(
                np.rint((flat.astype(np.float64) - lo) / scale), 0, levels
            ).astype(self._container)
        return q.tobytes(), lo, scale

    def decode(self, buf, dtype, n_elems, p0, p1):
        q = np.frombuffer(buf, dtype=self._container, count=n_elems)
        return (q.astype(np.float64) * p1 + p0).astype(np.dtype(dtype), copy=False)

    def error_bound(self, p0, p1, dtype=np.float64):
        # half a quantization step, plus the rounding the decode cast into
        # the column's own float dtype can add on top
        levels = (1 << self.bits) - 1
        maxmag = max(abs(p0), abs(p0 + p1 * levels))
        finfo = np.finfo(np.dtype(dtype))
        return 0.5 * p1 + finfo.eps * maxmag + float(finfo.tiny)


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> None:
    """Add (or replace) a codec in the global registry."""
    if not codec.name or len(codec.name.encode()) > 15:
        raise CodecError(f"codec name {codec.name!r} must be 1-15 bytes")
    _REGISTRY[codec.name] = codec


register_codec(_RawCodec())
register_codec(_ZlibCodec())
register_codec(_DeltaBitpackCodec())
for _bits in (8, 12, 16):
    register_codec(_QuantizeCodec(_bits))

_QUANTIZE_RE = re.compile(r"^quantize(\d{1,2})$")


def get_codec(name: str) -> Codec:
    """Look up a codec by id; ``quantize<N>`` registers itself on demand."""
    codec = _REGISTRY.get(name)
    if codec is None:
        m = _QUANTIZE_RE.match(name)
        if m:
            codec = _QuantizeCodec(int(m.group(1)))
            register_codec(codec)
        else:
            raise CodecError(f"unknown codec {name!r}", codec=name)
    return codec


def available_codecs() -> tuple[str, ...]:
    """Names of every registered codec, in registration order."""
    return tuple(_REGISTRY)


def encode_column(codec_name: str, arr: np.ndarray) -> tuple[bytes, float, float]:
    return get_codec(codec_name).encode(arr)


def decode_column(codec_name: str, buf, dtype, n_elems: int, p0: float, p1: float) -> np.ndarray:
    return get_codec(codec_name).decode(buf, np.dtype(dtype), int(n_elems), p0, p1)


def _sample(arr: np.ndarray) -> np.ndarray:
    """A deterministic strided sample of up to SAMPLE_ELEMENTS elements."""
    flat = np.ascontiguousarray(arr).ravel()
    if flat.size <= SAMPLE_ELEMENTS:
        return flat
    stride = flat.size // SAMPLE_ELEMENTS
    return np.ascontiguousarray(flat[:: stride][:SAMPLE_ELEMENTS])


def _auto_pick(arr: np.ndarray, floor_mbs: float) -> str:
    """The best *lossless* codec for one column, by sampled ratio.

    Candidates below the throughput floor are never considered; a winner
    must beat raw by :data:`RAW_MARGIN` on the sample or raw is kept.
    Fully deterministic: strided sample, declared throughputs, fixed order.
    """
    sample = _sample(arr)
    raw_nbytes = sample.nbytes
    if raw_nbytes == 0:
        return CODEC_RAW
    best_name, best_nbytes = CODEC_RAW, raw_nbytes
    for name in (CODEC_DELTA, CODEC_ZLIB):
        codec = _REGISTRY[name]
        if codec.throughput_mbs < floor_mbs or not codec.can_encode(sample.dtype):
            continue
        payload, _, _ = codec.encode(sample)
        if len(payload) < best_nbytes:
            best_name, best_nbytes = name, len(payload)
    if best_name != CODEC_RAW and best_nbytes > RAW_MARGIN * raw_nbytes:
        return CODEC_RAW
    return best_name


def select_codecs(
    columns: dict[str, np.ndarray],
    spec,
    floor_mbs: float = 50.0,
) -> dict[str, str]:
    """Resolve a codec spec to one concrete codec name per column.

    ``spec`` is either the string ``"auto"`` (sample every column, pick the
    best lossless codec above the throughput floor) or a mapping of column
    name to codec name, where the value ``"auto"`` defers to sampling and
    the key ``"*"`` provides a default for unnamed columns. Columns a
    mapping leaves completely unspecified stay ``raw``.
    """
    if isinstance(spec, str):
        if spec != "auto":
            raise CodecError(f"codec spec must be 'auto' or a mapping, got {spec!r}")
        mapping = {name: "auto" for name in columns}
    else:
        mapping = dict(spec)
        default = mapping.pop("*", CODEC_RAW)
        unknown = set(mapping) - set(columns)
        if unknown:
            raise CodecError(f"codec spec names unknown column(s) {sorted(unknown)}")
        mapping = {name: mapping.get(name, default) for name in columns}

    resolved: dict[str, str] = {}
    for name, arr in columns.items():
        choice = mapping[name]
        if choice == "auto":
            resolved[name] = _auto_pick(arr, floor_mbs)
        else:
            codec = get_codec(choice)
            if not codec.can_encode(arr.dtype):
                raise CodecError(
                    f"codec {choice!r} cannot encode column {name!r} ({arr.dtype})",
                    codec=choice,
                    column=name,
                )
            resolved[name] = codec.name
    return resolved
