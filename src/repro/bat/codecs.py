"""Pluggable per-column codecs for BAT treelet payloads (format v4).

Each treelet column (the node records, the position block, and every
attribute column) can be encoded independently through a codec picked at
write time. The registry ships four families:

``raw``
    Identity. Always available; the fallback when nothing else wins.
``zlib``
    DEFLATE over the column's bytes. Dtype-agnostic, lossless.
``delta``
    Delta + bit-packing for integer columns. Values are differenced in
    wrapping 64-bit arithmetic, zigzag-mapped, and packed at the minimum
    bit width that holds the largest delta. Morton-ordered data (sorted
    ids, quantized positions) has tiny deltas, so this routinely beats
    DEFLATE on those columns at several times the throughput.
``quantize{bits}``
    Error-bounded lossy quantization of float columns onto a uniform
    ``2**bits``-step grid over the column's range. The scale (and with it
    the worst-case absolute error, ``scale / 2``) is recorded in the
    column directory, so readers can surface the bound. Never chosen
    automatically — only when a build config names it explicitly.
``quantize_auto:<bound>`` (directory name ``qauto``)
    Bound-driven variant of ``quantize``: the caller supplies an absolute
    error bound and the encoder picks the *minimum* bit width (1–32) whose
    worst-case error stays under it, per region. The achieved worst-case
    bound is recorded in the directory's first parameter slot; the grid
    origin and scale travel in a 16-byte payload header so the two
    directory floats stay free for the bound.

The integer ``delta`` path packs and unpacks bits through word-aligned
uint64 kernels (:func:`_pack_bits_le` / :func:`_unpack_bits_le`) rather
than materializing an ``n × width`` bit matrix; the wire format is
byte-identical to the historical ``np.packbits(..., bitorder="little")``
stream, so files written by earlier versions decode unchanged.

Codec *choice* must be deterministic: the same input bytes have to
produce the same file no matter which executor built which leaf (the
byte-identity invariant the whole write path is property-tested on).
The write-time sampler therefore never measures wall-clock — each codec
declares a nominal throughput, and :func:`select_codecs` filters on that
static figure before comparing sampled ratios.
"""

from __future__ import annotations

import re
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import CodecError

__all__ = [
    "Codec",
    "CODEC_RAW",
    "CODEC_ZLIB",
    "CODEC_DELTA",
    "available_codecs",
    "get_codec",
    "register_codec",
    "select_codecs",
    "encode_column",
    "decode_column",
]

CODEC_RAW = "raw"
CODEC_ZLIB = "zlib"
CODEC_DELTA = "delta"

#: elements sampled per column when auto-selecting (deterministic stride, no RNG)
SAMPLE_ELEMENTS = 16384
#: an encoder must beat raw by this factor on the sample to displace it
RAW_MARGIN = 0.9


class Codec:
    """One column codec: a name, a loss class, and encode/decode.

    ``throughput_mbs`` is a *declared nominal* encode rate (MB/s), not a
    measurement — the selector compares it against the configured floor so
    codec choice stays deterministic across machines and executors.
    """

    name: str = "?"
    lossless: bool = True
    throughput_mbs: float = 1000.0

    def can_encode(self, dtype: np.dtype) -> bool:
        raise NotImplementedError

    def encode(self, arr: np.ndarray) -> tuple[bytes, float, float]:
        """Return ``(payload, p0, p1)``; params land in the column directory."""
        raise NotImplementedError

    def sample_nbytes(self, sample: np.ndarray) -> int:
        """Encoded size of a selection sample, as cheaply as possible.

        Only the *relative* size matters to :func:`select_codecs`, so codecs
        with tunable effort (zlib) may estimate at a faster setting than
        :meth:`encode` uses — as long as the estimate is deterministic.
        """
        return len(self.encode(sample)[0])

    def encode_segments(self, arr: np.ndarray, starts) -> list[tuple[bytes, float, float]]:
        """Encode ``arr[starts[i]:starts[i+1]]`` for every segment.

        The base implementation is a plain loop over :meth:`encode`; codecs
        whose per-call setup dominates small segments (delta) override it to
        share work across the whole column. Must produce byte-identical
        payloads to segment-at-a-time :meth:`encode`.
        """
        return [
            self.encode(arr[int(starts[i]) : int(starts[i + 1])])
            for i in range(len(starts) - 1)
        ]

    def decode(self, buf, dtype: np.dtype, n_elems: int, p0: float, p1: float) -> np.ndarray:
        """Inverse of :meth:`encode`; returns a flat array of ``n_elems``."""
        raise NotImplementedError

    def error_bound(self, p0: float, p1: float, dtype=np.float64) -> float:
        """Worst-case absolute error of a decoded value (0 for lossless)."""
        return 0.0


class _RawCodec(Codec):
    name = CODEC_RAW
    lossless = True
    throughput_mbs = 4000.0

    def can_encode(self, dtype):
        return True

    def encode(self, arr):
        return np.ascontiguousarray(arr).tobytes(), 0.0, 0.0

    def decode(self, buf, dtype, n_elems, p0, p1):
        return np.frombuffer(buf, dtype=dtype, count=n_elems)


class _ZlibCodec(Codec):
    name = CODEC_ZLIB
    lossless = True
    throughput_mbs = 90.0

    # level 4 encodes float columns 3-4x faster than the old default of 6
    # for about a 1% ratio loss, and *decode* speed is level-independent —
    # the read path never sees the difference
    def __init__(self, level: int = 4):
        self.level = int(level)

    def can_encode(self, dtype):
        return True

    def encode(self, arr):
        return zlib.compress(np.ascontiguousarray(arr).tobytes(), self.level), 0.0, 0.0

    def sample_nbytes(self, sample):
        # ratio probe only: level 1 tracks the real level's relative size
        # closely and runs ~5x faster, keeping selection off the hot path
        return len(zlib.compress(np.ascontiguousarray(sample).tobytes(), 1))

    def decode(self, buf, dtype, n_elems, p0, p1):
        # zlib accepts any buffer-protocol object: decompressing straight
        # from the mmap-backed view avoids copying the payload first
        raw = zlib.decompress(buf)
        out = np.frombuffer(raw, dtype=dtype, count=n_elems)
        if out.nbytes != len(raw):
            raise CodecError(
                f"zlib payload decoded to {len(raw)} bytes, expected {out.nbytes}",
                codec=self.name,
            )
        return out


# delta payload: u8 first-value bits | u1 bit width | packed zigzag deltas
_DELTA_HEADER = struct.Struct("<QB")

_U64_0 = np.uint64(0)
_U64_1 = np.uint64(1)
_U64_6 = np.uint64(6)
_U64_63 = np.uint64(63)
_U64_64 = np.uint64(64)


def _or_scatter(words: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> None:
    """OR each ``vals`` lane into ``words[idx]``; ``idx`` must be non-decreasing.

    Runs of equal indices are collapsed with ``bitwise_or.reduceat`` so no
    lane is lost to numpy's last-writer-wins fancy assignment.
    """
    if idx.size == 0:
        return
    run_starts = np.concatenate(([0], np.flatnonzero(np.diff(idx)) + 1))
    words[idx[run_starts]] |= np.bitwise_or.reduceat(vals, run_starts)


def _pack_bits_le(zig: np.ndarray, width: int) -> bytes:
    """Pack each value's low ``width`` bits LSB-first into a byte stream.

    Byte-identical to ``np.packbits(bit_matrix, bitorder="little")`` over
    the historical per-bit matrix, but runs on whole uint64 lanes: each
    value lands at absolute bit offset ``i * width``, straddling at most
    two little-endian words.
    """
    n = int(zig.size)
    nbytes = (n * width + 7) // 8
    if nbytes == 0:
        return b""
    nwords = (n * width + 63) // 64 + 1  # +1 pad word absorbs the last spill
    words = np.zeros(nwords, dtype="<u8")
    start = np.arange(n, dtype=np.uint64) * np.uint64(width)
    wi = (start >> _U64_6).astype(np.int64)
    sh = start & _U64_63
    # a lane with sh == 0 fits one word; (64 - sh) & 63 dodges the
    # undefined shift-by-64 for exactly those lanes, which np.where drops
    inv = (_U64_64 - sh) & _U64_63
    _or_scatter(words, wi, zig << sh)
    _or_scatter(words, wi + 1, np.where(sh == _U64_0, _U64_0, zig >> inv))
    return words.tobytes()[:nbytes]


def _unpack_bits_le(buf, offset: int, n: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits_le`; returns ``n`` uint64 values."""
    if n == 0 or width == 0:
        return np.zeros(n, dtype=np.uint64)
    needed = (n * width + 7) // 8
    nwords = needed // 8 + 2  # slack so words[wi + 1] is always in range
    padded = np.zeros(nwords * 8, dtype=np.uint8)
    padded[:needed] = np.frombuffer(buf, dtype=np.uint8, count=needed, offset=offset)
    words = padded.view("<u8")
    start = np.arange(n, dtype=np.uint64) * np.uint64(width)
    wi = (start >> _U64_6).astype(np.int64)
    sh = start & _U64_63
    # (x << 1) << (63 - sh) is x << (64 - sh) with both shifts in range, so
    # the sh == 0 lanes (whole value in one word) need no special case: the
    # high word's contribution self-cancels instead of tripping shift-by-64
    vals = (words[wi] >> sh) | ((words[wi + 1] << _U64_1) << (_U64_63 - sh))
    if width >= 64:
        return vals
    return vals & ((_U64_1 << np.uint64(width)) - _U64_1)


def _zigzag(vals: np.ndarray) -> np.ndarray:
    """Zigzag-map int64 deltas of ``vals`` to uint64 (wrapping arithmetic)."""
    # All arithmetic wraps mod 2**64, so the decode cumsum is exact even
    # when deltas of extreme uint64 values overflow the signed range.
    with np.errstate(over="ignore"):
        deltas = np.diff(vals)
        return ((deltas << 1) ^ (deltas >> 63)).view(np.uint64)


class _DeltaBitpackCodec(Codec):
    """Delta + minimal-width bit-packing for integer columns."""

    name = CODEC_DELTA
    lossless = True
    throughput_mbs = 600.0

    def can_encode(self, dtype):
        dtype = np.dtype(dtype)
        return dtype.kind in "iu" and dtype.itemsize <= 8

    @staticmethod
    def _pack_one(vals: np.ndarray, zig: np.ndarray) -> bytes:
        first = int(vals[0].view(np.uint64))
        width = int(zig.max()).bit_length() if zig.size else 0
        header = _DELTA_HEADER.pack(first, width)
        if width == 0 or zig.size == 0:
            return header
        return header + _pack_bits_le(zig, width)

    def encode(self, arr):
        flat = np.ascontiguousarray(arr).ravel()
        if not self.can_encode(flat.dtype):
            raise CodecError(f"delta codec cannot encode dtype {flat.dtype}", codec=self.name)
        if flat.size == 0:
            return _DELTA_HEADER.pack(0, 0), 0.0, 0.0
        vals = flat.astype(np.int64, copy=False)
        return self._pack_one(vals, _zigzag(vals)), 0.0, 0.0

    def encode_segments(self, arr, starts):
        """Batched encode: one global diff/zigzag pass shared by all segments.

        Segment boundaries fall on contiguous slices of the whole-column
        delta stream (``zig[s : e - 1]`` covers exactly the in-segment
        deltas), so each payload is byte-identical to encoding the segment
        alone.
        """
        flat = np.ascontiguousarray(arr)
        if not self.can_encode(flat.dtype):
            return super().encode_segments(arr, starts)
        # row segments of a C-contiguous 2-D column ravel to contiguous
        # slices of the raveled whole, so starts just scale by the row width
        row = 1
        if flat.ndim > 1:
            row = int(np.prod(flat.shape[1:]))
            flat = flat.reshape(-1)
        vals = flat.astype(np.int64, copy=False)
        gzig = _zigzag(vals)
        out = []
        for i in range(len(starts) - 1):
            s, e = int(starts[i]) * row, int(starts[i + 1]) * row
            if e <= s:
                out.append((_DELTA_HEADER.pack(0, 0), 0.0, 0.0))
                continue
            out.append((self._pack_one(vals[s:e], gzig[s : e - 1]), 0.0, 0.0))
        return out

    def decode(self, buf, dtype, n_elems, p0, p1):
        dtype = np.dtype(dtype)
        if len(buf) < _DELTA_HEADER.size:
            raise CodecError("delta payload truncated", codec=self.name)
        first, width = _DELTA_HEADER.unpack_from(buf)
        if n_elems == 0:
            return np.empty(0, dtype=dtype)
        if width > 64:
            raise CodecError(f"delta payload corrupt: width {width}", codec=self.name)
        n_deltas = n_elems - 1
        if width == 0 or n_deltas == 0:
            zig = np.zeros(n_deltas, dtype=np.uint64)
        else:
            if len(buf) - _DELTA_HEADER.size < (n_deltas * width + 7) // 8:
                raise CodecError("delta payload truncated", codec=self.name)
            zig = _unpack_bits_le(buf, _DELTA_HEADER.size, n_deltas, width)
        deltas = ((zig >> np.uint64(1)).view(np.int64)) ^ -((zig & np.uint64(1)).view(np.int64))
        out = np.empty(n_elems, dtype=np.int64)
        out[0] = np.uint64(first).view(np.int64)
        with np.errstate(over="ignore"):
            out[1:] = np.cumsum(deltas) + out[0]
        if dtype.kind == "u":
            return out.view(np.uint64).astype(dtype, copy=False)
        return out.astype(dtype, copy=False)


class _QuantizeCodec(Codec):
    """Error-bounded lossy quantization onto a ``2**bits``-level grid."""

    lossless = False
    throughput_mbs = 800.0

    def __init__(self, bits: int):
        if not 1 <= bits <= 32:
            raise CodecError(f"quantize bits must be in [1, 32], got {bits}")
        self.bits = int(bits)
        self.name = f"quantize{bits}"
        self._container = (
            np.uint8 if bits <= 8 else np.uint16 if bits <= 16 else np.uint32
        )

    def can_encode(self, dtype):
        return np.dtype(dtype).kind == "f"

    def encode(self, arr):
        flat = np.ascontiguousarray(arr).ravel()
        if not self.can_encode(flat.dtype):
            raise CodecError(
                f"{self.name} requires a float column, got {flat.dtype}", codec=self.name
            )
        if flat.size == 0:
            return b"", 0.0, 0.0
        lo = float(np.min(flat))
        hi = float(np.max(flat))
        levels = (1 << self.bits) - 1
        scale = (hi - lo) / levels if hi > lo else 0.0
        if scale == 0.0:
            q = np.zeros(flat.size, dtype=self._container)
        else:
            q = np.clip(
                np.rint((flat.astype(np.float64) - lo) / scale), 0, levels
            ).astype(self._container)
        return q.tobytes(), lo, scale

    def decode(self, buf, dtype, n_elems, p0, p1):
        q = np.frombuffer(buf, dtype=self._container, count=n_elems)
        return (q.astype(np.float64) * p1 + p0).astype(np.dtype(dtype), copy=False)

    def error_bound(self, p0, p1, dtype=np.float64):
        # half a quantization step, plus the rounding the decode cast into
        # the column's own float dtype can add on top
        levels = (1 << self.bits) - 1
        maxmag = max(abs(p0), abs(p0 + p1 * levels))
        finfo = np.finfo(np.dtype(dtype))
        return 0.5 * p1 + finfo.eps * maxmag + float(finfo.tiny)


# quantize_auto payload: f8 grid origin | f8 grid scale | container ints
_QAUTO_HEADER = struct.Struct("<dd")

#: bound used by the registered ``qauto`` singleton when none is supplied
QAUTO_DEFAULT_BOUND = 1e-6


class _QuantizeAutoCodec(Codec):
    """Bound-driven quantization: minimum bit width meeting a caller bound.

    Unlike ``quantize{bits}`` the wire name is always ``qauto`` and the
    directory's first parameter records the *achieved worst-case bound*
    (``error_bound`` simply returns it); the grid origin and scale live in
    a 16-byte payload header instead. The container width (1, 2, or 4
    bytes) is recovered at decode time from the payload size, so decoding
    needs no knowledge of the bound the writer was given.
    """

    name = "qauto"
    lossless = False
    throughput_mbs = 800.0

    def __init__(self, bound: float | None = None):
        if bound is not None and not (float(bound) > 0.0):
            raise CodecError(f"quantize_auto bound must be > 0, got {bound!r}")
        self.bound = float(bound) if bound is not None else None

    def can_encode(self, dtype):
        return np.dtype(dtype).kind == "f"

    @staticmethod
    def _worst_case(scale: float, lo: float, hi: float, dtype) -> float:
        finfo = np.finfo(np.dtype(dtype))
        maxmag = max(abs(lo), abs(hi))
        return 0.5 * scale + finfo.eps * maxmag + float(finfo.tiny)

    def encode(self, arr):
        flat = np.ascontiguousarray(arr).ravel()
        if not self.can_encode(flat.dtype):
            raise CodecError(
                f"{self.name} requires a float column, got {flat.dtype}", codec=self.name
            )
        bound = self.bound if self.bound is not None else QAUTO_DEFAULT_BOUND
        if flat.size == 0:
            return _QAUTO_HEADER.pack(0.0, 0.0), 0.0, 0.0
        lo = float(np.min(flat))
        hi = float(np.max(flat))
        span = hi - lo
        bits = None
        for b in range(1, 33):
            scale = span / ((1 << b) - 1) if span > 0 else 0.0
            if self._worst_case(scale, lo, hi, flat.dtype) <= bound:
                bits = b
                break
        if bits is None:
            raise CodecError(
                f"error bound {bound:g} unachievable for column range "
                f"[{lo:g}, {hi:g}] at <= 32 bits",
                codec=self.name,
            )
        levels = (1 << bits) - 1
        scale = span / levels if span > 0 else 0.0
        container = np.uint8 if bits <= 8 else np.uint16 if bits <= 16 else np.uint32
        if scale == 0.0:
            q = np.zeros(flat.size, dtype=container)
        else:
            q = np.clip(
                np.rint((flat.astype(np.float64) - lo) / scale), 0, levels
            ).astype(container)
        achieved = self._worst_case(scale, lo, hi, flat.dtype)
        return _QAUTO_HEADER.pack(lo, scale) + q.tobytes(), achieved, 0.0

    def decode(self, buf, dtype, n_elems, p0, p1):
        if n_elems == 0:
            return np.empty(0, dtype=np.dtype(dtype))
        body = len(buf) - _QAUTO_HEADER.size
        if body < n_elems or body % n_elems:
            raise CodecError("quantize_auto payload truncated", codec=self.name)
        itemsize = body // n_elems
        if itemsize not in (1, 2, 4):
            raise CodecError(
                f"quantize_auto payload corrupt: container width {itemsize}",
                codec=self.name,
            )
        lo, scale = _QAUTO_HEADER.unpack_from(buf)
        container = {1: np.uint8, 2: np.uint16, 4: np.uint32}[itemsize]
        q = np.frombuffer(buf, dtype=container, count=n_elems, offset=_QAUTO_HEADER.size)
        return (q.astype(np.float64) * scale + lo).astype(np.dtype(dtype), copy=False)

    def error_bound(self, p0, p1, dtype=np.float64):
        return float(p0)


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> None:
    """Add (or replace) a codec in the global registry."""
    if not codec.name or len(codec.name.encode()) > 15:
        raise CodecError(f"codec name {codec.name!r} must be 1-15 bytes")
    _REGISTRY[codec.name] = codec


register_codec(_RawCodec())
register_codec(_ZlibCodec())
register_codec(_DeltaBitpackCodec())
for _bits in (8, 12, 16):
    register_codec(_QuantizeCodec(_bits))
register_codec(_QuantizeAutoCodec())

_QUANTIZE_RE = re.compile(r"^quantize(\d{1,2})$")
_QUANTIZE_AUTO_RE = re.compile(r"^quantize_auto:(.+)$")


def get_codec(name: str) -> Codec:
    """Look up a codec by id; ``quantize<N>`` registers itself on demand.

    ``quantize_auto:<bound>`` specs resolve to an unregistered instance
    parameterized by the bound; its wire name stays ``qauto``, which maps
    back to the registered (decode-capable) singleton.
    """
    codec = _REGISTRY.get(name)
    if codec is None:
        m = _QUANTIZE_RE.match(name)
        if m:
            codec = _QuantizeCodec(int(m.group(1)))
            register_codec(codec)
            return codec
        m = _QUANTIZE_AUTO_RE.match(name)
        if m:
            try:
                bound = float(m.group(1))
            except ValueError:
                raise CodecError(
                    f"bad quantize_auto bound in spec {name!r}", codec=name
                ) from None
            return _QuantizeAutoCodec(bound)
        if name == "quantize_auto":
            return _REGISTRY["qauto"]
        raise CodecError(f"unknown codec {name!r}", codec=name)
    return codec


def available_codecs() -> tuple[str, ...]:
    """Names of every registered codec, in registration order."""
    return tuple(_REGISTRY)


def encode_column(codec_name: str, arr: np.ndarray) -> tuple[bytes, float, float]:
    return get_codec(codec_name).encode(arr)


def decode_column(codec_name: str, buf, dtype, n_elems: int, p0: float, p1: float) -> np.ndarray:
    return get_codec(codec_name).decode(buf, np.dtype(dtype), int(n_elems), p0, p1)


def _sample(arr: np.ndarray) -> np.ndarray:
    """A deterministic strided sample of up to SAMPLE_ELEMENTS elements."""
    flat = np.ascontiguousarray(arr).ravel()
    if flat.size <= SAMPLE_ELEMENTS:
        return flat
    stride = flat.size // SAMPLE_ELEMENTS
    return np.ascontiguousarray(flat[:: stride][:SAMPLE_ELEMENTS])


def _auto_pick(arr: np.ndarray, floor_mbs: float) -> str:
    """The best *lossless* codec for one column, by sampled ratio.

    Candidates below the throughput floor are never considered; a winner
    must beat raw by :data:`RAW_MARGIN` on the sample or raw is kept.
    Fully deterministic: strided sample, declared throughputs, fixed order.
    """
    sample = _sample(arr)
    raw_nbytes = sample.nbytes
    if raw_nbytes == 0:
        return CODEC_RAW
    best_name, best_nbytes = CODEC_RAW, raw_nbytes
    for name in (CODEC_DELTA, CODEC_ZLIB):
        codec = _REGISTRY[name]
        if codec.throughput_mbs < floor_mbs or not codec.can_encode(sample.dtype):
            continue
        nbytes = codec.sample_nbytes(sample)
        if nbytes < best_nbytes:
            best_name, best_nbytes = name, nbytes
    if best_name != CODEC_RAW and best_nbytes > RAW_MARGIN * raw_nbytes:
        return CODEC_RAW
    return best_name


def select_codecs(
    columns: dict[str, np.ndarray],
    spec,
    floor_mbs: float = 50.0,
) -> dict[str, str]:
    """Resolve a codec spec to one concrete codec name per column.

    ``spec`` is either the string ``"auto"`` (sample every column, pick the
    best lossless codec above the throughput floor) or a mapping of column
    name to codec name, where the value ``"auto"`` defers to sampling and
    the key ``"*"`` provides a default for unnamed columns. Columns a
    mapping leaves completely unspecified stay ``raw``.
    """
    if isinstance(spec, str):
        if spec != "auto":
            raise CodecError(f"codec spec must be 'auto' or a mapping, got {spec!r}")
        mapping = {name: "auto" for name in columns}
    else:
        mapping = dict(spec)
        default = mapping.pop("*", CODEC_RAW)
        unknown = set(mapping) - set(columns)
        if unknown:
            raise CodecError(f"codec spec names unknown column(s) {sorted(unknown)}")
        mapping = {name: mapping.get(name, default) for name in columns}

    resolved: dict[str, str] = {}
    for name, arr in columns.items():
        choice = mapping[name]
        if choice == "auto":
            resolved[name] = _auto_pick(arr, floor_mbs)
        else:
            codec = get_codec(choice)
            if not codec.can_encode(arr.dtype):
                raise CodecError(
                    f"codec {choice!r} cannot encode column {name!r} ({arr.dtype})",
                    codec=choice,
                    column=name,
                )
            # parameterized specs (quantize_auto:<bound>) keep their params;
            # the builder records the codec's wire name in the directory
            resolved[name] = choice if ":" in str(choice) else codec.name
    return resolved
