"""Byte-budgeted LRU cache of decoded treelet columns.

The decoded-column tier sits between the plan/result caches and the
:class:`~repro.bat.filecache.BATFileCache` file-handle tier: a v4 column
payload that survives here is never run through its codec again, so
repeated plans and progressive refinements touching the same treelets pay
the decode cost once. Entries are keyed ``(file_key, treelet_id,
column_slot)`` — the slot is the treelet directory index (0 nodes, 1
positions, 2+ attributes). ``file_key`` is the handle's inode-qualified
:attr:`BATFile.cache_key`, not the bare path: after an atomic republish
of a leaf, an old leased handle and the fresh reopened handle coexist for
the same path, and their decoded columns must never mix. Entries hold
the exact arrays the decode path produced (for the
position slot, the final reshaped/dequantized ``(n, 3)`` float32 block),
so a hit is byte-identical to a cold decode by construction. While a
handle has this tier attached, its treelet views do *not* memoize
decoded columns themselves: retention lives here, which is what makes
the byte budget an actual bound on decoded memory.

The budget is in *decoded* bytes (``arr.nbytes``), not encoded bytes:
that is what the cache actually pins in memory. Eviction is strict LRU.
All operations take one re-entrant lock so the serve layer's scheduler
workers and the thread executor can share a single instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["DecodedColumnCache", "DEFAULT_COLUMN_CACHE_BYTES"]

#: default byte budget (64 MiB) when a caller enables the tier without sizing it
DEFAULT_COLUMN_CACHE_BYTES = 64 * 1024 * 1024


class DecodedColumnCache:
    """LRU over decoded column arrays with a hard byte budget.

    ``get``/``put`` maintain hit/miss/eviction counters surfaced through
    :meth:`stats`; :meth:`peek` is counter-pure (metrics endpoints can
    probe without perturbing hit rates). :meth:`invalidate` drops every
    entry of one file — the file-handle cache calls it whenever a
    ``BATFile`` is evicted, dropped, or quarantined, so a rewritten or
    corrupt file can never serve stale columns.
    """

    def __init__(self, budget_bytes: int = DEFAULT_COLUMN_CACHE_BYTES):
        budget_bytes = int(budget_bytes)
        if budget_bytes < 0:
            raise ValueError("column cache budget must be >= 0")
        self.budget_bytes = budget_bytes
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, int, int], np.ndarray] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core --------------------------------------------------------------

    def get(self, path: str, treelet: int, column: int):
        """The cached array for one column, or ``None`` (counts hit/miss)."""
        key = (str(path), int(treelet), int(column))
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return arr

    def put(self, path: str, treelet: int, column: int, arr: np.ndarray) -> None:
        """Insert one decoded column, evicting LRU entries over budget.

        Arrays larger than the whole budget are not cached at all —
        admitting one would immediately evict everything else for a single
        entry that can never be amortized.
        """
        key = (str(path), int(treelet), int(column))
        nbytes = int(arr.nbytes)
        with self._lock:
            if nbytes > self.budget_bytes:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= int(old.nbytes)
            self._entries[key] = arr
            self._bytes += nbytes
            while self._bytes > self.budget_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= int(victim.nbytes)
                self.evictions += 1

    def peek(self, path: str, treelet: int, column: int):
        """Like :meth:`get` but touches neither counters nor LRU order."""
        with self._lock:
            return self._entries.get((str(path), int(treelet), int(column)))

    # -- invalidation ------------------------------------------------------

    def invalidate(self, path: str) -> int:
        """Drop every entry belonging to ``path``; returns entries removed."""
        path = str(path)
        with self._lock:
            doomed = [k for k in self._entries if k[0] == path]
            for k in doomed:
                self._bytes -= int(self._entries.pop(k).nbytes)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DecodedColumnCache(entries={len(self)}, bytes={self.nbytes}, "
            f"budget={self.budget_bytes})"
        )
