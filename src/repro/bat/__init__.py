"""The Binned Attribute Tree (BAT) — the paper's multiresolution layout.

A BAT (§III-C) is built on each aggregator over the particles it received:

1. a *shallow* k-d tree obtained from Karras's parallel radix-tree build
   over merged 12-bit Morton subprefixes (:mod:`repro.bat.build`),
2. a median-split k-d *treelet* inside each shallow leaf, storing a fixed
   number of stratified-sample LOD particles at every inner node and
   32-bit binned bitmaps at every node (:mod:`repro.bat.treelet`),
3. a compacted single-buffer file with 4 KB-aligned treelets and a shared
   bitmap dictionary (:mod:`repro.bat.compact`, :mod:`repro.bat.format`),
4. memory-mapped readers with spatial/attribute/progressive queries
   (:mod:`repro.bat.file`, :mod:`repro.bat.query`).
"""

from ..errors import IntegrityError
from .builder import BATBuildConfig, build_bat
from .file import BATFile
from .filecache import BATFileCache
from .integrity import scrub_dataset, scrub_file
from .neighbors import NeighborStats
from .query import AttributeFilter, QueryStats

__all__ = [
    "BATBuildConfig",
    "build_bat",
    "BATFile",
    "BATFileCache",
    "AttributeFilter",
    "IntegrityError",
    "QueryStats",
    "NeighborStats",
    "scrub_file",
    "scrub_dataset",
]
