"""Neighbor-list queries on BAT data: k-NN and fixed-radius.

Both query modes are answered from the treelet k-d hierarchy the files
already carry (Cavelan et al., arXiv 1910.02639): every treelet node's
bounding box bounds its own slot range, so a node whose box lies farther
from the query centers than the search radius (or the current k-th
neighbor bound) is pruned with its whole subtree, and only the surviving
nodes' particle ranges are gathered and distance-tested.

Two engines implement the same semantics:

- ``"tree"`` (default) — best-first/pruned traversal. Fixed-radius
  queries gather one candidate set per file (nodes within ``radius`` of
  the query region, measured box-to-box so the halo has round corners);
  k-NN runs a per-center best-first descent over files, shallow nodes,
  and treelet nodes, skipping every file whose bounds lie beyond the
  center's current k-th distance.
- ``"brute"`` — the exhaustive reference: opens every file, tests every
  particle. Kept byte-identical as the correctness oracle.

Determinism contract: per-center neighbor lists are ordered by
``(distance², leaf, treelet, slot)`` where ``(leaf, treelet, slot)`` is
the particle's global order-key (leaf-file index, treelet visit rank,
node-order slot — the same key scheme the streaming read path uses).
Distances are computed in one shared helper (:func:`dist2`, float64,
fixed operation order), keys are unique per particle, so the sort is a
total order and both engines — and any executor or shard layout —
produce the same selection. The box-level pruning bounds carry a tiny
relative slack so a float rounding at the prune boundary can only admit
an extra node (harmless), never drop a true neighbor.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from ..types import ParticleBatch
from .file import BATFile
from .format import LEAF_FLAG
from .query import _concat_ranges

__all__ = [
    "NeighborStats",
    "dist2",
    "radius_neighbors",
    "knn_neighbors",
    "brute_neighbors",
    "box_members",
    "materialize_rows",
]

#: relative slack on squared-distance prune bounds: float rounding at the
#: boundary may only keep an extra node, never drop a true neighbor
PRUNE_SLACK = 1e-9


@dataclass
class NeighborStats:
    """Work counters for one neighbor query; merged across files."""

    #: resolved query centers
    centers: int = 0
    treelets_visited: int = 0
    nodes_visited: int = 0
    #: candidate rows gathered out of surviving nodes
    points_tested: int = 0
    #: center × candidate distance evaluations
    pairs_tested: int = 0
    #: neighbor rows returned (sum of all per-center list lengths)
    points_returned: int = 0
    #: files skipped without opening them (planner halo prune + the k-NN
    #: engine's dynamic best-first skips)
    pruned_files: int = 0
    files_opened: int = 0
    #: files opened only for their ghost strip (they overlap the halo
    #: expansion but not the query region itself)
    ghost_files_opened: int = 0
    #: candidate particles exchanged out of ghost files — the ghost
    #: region traffic; never a full neighbor-file read
    ghost_points: int = 0
    quarantined_files: int = 0
    decoded_bytes: int = 0

    def merge(self, other: "NeighborStats") -> None:
        self.centers += other.centers
        self.treelets_visited += other.treelets_visited
        self.nodes_visited += other.nodes_visited
        self.points_tested += other.points_tested
        self.pairs_tested += other.pairs_tested
        self.points_returned += other.points_returned
        self.pruned_files += other.pruned_files
        self.files_opened += other.files_opened
        self.ghost_files_opened += other.ghost_files_opened
        self.ghost_points += other.ghost_points
        self.quarantined_files += other.quarantined_files
        self.decoded_bytes += other.decoded_bytes


# -- shared geometry kernels --------------------------------------------------


def dist2(positions: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Squared distances from ``(n, 3)`` float64 positions to one center.

    The one arithmetic path every engine shares: identical inputs give
    bit-identical outputs, which is what makes the tree engines'
    selections byte-comparable to the brute-force oracle.
    """
    d = positions - center
    return d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2]


def _boxes_point_d2(lo: np.ndarray, hi: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Min squared distance from ``(n, 3)`` boxes to one point."""
    g = np.maximum(lo - c, 0.0) + np.maximum(c - hi, 0.0)
    return g[:, 0] * g[:, 0] + g[:, 1] * g[:, 1] + g[:, 2] * g[:, 2]


def _boxes_box_d2(
    lo: np.ndarray, hi: np.ndarray, rlo: np.ndarray, rhi: np.ndarray
) -> np.ndarray:
    """Min squared distance from ``(n, 3)`` boxes to one region box.

    Lower-bounds the distance from any point of each box to any point of
    the region; comparing it against ``radius²`` is exactly the overlap
    test with the region's Euclidean (round-cornered) halo expansion.
    """
    g = np.maximum(rlo - hi, 0.0) + np.maximum(lo - rhi, 0.0)
    return g[:, 0] * g[:, 0] + g[:, 1] * g[:, 1] + g[:, 2] * g[:, 2]


def _point_box_d2(lo, hi, c) -> float:
    """Scalar min squared distance from one box to one point."""
    d2 = 0.0
    for i in range(3):
        g = float(lo[i]) - float(c[i])
        if g < 0.0:
            g = float(c[i]) - float(hi[i])
        if g < 0.0:
            g = 0.0
        d2 += g * g
    return d2


# -- pruned candidate gathering ----------------------------------------------


def _survivor_leaves(bat: BATFile, keep_fn, stats: NeighborStats) -> np.ndarray:
    """Shallow leaves passing ``keep_fn(lo, hi)``, in visit-rank order."""
    empty = np.empty(0, dtype=np.int64)
    root, root_is_leaf = bat.root()
    inner = empty if root_is_leaf else np.array([root], dtype=np.int64)
    leaves = np.array([root], dtype=np.int64) if root_is_leaf else empty
    found: list[np.ndarray] = []
    while inner.size or leaves.size:
        if leaves.size:
            stats.nodes_visited += len(leaves)
            bb = bat.shallow_leaves[leaves]["bbox"]
            keep = keep_fn(bb[:, :3].astype(np.float64), bb[:, 3:].astype(np.float64))
            if keep.any():
                found.append(leaves[keep])
        if inner.size:
            stats.nodes_visited += len(inner)
            recs = bat.shallow_inner[inner]
            bb = recs["bbox"]
            keep = keep_fn(bb[:, :3].astype(np.float64), bb[:, 3:].astype(np.float64))
            srecs = recs[keep]
            raw = np.concatenate([srecs["left"], srecs["right"]]).astype(np.uint32)
            is_leaf = (raw & LEAF_FLAG) != 0
            child = (raw & ~LEAF_FLAG).astype(np.int64)
            inner, leaves = child[~is_leaf], child[is_leaf]
        else:
            inner = leaves = empty
    if not found:
        return empty
    hits = np.concatenate(found)
    rank = bat.shallow_leaf_visit_rank()
    return hits[np.argsort(rank[hits])]


def _treelet_slots(tv, leaf_box, keep_fn, stats: NeighborStats) -> np.ndarray:
    """Slots of every particle owned by treelet nodes passing ``keep_fn``.

    Level-by-level frontier walk with vectorized box splitting (the
    :func:`~repro.bat.query._frontier_treelet` machinery at full
    quality): every surviving node contributes its whole own range, and
    descent continues only below surviving splits. Returned ascending.
    """
    nodes = tv.nodes
    ids = np.zeros(1, dtype=np.int64)
    lo = np.asarray(leaf_box.lower, dtype=np.float64).reshape(1, 3)
    hi = np.asarray(leaf_box.upper, dtype=np.float64).reshape(1, 3)
    out_lo: list[np.ndarray] = []
    out_hi: list[np.ndarray] = []
    out_ids: list[np.ndarray] = []
    while ids.size:
        stats.nodes_visited += len(ids)
        recs = nodes[ids]
        keep = keep_fn(lo, hi)
        if keep.any():
            beg = recs["begin"][keep].astype(np.int64)
            cnt = recs["count"][keep].astype(np.int64)
            nz = cnt > 0
            if nz.any():
                out_ids.append(ids[keep][nz])
                out_lo.append(beg[nz])
                out_hi.append((beg + cnt)[nz])
        desc = keep & (recs["axis"] >= 0)
        if not desc.any():
            break
        drecs = recs[desc]
        plo, phi = lo[desc], hi[desc]
        ax = drecs["axis"].astype(np.int64)
        sp = drecs["split"].astype(np.float64)
        rows = np.arange(len(drecs))
        lhi = phi.copy()
        lhi[rows, ax] = sp
        rlo = plo.copy()
        rlo[rows, ax] = sp
        ids = np.concatenate(
            [drecs["left"].astype(np.int64), drecs["right"].astype(np.int64)]
        )
        lo = np.concatenate([plo, rlo])
        hi = np.concatenate([lhi, phi])
    if not out_ids:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(np.concatenate(out_ids))
    return _concat_ranges(
        np.concatenate(out_lo)[order], np.concatenate(out_hi)[order]
    )


def _filter_mask(tv, slots, filters) -> np.ndarray | None:
    """Exact value mask over ``slots`` for the request's filters."""
    mask = None
    for f in filters:
        vals = tv.attributes[f.name][slots]
        fm = (vals >= f.lo) & (vals <= f.hi)
        mask = fm if mask is None else mask & fm
    return mask


def _gather_pruned(bat: BATFile, leaf_index: int, keep_fn, filters, stats):
    """Candidate ``(positions64, keys)`` of nodes passing ``keep_fn``."""
    vrank = bat.shallow_leaf_visit_rank()
    pos_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    for leaf in _survivor_leaves(bat, keep_fn, stats):
        leaf = int(leaf)
        stats.treelets_visited += 1
        tv = bat.treelet(leaf)
        slots = _treelet_slots(tv, bat.leaf_box(leaf), keep_fn, stats)
        if not slots.size:
            continue
        stats.points_tested += len(slots)
        mask = _filter_mask(tv, slots, filters)
        if mask is not None:
            slots = slots[mask]
            if not slots.size:
                continue
        keys = np.empty((len(slots), 3), dtype=np.int64)
        keys[:, 0] = leaf_index
        keys[:, 1] = vrank[leaf]
        keys[:, 2] = slots
        pos_parts.append(tv.positions[slots].astype(np.float64))
        key_parts.append(keys)
    if not pos_parts:
        return np.empty((0, 3), dtype=np.float64), np.empty((0, 3), dtype=np.int64)
    return np.concatenate(pos_parts, axis=0), np.concatenate(key_parts, axis=0)


def _gather_all(bat: BATFile, leaf_index: int, filters, stats):
    """Every particle of one file, filtered, in (visit rank, slot) order."""
    vrank = bat.shallow_leaf_visit_rank()
    pos_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    for leaf in np.argsort(vrank):
        leaf = int(leaf)
        stats.treelets_visited += 1
        tv = bat.treelet(leaf)
        n = tv.n_points
        if not n:
            continue
        stats.points_tested += n
        slots = np.arange(n, dtype=np.int64)
        mask = _filter_mask(tv, slots, filters)
        if mask is not None:
            slots = slots[mask]
            if not slots.size:
                continue
        keys = np.empty((len(slots), 3), dtype=np.int64)
        keys[:, 0] = leaf_index
        keys[:, 1] = vrank[leaf]
        keys[:, 2] = slots
        pos_parts.append(tv.positions[slots].astype(np.float64))
        key_parts.append(keys)
    if not pos_parts:
        return np.empty((0, 3), dtype=np.float64), np.empty((0, 3), dtype=np.int64)
    return np.concatenate(pos_parts, axis=0), np.concatenate(key_parts, axis=0)


def box_members(bat: BATFile, leaf_index: int, box, filters, stats):
    """Stored particles inside ``box`` (exact), in canonical key order.

    Resolves a ``center_box`` into query centers: ``(positions64,
    keys)`` ascending in ``(treelet visit rank, slot)`` — concatenating
    files in leaf order yields the dataset-wide canonical center order.
    """
    blo = np.asarray(box.lower, dtype=np.float64)
    bhi = np.asarray(box.upper, dtype=np.float64)

    def overlaps(lo, hi):
        return np.all((lo <= bhi) & (hi >= blo) & (lo <= hi), axis=1)

    vrank = bat.shallow_leaf_visit_rank()
    pos_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    for leaf in _survivor_leaves(bat, overlaps, stats):
        leaf = int(leaf)
        stats.treelets_visited += 1
        tv = bat.treelet(leaf)
        slots = _treelet_slots(tv, bat.leaf_box(leaf), overlaps, stats)
        if not slots.size:
            continue
        stats.points_tested += len(slots)
        pos = tv.positions[slots]
        mask = box.contains_points(pos)
        fm = _filter_mask(tv, slots, filters)
        if fm is not None:
            mask &= fm
        if not mask.any():
            continue
        slots = slots[mask]
        keys = np.empty((len(slots), 3), dtype=np.int64)
        keys[:, 0] = leaf_index
        keys[:, 1] = vrank[leaf]
        keys[:, 2] = slots
        pos_parts.append(pos[mask].astype(np.float64))
        key_parts.append(keys)
    if not pos_parts:
        return np.empty((0, 3), dtype=np.float64), np.empty((0, 3), dtype=np.int64)
    return np.concatenate(pos_parts, axis=0), np.concatenate(key_parts, axis=0)


# -- per-center selection (shared by tree and brute engines) ------------------


def _empty_selection(n_centers: int):
    return (
        np.zeros(n_centers + 1, dtype=np.int64),
        np.empty((0, 3), dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )


#: pair-count product past which select_radius hashes candidates into a
#: uniform grid instead of testing every (center, candidate) pair
_GRID_THRESHOLD = 1 << 22


def _radius_grid(cand_pos: np.ndarray, cell: float):
    """Hash candidates into a uniform grid: ``{cell_coords: index array}``.

    ``cell`` is slightly larger than the query radius, so every true
    neighbor of a center lies in the 27 cells around the center's own —
    the per-center candidate subset is an exact superset, and the
    selection the caller computes over it is unchanged (same ``dist2``
    values, same tie-break order).
    """
    cells = np.floor(cand_pos / cell).astype(np.int64)
    order = np.lexsort((cells[:, 2], cells[:, 1], cells[:, 0]))
    sc = cells[order]
    change = np.flatnonzero(np.any(sc[1:] != sc[:-1], axis=1)) + 1
    starts = np.concatenate([[0], change, [len(sc)]])
    return {
        tuple(sc[a]): order[a:b]
        for a, b in zip(starts[:-1], starts[1:])
    }


def select_radius(centers, cand_pos, cand_keys, radius, stats: NeighborStats):
    """Per-center CSR selection of candidates within ``radius``.

    Returns ``(offsets, keys, d2)`` with each center's rows ordered by
    ``(d2, leaf, treelet, slot)`` — the deterministic tie-break. The
    keep test ``d2 <= radius**2`` is exact (no slack): both engines run
    this same selection, so rounding at the boundary is common to both.
    """
    r2 = np.float64(radius) * np.float64(radius)
    offsets = np.zeros(len(centers) + 1, dtype=np.int64)
    key_parts: list[np.ndarray] = []
    d2_parts: list[np.ndarray] = []
    grid = cell = None
    if len(cand_pos) and len(centers) * len(cand_pos) > _GRID_THRESHOLD:
        # margin over the radius so float rounding in the cell division
        # can never push a boundary neighbor out of the 27-cell stencil
        cell = float(radius) * (1.0 + 1e-6)
        grid = _radius_grid(cand_pos, cell)
    for i, c in enumerate(centers):
        n = 0
        if len(cand_pos):
            if grid is None:
                idx = None
                pos, keys = cand_pos, cand_keys
            else:
                cx, cy, cz = np.floor(
                    np.asarray(c, dtype=np.float64) / cell
                ).astype(np.int64)
                parts = []
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            hit = grid.get((cx + dx, cy + dy, cz + dz))
                            if hit is not None:
                                parts.append(hit)
                if not parts:
                    offsets[i + 1] = offsets[i]
                    continue
                idx = np.concatenate(parts)
                pos, keys = cand_pos[idx], cand_keys[idx]
            stats.pairs_tested += len(pos)
            d2 = dist2(pos, c)
            hit = np.flatnonzero(d2 <= r2)
            if hit.size:
                hd2 = d2[hit]
                hk = keys[hit]
                order = np.lexsort((hk[:, 2], hk[:, 1], hk[:, 0], hd2))
                key_parts.append(hk[order])
                d2_parts.append(hd2[order])
                n = hit.size
        offsets[i + 1] = offsets[i] + n
    if not key_parts:
        return _empty_selection(len(centers))
    return (
        offsets,
        np.concatenate(key_parts, axis=0),
        np.concatenate(d2_parts),
    )


def select_knn(centers, cand_pos, cand_keys, k, stats: NeighborStats):
    """Per-center CSR selection of the ``k`` nearest candidates."""
    offsets = np.zeros(len(centers) + 1, dtype=np.int64)
    key_parts: list[np.ndarray] = []
    d2_parts: list[np.ndarray] = []
    for i, c in enumerate(centers):
        n = 0
        if len(cand_pos):
            stats.pairs_tested += len(cand_pos)
            d2 = dist2(cand_pos, c)
            order = np.lexsort(
                (cand_keys[:, 2], cand_keys[:, 1], cand_keys[:, 0], d2)
            )[:k]
            key_parts.append(cand_keys[order])
            d2_parts.append(d2[order])
            n = len(order)
        offsets[i + 1] = offsets[i] + n
    if not key_parts:
        return _empty_selection(len(centers))
    return (
        offsets,
        np.concatenate(key_parts, axis=0),
        np.concatenate(d2_parts),
    )


# -- engines ------------------------------------------------------------------


def radius_neighbors(files, open_file, centers, radius, region, filters, stats):
    """Tree engine, fixed-radius mode.

    ``files`` are the planner's :class:`NeighborFilePlan` entries (the
    halo survivors); ``open_file(fp)`` returns a handle or ``None`` for
    a quarantined file. Per file, only the nodes within ``radius`` of
    the query region are gathered — ghost files contribute exactly their
    ghost-strip particles, never a full read.
    """
    rlo = np.asarray(region.lower, dtype=np.float64)
    rhi = np.asarray(region.upper, dtype=np.float64)
    r2 = float(radius) * float(radius)
    r2s = r2 * (1.0 + PRUNE_SLACK)

    def near(lo, hi):
        return _boxes_box_d2(lo, hi, rlo, rhi) <= r2s

    pos_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    for fp in files:
        bat = open_file(fp)
        if bat is None:
            continue
        pos, keys = _gather_pruned(bat, fp.leaf_index, near, filters, stats)
        if fp.action == "ghost":
            stats.ghost_points += len(pos)
        if len(pos):
            pos_parts.append(pos)
            key_parts.append(keys)
    if not pos_parts:
        cand_pos = np.empty((0, 3), dtype=np.float64)
        cand_keys = np.empty((0, 3), dtype=np.int64)
    else:
        cand_pos = np.concatenate(pos_parts, axis=0)
        cand_keys = np.concatenate(key_parts, axis=0)
    return select_radius(centers, cand_pos, cand_keys, radius, stats)


def brute_neighbors(files, open_file, centers, k, radius, filters, stats):
    """The exhaustive reference: every file opened, every particle tested."""
    pos_parts: list[np.ndarray] = []
    key_parts: list[np.ndarray] = []
    for fp in files:
        bat = open_file(fp)
        if bat is None:
            continue
        pos, keys = _gather_all(bat, fp.leaf_index, filters, stats)
        if len(pos):
            pos_parts.append(pos)
            key_parts.append(keys)
    if not pos_parts:
        cand_pos = np.empty((0, 3), dtype=np.float64)
        cand_keys = np.empty((0, 3), dtype=np.int64)
    else:
        cand_pos = np.concatenate(pos_parts, axis=0)
        cand_keys = np.concatenate(key_parts, axis=0)
    if radius is not None:
        return select_radius(centers, cand_pos, cand_keys, radius, stats)
    return select_knn(centers, cand_pos, cand_keys, k, stats)


class _BestK:
    """One center's running k-best set, ordered by (d2, key)."""

    __slots__ = ("k", "d2", "keys")

    def __init__(self, k: int):
        self.k = k
        self.d2 = np.empty(0, dtype=np.float64)
        self.keys = np.empty((0, 3), dtype=np.int64)

    def bound(self) -> float:
        """Current k-th squared distance (inf while under-filled)."""
        if len(self.d2) < self.k:
            return np.inf
        return float(self.d2[self.k - 1])

    def add(self, d2: np.ndarray, keys: np.ndarray) -> None:
        b = self.bound()
        if np.isfinite(b):
            # non-strict: an equal-distance candidate with a smaller key
            # must still be able to displace the current k-th entry
            sel = d2 <= b
            d2, keys = d2[sel], keys[sel]
        if not len(d2):
            return
        d2 = np.concatenate([self.d2, d2])
        keys = np.concatenate([self.keys, keys], axis=0)
        order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0], d2))[: self.k]
        self.d2 = d2[order]
        self.keys = keys[order]


def _knn_file(bat, leaf_index, centers, need, best, filters, stats):
    """Best-first descent of one file for each center in ``need``."""
    vrank = bat.shallow_leaf_visit_rank()
    tvs: dict[int, object] = {}
    pos64: dict[int, np.ndarray] = {}
    fmask: dict[int, np.ndarray | None] = {}

    def treelet(leaf: int):
        tv = tvs.get(leaf)
        if tv is None:
            tv = tvs[leaf] = bat.treelet(leaf)
            stats.treelets_visited += 1
        return tv

    for ci in need:
        c = centers[ci]
        b = best[ci]
        seq = itertools.count()
        heap: list[tuple] = []
        root, root_is_leaf = bat.root()
        rec = (bat.shallow_leaves if root_is_leaf else bat.shallow_inner)[root]
        bb = rec["bbox"]
        heapq.heappush(
            heap,
            (_point_box_d2(bb[:3], bb[3:], c), next(seq), "s", root, root_is_leaf),
        )
        while heap:
            entry = heapq.heappop(heap)
            if entry[0] > b.bound() * (1.0 + PRUNE_SLACK):
                break  # min-heap: every remaining node is at least this far
            stats.nodes_visited += 1
            kind = entry[2]
            if kind == "s":
                idx, is_leaf = entry[3], entry[4]
                if is_leaf:
                    tv = treelet(idx)
                    lb = bat.leaf_box(idx)
                    heapq.heappush(
                        heap,
                        (
                            entry[0], next(seq), "t", idx, 0,
                            np.asarray(lb.lower, dtype=np.float64),
                            np.asarray(lb.upper, dtype=np.float64),
                        ),
                    )
                else:
                    for child, child_is_leaf in bat.children(idx):
                        crec = (
                            bat.shallow_leaves if child_is_leaf
                            else bat.shallow_inner
                        )[child]
                        cb = crec["bbox"]
                        heapq.heappush(
                            heap,
                            (
                                _point_box_d2(cb[:3], cb[3:], c),
                                next(seq), "s", child, child_is_leaf,
                            ),
                        )
                continue
            leaf, node_id, lo, hi = entry[3], entry[4], entry[5], entry[6]
            tv = treelet(leaf)
            rec = tv.nodes[node_id]
            begin = int(rec["begin"])
            count = int(rec["count"])
            if count:
                p = pos64.get(leaf)
                if p is None:
                    p = pos64[leaf] = tv.positions.astype(np.float64)
                    if filters:
                        fmask[leaf] = _filter_mask(
                            tv, np.arange(len(p), dtype=np.int64), filters
                        )
                    else:
                        fmask[leaf] = None
                stats.points_tested += count
                stats.pairs_tested += count
                seg = p[begin:begin + count]
                d2 = dist2(seg, c)
                slots = np.arange(begin, begin + count, dtype=np.int64)
                fm = fmask[leaf]
                if fm is not None:
                    sel = fm[begin:begin + count]
                    d2, slots = d2[sel], slots[sel]
                if len(d2):
                    keys = np.empty((len(slots), 3), dtype=np.int64)
                    keys[:, 0] = leaf_index
                    keys[:, 1] = vrank[leaf]
                    keys[:, 2] = slots
                    b.add(d2, keys)
            if rec["axis"] >= 0:
                ax = int(rec["axis"])
                sp = float(rec["split"])
                lhi = hi.copy()
                lhi[ax] = sp
                rlo = lo.copy()
                rlo[ax] = sp
                for cid, clo, chi in (
                    (int(rec["left"]), lo, lhi),
                    (int(rec["right"]), rlo, hi),
                ):
                    heapq.heappush(
                        heap,
                        (
                            _point_box_d2(clo, chi, c),
                            next(seq), "t", leaf, cid, clo, chi,
                        ),
                    )


def knn_neighbors(files, open_file, centers, k, filters, stats):
    """Tree engine, k-NN mode: best-first over files, then within files.

    Files are visited in ascending min-distance order; a file is opened
    only while some center's k-th bound still reaches into its bounds —
    everything else is skipped unopened (counted in ``pruned_files``).
    """
    n_centers = len(centers)
    if not files or n_centers == 0:
        stats.pruned_files += len(files)
        return _empty_selection(n_centers)
    lo = np.array([fp.bounds.lower for fp in files], dtype=np.float64)
    hi = np.array([fp.bounds.upper for fp in files], dtype=np.float64)
    # (F, C) min squared distance from each file's bounds to each center
    fd2 = np.stack([_boxes_point_d2(lo, hi, c) for c in centers], axis=1)
    order = np.argsort(fd2.min(axis=1), kind="stable")
    best = [_BestK(k) for _ in range(n_centers)]
    for fi in order:
        col = fd2[int(fi)]
        need = [
            ci for ci in range(n_centers)
            if col[ci] <= best[ci].bound() * (1.0 + PRUNE_SLACK)
        ]
        if not need:
            stats.pruned_files += 1
            continue
        fp = files[int(fi)]
        bat = open_file(fp)
        if bat is None:
            continue
        _knn_file(bat, fp.leaf_index, centers, need, best, filters, stats)
    offsets = np.zeros(n_centers + 1, dtype=np.int64)
    for i, b in enumerate(best):
        offsets[i + 1] = offsets[i] + len(b.d2)
    if offsets[-1] == 0:
        return _empty_selection(n_centers)
    return (
        offsets,
        np.concatenate([b.keys for b in best], axis=0),
        np.concatenate([b.d2 for b in best]),
    )


# -- shared row materialization ----------------------------------------------


def materialize_rows(open_treelet, keys, specs, attributes, with_positions):
    """Fetch the selected rows into one :class:`ParticleBatch`.

    ``keys`` is the ``(N, 3)`` selection in final output order;
    ``open_treelet(leaf_index, treelet_rank)`` resolves a key prefix to
    its :class:`~repro.bat.file.TreeletView`. Rows are fetched grouped
    per (file, treelet) for locality, then scattered back into key
    order — both engines materialize through this one path, so equal
    selections produce byte-identical batches.
    """
    sel_specs = [
        sp for sp in specs if attributes is None or sp.name in attributes
    ]
    n = len(keys)
    if n == 0:
        return ParticleBatch.empty(sel_specs, with_positions=with_positions)
    pos = np.empty((n, 3), dtype=np.float32) if with_positions else None
    attrs = {
        sp.name: np.empty(n, dtype=sp.dtype) for sp in sel_specs
    }
    order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
    sk = keys[order]
    change = np.flatnonzero(
        (sk[1:, 0] != sk[:-1, 0]) | (sk[1:, 1] != sk[:-1, 1])
    ) + 1
    bounds = np.concatenate([[0], change, [n]])
    for a, b in zip(bounds[:-1], bounds[1:]):
        tv = open_treelet(int(sk[a, 0]), int(sk[a, 1]))
        rows = order[a:b]
        slots = sk[a:b, 2]
        if pos is not None:
            pos[rows] = tv.positions[slots]
        for name, out in attrs.items():
            out[rows] = tv.attributes[name][slots]
    return ParticleBatch(pos, attrs, count=n)
