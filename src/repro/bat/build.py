"""Bottom-up shallow-tree construction (paper §III-C1).

Karras's algorithm builds a radix tree over a sorted array of unique Morton
codes: inner node *i* sits between leaves *i* and *i+1*, its covered range
and split found from common-prefix lengths, and the whole construction is
data-parallel. We follow the paper's modification: instead of full-precision
codes (one particle per leaf), each particle contributes only a *subprefix*
(12 bits by default) and shared subprefixes merge, so each leaf of the
resulting shallow tree holds the large group of particles that fall in one
coarse Morton cell. A treelet is then built inside each leaf
(:mod:`repro.bat.treelet`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..morton import MAX_BITS

__all__ = ["RadixTree", "build_radix_tree", "shallow_tree_leaves"]

DEFAULT_SUBPREFIX_BITS = 12


@dataclass
class RadixTree:
    """Karras radix tree over ``n`` sorted unique codes.

    ``n - 1`` inner nodes. ``left``/``right`` index inner nodes, unless the
    matching ``*_is_leaf`` flag is set, in which case they index leaves
    (i.e. positions in the sorted code array). A single-code input has no
    inner nodes and the tree is just that one leaf.
    """

    n_leaves: int
    left: np.ndarray
    right: np.ndarray
    left_is_leaf: np.ndarray
    right_is_leaf: np.ndarray
    #: inner-node index of the root (0 by Karras's construction), or -1 if
    #: the tree is a single leaf
    root: int

    @property
    def n_inner(self) -> int:
        return len(self.left)

    def parents(self) -> tuple[np.ndarray, np.ndarray]:
        """(inner parent per inner node, inner parent per leaf); −1 for root."""
        ip = np.full(self.n_inner, -1, dtype=np.int64)
        lp = np.full(self.n_leaves, -1, dtype=np.int64)
        for i in range(self.n_inner):
            for child, is_leaf in ((self.left[i], self.left_is_leaf[i]),
                                   (self.right[i], self.right_is_leaf[i])):
                if is_leaf:
                    lp[child] = i
                else:
                    ip[child] = i
        return ip, lp


def _delta(codes: np.ndarray, i: int, j: int, code_bits: int) -> int:
    """Common-prefix length of codes i and j; −1 when j is out of range."""
    n = len(codes)
    if j < 0 or j >= n:
        return -1
    x = int(codes[i]) ^ int(codes[j])
    if x == 0:
        # Karras's duplicate-key fallback; unreachable for unique codes.
        return code_bits + 32
    return code_bits - x.bit_length()


def build_radix_tree(codes: np.ndarray, code_bits: int) -> RadixTree:
    """Build the radix tree over sorted *unique* ``codes``.

    ``code_bits`` is the significant bit width of the codes (e.g. 12 for the
    default shallow subprefix). Follows Karras 2012 §4: each inner node
    determines its direction, range, and split via prefix-length binary
    searches, all independent of the others.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    n = len(codes)
    if n == 0:
        raise ValueError("cannot build a radix tree over zero codes")
    if n > 1:
        d = np.diff(codes.astype(object))
        if any(x <= 0 for x in d):
            raise ValueError("codes must be sorted and unique")
    if n == 1:
        return RadixTree(
            n_leaves=1,
            left=np.empty(0, np.int64),
            right=np.empty(0, np.int64),
            left_is_leaf=np.empty(0, bool),
            right_is_leaf=np.empty(0, bool),
            root=-1,
        )

    left = np.empty(n - 1, dtype=np.int64)
    right = np.empty(n - 1, dtype=np.int64)
    left_leaf = np.empty(n - 1, dtype=bool)
    right_leaf = np.empty(n - 1, dtype=bool)

    for i in range(n - 1):
        # direction of the range containing i
        d = 1 if _delta(codes, i, i + 1, code_bits) > _delta(codes, i, i - 1, code_bits) else -1
        delta_min = _delta(codes, i, i - d, code_bits)
        # find upper bound of range length
        lmax = 2
        while _delta(codes, i, i + lmax * d, code_bits) > delta_min:
            lmax *= 2
        # binary search exact range end
        length = 0
        t = lmax // 2
        while t >= 1:
            if _delta(codes, i, i + (length + t) * d, code_bits) > delta_min:
                length += t
            t //= 2
        j = i + length * d
        # binary search the split position
        delta_node = _delta(codes, i, j, code_bits)
        s = 0
        t = (length + 1) // 2
        while True:
            if _delta(codes, i, i + (s + t) * d, code_bits) > delta_node:
                s += t
            if t == 1:
                break
            t = (t + 1) // 2
        gamma = i + s * d + min(d, 0)

        left[i] = gamma
        right[i] = gamma + 1
        left_leaf[i] = min(i, j) == gamma
        right_leaf[i] = max(i, j) == gamma + 1

    return RadixTree(
        n_leaves=n, left=left, right=right,
        left_is_leaf=left_leaf, right_is_leaf=right_leaf, root=0,
    )


def shallow_tree_leaves(
    sorted_codes: np.ndarray, subprefix_bits: int = DEFAULT_SUBPREFIX_BITS, bits: int = MAX_BITS
) -> tuple[np.ndarray, np.ndarray]:
    """Merge shared subprefixes of sorted full Morton codes (§III-C1).

    Returns ``(unique_subprefixes, leaf_starts)`` where ``leaf_starts`` has
    one extra trailing entry so leaf *k*'s particles are the slice
    ``sorted order[leaf_starts[k]:leaf_starts[k+1]]``.
    """
    if not 3 <= subprefix_bits <= 3 * bits:
        raise ValueError("subprefix_bits out of range")
    codes = np.asarray(sorted_codes, dtype=np.uint64)
    sub = codes >> np.uint64(3 * bits - subprefix_bits)
    uniq, starts = np.unique(sub, return_index=True)
    starts = np.append(starts, len(codes))
    return uniq, starts
