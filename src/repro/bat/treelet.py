"""Median-split treelets with LOD sampling (paper §III-C2).

A treelet is built over the particles of one shallow-tree leaf. Every inner
node sets aside a fixed number of *LOD particles*, chosen by stratified
sampling from its (Morton-sorted, hence spatially stratified) input, and
passes the rest to its children — no particle is duplicated and none is
invented, so the layout costs no extra memory for multiresolution.

Particles are emitted in *node order*: depth-first pre-order, each node's
own particles (LOD set for inner nodes, everything for leaves) first, then
the left subtree, then the right. Two consequences the file format relies
on:

- a node's own particles are the contiguous slice ``[begin, begin+count)``;
- a node's entire *subtree* is the contiguous slice ``[begin, subtree_end)``,
  so coarse-to-fine reads are sequential I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmaps import bitmaps_by_group

__all__ = [
    "Treelet",
    "build_treelet",
    "treelet_node_bitmaps",
    "propagate_bitmaps_bottom_up",
]


@dataclass
class Treelet:
    """Array-of-struct treelet produced by :func:`build_treelet`.

    All arrays have one entry per node. ``axis == -1`` marks a leaf.
    ``order`` maps node-order slots back to the caller's particle indices:
    particle ``order[k]`` occupies slot ``k``.
    """

    axis: np.ndarray  # int8, -1 for leaves
    split: np.ndarray  # float32, split plane position (inner only)
    left: np.ndarray  # int32 node index, -1 for leaves
    right: np.ndarray  # int32 node index, -1 for leaves
    begin: np.ndarray  # uint32, first own-particle slot
    count: np.ndarray  # uint32, number of own particles
    subtree_end: np.ndarray  # uint32, end slot of the whole subtree
    depth: np.ndarray  # uint16
    parent: np.ndarray  # int32, -1 for root
    order: np.ndarray  # int64 permutation of the input particle indices

    @property
    def n_nodes(self) -> int:
        return len(self.axis)

    @property
    def n_points(self) -> int:
        return len(self.order)

    @property
    def max_depth(self) -> int:
        return int(self.depth.max()) if self.n_nodes else 0

    def is_leaf(self, node: int) -> bool:
        return self.axis[node] < 0

    def validate(self) -> None:
        """Structural invariants, fully vectorized; cheap on large trees."""
        n = self.n_nodes
        if n == 0:
            raise ValueError("empty treelet")
        b = self.begin.astype(np.int64)
        c = self.count.astype(np.int64)
        e = self.subtree_end.astype(np.int64)
        bad = np.nonzero(~((b + c <= e) & (e <= self.n_points)))[0]
        if len(bad):
            i = int(bad[0])
            raise ValueError(f"node {i}: bad slice [{b[i]}, {b[i] + c[i]}, {e[i]})")
        inner = np.nonzero(self.axis >= 0)[0]
        if len(inner):
            l = self.left[inner].astype(np.int64)
            r = self.right[inner].astype(np.int64)
            bad = np.nonzero(~((inner < l) & (l < n) & (inner < r) & (r < n)))[0]
            if len(bad):
                raise ValueError(f"node {inner[bad[0]]}: children must follow parent")
            bad = np.nonzero((b[l] != b[inner] + c[inner]) | (e[r] != e[inner]))[0]
            if len(bad):
                raise ValueError(f"node {inner[bad[0]]}: children do not tile subtree")
            bad = np.nonzero(e[l] != b[r])[0]
            if len(bad):
                raise ValueError(f"node {inner[bad[0]]}: gap between children")
        # multiplicity of own-slot coverage via a difference array: +1 at
        # begin, -1 at begin+count, prefix-sum == 1 everywhere iff the
        # node slices partition [0, n_points)
        cover = np.zeros(self.n_points + 1, dtype=np.int64)
        np.add.at(cover, b, 1)
        np.add.at(cover, b + c, -1)
        if (np.cumsum(cover[:-1]) != 1).any():
            raise ValueError("node-order slots do not partition the particles")
        if (
            self.order.min(initial=0) < 0
            or self.order.max(initial=-1) >= self.n_points
            or len(np.unique(self.order)) != self.n_points
        ):
            raise ValueError("order is not a permutation")


def _stratified_sample(n: int, k: int) -> np.ndarray:
    """k stratum midpoints out of n slots (indices, ascending)."""
    return (np.arange(k, dtype=np.int64) * n + n // 2) // k


def build_treelet(
    positions: np.ndarray, lod_per_node: int = 8, max_leaf_points: int = 128
) -> Treelet:
    """Build a median-split k-d treelet over ``(n, 3)`` positions.

    ``positions`` should arrive Morton-sorted (as they do from the shallow
    build) so the stratified LOD sample is spatially representative. A node
    with at most ``max_leaf_points`` particles (or too few to both sample
    LOD and split) becomes a leaf.
    """
    positions = np.asarray(positions, dtype=np.float32).reshape(-1, 3)
    n = len(positions)
    if n == 0:
        raise ValueError("cannot build a treelet over zero particles")
    if lod_per_node < 1:
        raise ValueError("lod_per_node must be >= 1")
    if max_leaf_points < 1:
        raise ValueError("max_leaf_points must be >= 1")

    axis_l: list[int] = []
    split_l: list[float] = []
    left_l: list[int] = []
    right_l: list[int] = []
    begin_l: list[int] = []
    count_l: list[int] = []
    end_l: list[int] = []
    depth_l: list[int] = []
    parent_l: list[int] = []
    order = np.empty(n, dtype=np.int64)

    cursor = 0

    def emit(idx: np.ndarray, depth: int, parent: int) -> int:
        nonlocal cursor
        node = len(axis_l)
        m = len(idx)
        # Leaf when small enough, or when splitting would leave a child
        # empty after the LOD sample is set aside.
        if m <= max_leaf_points or m - lod_per_node < 2:
            axis_l.append(-1)
            split_l.append(0.0)
            left_l.append(-1)
            right_l.append(-1)
            begin_l.append(cursor)
            count_l.append(m)
            end_l.append(cursor + m)
            depth_l.append(depth)
            parent_l.append(parent)
            order[cursor : cursor + m] = idx
            cursor += m
            return node

        # Inner node: stratified LOD sample from the (sorted) input.
        sel = _stratified_sample(m, lod_per_node)
        mask = np.zeros(m, dtype=bool)
        mask[sel] = True
        lod_idx = idx[mask]
        rest = idx[~mask]

        pts = positions[rest]
        extents = pts.max(axis=0) - pts.min(axis=0)
        ax = int(np.argmax(extents))
        coords = pts[:, ax]
        mid = len(rest) // 2
        part = np.argpartition(coords, mid)
        split_pos = float(coords[part[mid]])
        left_idx = rest[part[:mid]]
        right_idx = rest[part[mid:]]

        axis_l.append(ax)
        split_l.append(split_pos)
        left_l.append(-1)  # patched below
        right_l.append(-1)
        begin_l.append(cursor)
        count_l.append(len(lod_idx))
        end_l.append(-1)  # patched below
        depth_l.append(depth)
        parent_l.append(parent)
        order[cursor : cursor + len(lod_idx)] = lod_idx
        cursor += len(lod_idx)

        left_id = emit(left_idx, depth + 1, node)
        right_id = emit(right_idx, depth + 1, node)
        left_l[node] = left_id
        right_l[node] = right_id
        end_l[node] = end_l[right_id]
        return node

    import sys

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 10_000))
    try:
        emit(np.arange(n, dtype=np.int64), 0, -1)
    finally:
        sys.setrecursionlimit(old)

    return Treelet(
        axis=np.array(axis_l, dtype=np.int8),
        split=np.array(split_l, dtype=np.float32),
        left=np.array(left_l, dtype=np.int32),
        right=np.array(right_l, dtype=np.int32),
        begin=np.array(begin_l, dtype=np.uint32),
        count=np.array(count_l, dtype=np.uint32),
        subtree_end=np.array(end_l, dtype=np.uint32),
        depth=np.array(depth_l, dtype=np.uint16),
        parent=np.array(parent_l, dtype=np.int32),
        order=order,
    )


def propagate_bitmaps_bottom_up(
    axis: np.ndarray,
    depth: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    bitmaps: np.ndarray,
) -> np.ndarray:
    """OR children's bitmaps into their parents, in place, level by level.

    Replaces the per-node Python reverse sweep with one vectorized gather
    per tree level: children sit exactly one level below their parent, so
    processing inner nodes deepest-first means every child is final when
    its parent reads it. Each inner node appears once per level, so plain
    fancy indexing suffices (no unbuffered ``ufunc.at``).

    Works unchanged on a single treelet or a whole *forest* of treelets
    stacked into one node array (with ``left``/``right`` rebased to global
    node ids), and on 1-D ``(n_nodes,)`` or 2-D ``(n_nodes, n_attrs)``
    bitmap arrays.
    """
    axis = np.asarray(axis)
    inner = np.nonzero(axis >= 0)[0]
    if len(inner) == 0:
        return bitmaps
    depth = np.asarray(depth)
    left = np.asarray(left)
    right = np.asarray(right)
    idepth = depth[inner]
    for d in np.unique(idepth)[::-1]:
        sel = inner[idepth == d]
        bitmaps[sel] |= bitmaps[left[sel]] | bitmaps[right[sel]]
    return bitmaps


def treelet_node_bitmaps(
    treelet: Treelet,
    values_node_order: np.ndarray,
    lo: float | None = None,
    hi: float | None = None,
    binning=None,
) -> np.ndarray:
    """Per-node bitmaps for one attribute (§III-C2).

    ``values_node_order`` is the attribute in node order. Leaf bitmaps cover
    the leaf's particles; inner bitmaps are the OR of their children plus
    their own LOD particles — computed bottom-up with one vectorized pass
    per tree level.

    Pass either an explicit ``binning`` scheme or the equi-width ``(lo, hi)``
    range (the paper's default).
    """
    n_nodes = treelet.n_nodes
    # node-order emission makes own-slot slices contiguous, ascending, and
    # tiling, so the slot->node map is a single repeat
    owner = np.repeat(np.arange(n_nodes, dtype=np.int64), treelet.count.astype(np.int64))
    if binning is not None:
        bitmaps = binning.group_bitmaps(values_node_order, owner, n_nodes)
    else:
        if lo is None or hi is None:
            raise ValueError("provide a binning or an explicit (lo, hi) range")
        bitmaps = bitmaps_by_group(values_node_order, owner, n_nodes, lo, hi)
    return propagate_bitmaps_bottom_up(
        treelet.axis, treelet.depth, treelet.left, treelet.right, bitmaps
    )
