"""Command-line tools: inspect, query, and benchmark BAT data.

Usage::

    python -m repro info out/ts0000.meta.json        # dataset manifest
    python -m repro info out/ts0000.00003.bat        # one leaf file
    python -m repro query out/ts0000.meta.json --quality 0.2 \
        --box 0,0,0,1,1,1 --filter temperature:300:400 --stats
    python -m repro serve out/ts0000.meta.json --capacity 4 --concurrency 8
    python -m repro bench weak-scaling --machine stampede2 --ranks 96,384,1536
    python -m repro scrub out/ts0000.meta.json        # verify every checksum

Every subcommand prints plain text; nothing is modified on disk.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from . import machines
from .api import NEIGHBOR_ENGINES, NeighborRequest, QueryRequest, open_dataset
from .bat.file import BATFile
from .bat.query import ENGINES, AttributeFilter
from .core.metadata import DatasetMetadata
from .types import Box

__all__ = ["main"]


def _parse_box(spec: str) -> Box:
    vals = [float(x) for x in spec.split(",")]
    if len(vals) != 6:
        raise argparse.ArgumentTypeError("box must be 'x0,y0,z0,x1,y1,z1'")
    return Box(tuple(vals[:3]), tuple(vals[3:]))


def _parse_filter(spec: str) -> AttributeFilter:
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("filter must be 'name:lo:hi'")
    return AttributeFilter(parts[0], float(parts[1]), float(parts[2]))


def _parse_point(spec: str) -> tuple:
    vals = [float(x) for x in spec.split(",")]
    if len(vals) != 3:
        raise argparse.ArgumentTypeError("point must be 'x,y,z'")
    return tuple(vals)


def _machine(name: str):
    try:
        return getattr(machines, name)()
    except AttributeError:
        raise argparse.ArgumentTypeError(f"unknown machine {name!r}") from None


def _cmd_info(args) -> int:
    path = Path(args.path)
    if path.suffix == ".json":
        meta = DatasetMetadata.load(path)
        print(f"dataset: {path}")
        print(f"  written by {meta.nranks} ranks into {meta.n_files} leaf files")
        print(f"  particles: {meta.total_particles:,}")
        print(f"  bounds: {meta.bounds.lower} .. {meta.bounds.upper}")
        for name, (lo, hi) in meta.attr_ranges.items():
            print(f"  attribute {name}: [{lo:g}, {hi:g}]")
        sizes = np.array([l.nbytes for l in meta.leaves], dtype=np.float64)
        if len(sizes):
            print(
                f"  leaf payloads: mean {sizes.mean() / 1e6:.1f} MB, "
                f"std {sizes.std() / 1e6:.1f} MB, max {sizes.max() / 1e6:.1f} MB"
            )
        return 0
    with BATFile(path) as f:
        h = f.header
        print(f"BAT file: {path}")
        print(f"  points: {f.n_points:,}  treelets: {f.n_treelets}  "
              f"max depth: {f.max_treelet_depth}")
        print(f"  bounds: {f.bounds.lower} .. {f.bounds.upper}")
        print(f"  dictionary: {h.dict_entries} bitmaps  "
              f"flags: quantized={f.quantized} compressed={f.compressed}")
        for name in f.attr_names:
            lo, hi = f.attr_ranges[name]
            kind = type(f.binnings[name]).__name__ if name in f.binnings else "?"
            print(f"  attribute {name} ({f.attr_dtypes[name]}): [{lo:g}, {hi:g}] {kind}")
        if f.column_encoded:
            print("  column codecs (v4):")
            for name, col in f.column_summary().items():
                ratio = col["raw_nbytes"] / col["enc_nbytes"] if col["enc_nbytes"] else 0.0
                bound = (
                    f"  max error {col['error_bound']:g}"
                    if col.get("error_bound") is not None else ""
                )
                print(f"    {name}: {col['codec']}  "
                      f"{col['enc_nbytes']:,} / {col['raw_nbytes']:,} B "
                      f"({ratio:.2f}x){bound}")
    return 0


def _cmd_query(args) -> int:
    if args.knn is not None or args.radius is not None or args.at:
        return _cmd_neighbor_query(args)
    request = QueryRequest(
        quality=args.quality,
        box=args.box,
        filters=tuple(args.filter or ()),
        columns=tuple(args.columns.split(",")) if args.columns else None,
        engine=args.engine or "frontier",
    )
    with open_dataset(args.metadata, executor=args.executor) as ds:
        batch, stats = ds.query(request)
        print(f"matched {len(batch):,} of {ds.total_particles:,} particles "
              f"(tested {stats.points_tested:,}, "
              f"pruned {stats.pruned_spatial} spatial / {stats.pruned_bitmap} bitmap subtrees)")
        print(f"files: {stats.files_opened} opened, "
              f"{stats.pruned_files} skipped by the planner")
        if args.stats and len(batch):
            for name, arr in batch.attributes.items():
                print(f"  {name}: mean {arr.mean():g}  min {arr.min():g}  max {arr.max():g}")
        if args.output:
            np.savez(args.output, positions=batch.positions, **batch.attributes)
            print(f"wrote {args.output}")
    return 0


def _cmd_neighbor_query(args) -> int:
    """The neighbor-mode branch of ``repro query`` (--knn / --radius)."""
    request = NeighborRequest(
        center_box=None if args.at else args.box,
        points=tuple(args.at) if args.at else None,
        k=args.knn,
        radius=args.radius,
        filters=tuple(args.filter or ()),
        columns=tuple(args.columns.split(",")) if args.columns else None,
        engine=args.engine or "tree",
    )
    with open_dataset(args.metadata, executor=args.executor) as ds:
        res = ds.neighbors(request)
        s = res.stats
        mode = f"k={args.knn}" if args.knn is not None else f"radius={args.radius:g}"
        print(f"{res.n_centers:,} centers ({mode}): {len(res):,} neighbors "
              f"(tested {s.points_tested:,} candidates, "
              f"visited {s.nodes_visited:,} nodes)")
        print(f"files: {s.files_opened} opened "
              f"({s.ghost_files_opened} ghost, {s.ghost_points:,} ghost candidates), "
              f"{s.pruned_files} skipped by the planner")
        if args.stats and len(res):
            counts = res.counts
            print(f"  list sizes: mean {counts.mean():.2f}  "
                  f"min {counts.min()}  max {counts.max()}")
            print(f"  distances: mean {res.distances.mean():g}  "
                  f"max {res.distances.max():g}")
            for name, arr in res.batch.attributes.items():
                print(f"  {name}: mean {arr.mean():g}  min {arr.min():g}  max {arr.max():g}")
        if args.output:
            out = {
                "centers": res.centers,
                "offsets": res.offsets,
                "distances": res.distances,
                "keys": res.keys,
            }
            if res.center_keys is not None:
                out["center_keys"] = res.center_keys
            if res.batch.positions is not None:
                out["positions"] = res.batch.positions
            np.savez(args.output, **out, **res.batch.attributes)
            print(f"wrote {args.output}")
    return 0


def _cmd_serve(args) -> int:
    """Replay load-generator traces through the concurrent query service."""
    import json

    from .core.dataset import BATDataset
    from .serve import (
        DegradationConfig,
        QueryService,
        ServeConfig,
        ShardedQueryService,
        make_hot_traces,
        make_traces,
        resolve_step_manifests,
        run_load,
        run_load_async,
        verify_identity_samples,
    )

    if args.shards and args.stream:
        print("error: --stream is a single-process feature; drop --shards",
              file=sys.stderr)
        return 2
    config = ServeConfig(
        capacity=args.capacity,
        max_queued=args.max_queued,
        executor=args.executor,
        collapse=not args.no_collapse,
        degradation=DegradationConfig(enabled=not args.no_degradation),
    )
    concurrency = args.concurrency or 2 * args.capacity
    if args.shards:
        service = ShardedQueryService(args.source, config, n_shards=args.shards)
    else:
        service = QueryService(args.source, config)
    with service:
        step = service.steps[0]
        manifest = resolve_step_manifests(Path(args.source))[step]
        with BATDataset(manifest) as ds:
            if args.hot_views:
                traces = make_hot_traces(
                    args.sessions, ds.bounds, n_views=args.hot_views,
                    ops_per_session=args.ops, seed=args.seed,
                )
            else:
                traces = make_traces(
                    args.sessions, ds.bounds, ds.attr_ranges,
                    ops_per_session=args.ops, seed=args.seed,
                )
            if args.stream:
                # asyncio front end: every session is a coroutine consuming
                # streamed increments over one event loop
                load = run_load_async(service, traces, step=step)
            else:
                load = run_load(
                    service, traces, concurrency=concurrency, step=step,
                    arrival=args.arrival, rate_hz=args.rate_hz,
                    arrival_seed=args.arrival_seed,
                )
            checked = verify_identity_samples(ds, load.identity_samples)
        snapshot = service.snapshot()
    lat = snapshot["latency_ms"]
    mode = "asyncio streams" if args.stream else f"{concurrency} clients"
    if args.shards:
        mode += f", {args.shards} shard processes"
    print(
        f"served {load.requests} requests from {args.sessions} sessions "
        f"({mode}, capacity {args.capacity}): "
        f"{load.throughput_rps:.1f} req/s, p50 {lat['p50']:.2f} ms, "
        f"p99 {lat['p99']:.2f} ms, {load.rejected} rejected, "
        f"{load.degraded} degraded, {checked} responses byte-verified"
    )
    if args.stream:
        streaming = snapshot["streaming"]
        collapse = snapshot["caches"]["collapse"]
        print(
            f"  streaming: {streaming['increments']} increments, "
            f"ttfi p50 {streaming['ttfi_ms']['p50']:.2f} ms, "
            f"{streaming['shed']} shed; collapse hit rate "
            f"{collapse['hit_rate']:.1%} ({collapse['saved_points']} points shared)"
        )
    if args.shards:
        shards = snapshot["shards"]
        print(
            f"  shards: fanout mean {shards['fanout_mean']:.2f} "
            f"({shards['fanout_multi']} multi-shard scatters), "
            f"{shards['restarts']} worker restarts"
        )
    if args.json:
        print(json.dumps(snapshot, indent=1, sort_keys=True))
    return 0


def _cmd_jobs(args) -> int:
    """Durable batch sweeps: submit to, inspect, and resume a job store."""
    import json

    from .serve import JobConfig, JobRunner, JobStore, make_sweep

    with JobStore(args.store) as store:
        if args.jobs_command == "submit":
            from .core.dataset import BATDataset

            with BATDataset(args.source) as ds:
                sweep = make_sweep(
                    ds.bounds, args.n, seed=args.seed,
                    qualities=tuple(float(q) for q in args.qualities.split(",")),
                )
            added = store.submit(
                args.job_id, sweep, source=str(args.source), step=args.step,
            )
            c = store.counts(args.job_id)
            print(f"job {args.job_id}: {added} tasks added "
                  f"({c['total']} total, {c['done']} already done)")
            return 0

        if args.jobs_command == "status":
            job_ids = [args.job_id] if args.job_id else store.jobs()
            for job_id in job_ids:
                c = store.counts(job_id)
                if args.json:
                    print(json.dumps({"job_id": job_id, **c}, sort_keys=True))
                else:
                    print(f"{job_id}: {c['done']}/{c['total']} done, "
                          f"{c['pending']} pending, {c['leased']} leased, "
                          f"{c['dead']} dead, "
                          f"{c['duplicate_acks']} duplicate acks, "
                          f"{c['points']:,} points")
                for idx, error in store.dead(job_id):
                    print(f"  dead task {idx}: {error}")
            return 0

        # resume (alias: run) — drain whatever the store says is left
        from .serve import (
            DegradationConfig,
            QueryService,
            ServeConfig,
            ShardedQueryService,
        )

        job = store.job(args.job_id)
        source = args.source or job["source"]
        if not source:
            print("error: job records no source; pass one explicitly",
                  file=sys.stderr)
            return 2
        config = ServeConfig(
            capacity=args.capacity,
            degradation=DegradationConfig(enabled=False),
        )
        if args.shards:
            service = ShardedQueryService(source, config, n_shards=args.shards)
        else:
            service = QueryService(source, config)
        with service:
            runner = JobRunner(
                store, service, args.job_id, worker=args.worker,
                config=JobConfig(
                    lease_seconds=args.lease_seconds,
                    max_attempts=args.max_attempts,
                ),
            )
            counts = runner.run(max_tasks=args.max_tasks)
        print(f"job {args.job_id}: {counts['done']}/{counts['total']} done, "
              f"{counts['pending']} pending, {counts['dead']} dead, "
              f"{counts['completions']} completion records, "
              f"{counts['duplicate_acks']} duplicate acks")
        return 0 if counts["pending"] == counts["leased"] == 0 else 1


def _cmd_bench(args) -> int:
    from .bench import format_series, weak_scaling

    machine = args.machine
    ranks = [int(r) for r in args.ranks.split(",")]
    if args.experiment == "weak-scaling":
        pts = weak_scaling(machine, ranks)
        print(format_series(pts, "nranks", "write_bandwidth",
                            title=f"write bandwidth (GB/s) on virtual {machine.name}"))
        print()
        print(format_series(pts, "nranks", "read_bandwidth",
                            title=f"read bandwidth (GB/s) on virtual {machine.name}"))
        return 0
    if args.experiment == "parallel-smoke":
        import tempfile

        from .bench import parallel_write_query_benchmark, record_benchmark

        executors = [s.strip() for s in args.executors.split(",") if s.strip()]
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = parallel_write_query_benchmark(
                tmp, executors=executors, nranks=min(ranks), machine=machine
            )
        for r in payload["results"]:
            print(f"  {r['executor']:<12} write {r['write_seconds']:7.3f}s "
                  f"({r['write_speedup_vs_serial']:4.2f}x)   "
                  f"query {r['query_seconds']:7.3f}s "
                  f"({r['query_speedup_vs_serial']:4.2f}x)")
        if args.record:
            record_benchmark(args.record, payload)
            print(f"recorded {args.record}")
        return 0
    raise AssertionError  # argparse restricts choices


def _cmd_validate(args) -> int:
    from .bat.validate import validate_dataset, validate_file

    path = Path(args.path)
    if path.suffix == ".json":
        report = validate_dataset(path, deep=args.deep)
    else:
        report = validate_file(path, deep=True)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_scrub(args) -> int:
    """Verify every checksum of a dataset (or one file), per-file status."""
    import json

    from .bat.integrity import scrub_dataset, scrub_file

    path = Path(args.path)
    if path.suffix == ".json":
        report = scrub_dataset(path)
    else:
        report = scrub_file(path)
    if args.json:
        print(json.dumps(report.to_doc(), indent=1))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_reorg(args) -> int:
    """One offline reorganization pass driven by a telemetry snapshot."""
    import json

    from .reorg import ReorgConfig, ReorgError, reorganize

    telemetry = json.loads(Path(args.telemetry).read_text())
    # accept a full service snapshot (repro serve --stats-out) as-is
    if "telemetry" in telemetry and "steps" not in telemetry:
        telemetry = telemetry["telemetry"]
    config = ReorgConfig(
        min_queries=args.min_queries,
        cold_open_fraction=args.cold_open_fraction,
        verify=not args.no_verify,
        remove_old=args.remove_old,
    )
    try:
        report = reorganize(
            Path(args.manifest), telemetry, step=args.step, config=config
        )
    except ReorgError as exc:
        print(f"reorg failed, nothing published: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_doc(), indent=1))
    else:
        if not report.changed:
            print("layout already aligned with observed access; no rewrite")
        else:
            print(
                f"generation {report.generation_from} -> {report.generation_to}: "
                f"{report.leaves_before} -> {report.leaves_after} leaves, "
                f"{len(report.files_written)} files written "
                f"({report.bytes_written} bytes), "
                f"{report.verified_points} points verified"
            )
            for action in report.actions:
                print(f"  {action.kind}: leaves {list(action.leaf_indices)}"
                      f" ({action.reason})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a .bat file or dataset manifest")
    info.add_argument("path")
    info.set_defaults(func=_cmd_info)

    query = sub.add_parser("query", help="query a dataset")
    query.add_argument("metadata", help="path to the .meta.json manifest")
    query.add_argument("--quality", type=float, default=1.0)
    query.add_argument("--box", type=_parse_box, default=None,
                       help="spatial filter: x0,y0,z0,x1,y1,z1 (in neighbor "
                            "mode: every particle in the box is a center)")
    query.add_argument("--filter", type=_parse_filter, action="append",
                       help="attribute filter: name:lo:hi (repeatable)")
    query.add_argument("--columns", default=None,
                       help="comma-separated attribute columns to materialize "
                            "(default: all; on v4 files, others never decode)")
    query.add_argument("--knn", type=int, default=None, metavar="K",
                       help="neighbor mode: K nearest neighbors per center")
    query.add_argument("--radius", type=float, default=None,
                       help="neighbor mode: all neighbors within this radius")
    query.add_argument("--at", type=_parse_point, action="append", default=None,
                       metavar="X,Y,Z",
                       help="neighbor-query center point (repeatable)")
    query.add_argument("--stats", action="store_true",
                       help="print per-attribute statistics of the result")
    query.add_argument("--output", help="write the result to an .npz file")
    query.add_argument("--executor", default=None,
                       help="execution backend: serial, thread[:N], process[:N] "
                            "(default: $REPRO_EXECUTOR or serial)")
    query.add_argument("--engine",
                       choices=tuple(ENGINES) + tuple(NEIGHBOR_ENGINES),
                       default=None,
                       help="traversal engine (box mode: frontier [default] or "
                            "recursive; neighbor mode: tree [default] or brute)")
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve",
        help="replay concurrent client traces through the query service",
    )
    serve.add_argument("source", help=".meta.json manifest or time-series directory")
    serve.add_argument("--capacity", type=int, default=4,
                       help="concurrent in-flight query limit (worker threads)")
    serve.add_argument("--concurrency", type=int, default=None,
                       help="load-generator client threads (default 2x capacity)")
    serve.add_argument("--sessions", type=int, default=12,
                       help="session traces to replay")
    serve.add_argument("--ops", type=int, default=6,
                       help="requests per session trace")
    serve.add_argument("--max-queued", type=int, default=64,
                       help="admission bound on the global queue")
    serve.add_argument("--seed", type=int, default=0, help="trace generator seed")
    serve.add_argument("--stream", action="store_true",
                       help="drive sessions through the asyncio streaming front "
                            "end (one event loop, per-rung increments)")
    serve.add_argument("--hot-views", type=int, default=0, metavar="N",
                       help="pile sessions onto N shared views (exercises "
                            "request collapsing; 0 = independent traces)")
    serve.add_argument("--no-collapse", action="store_true",
                       help="disable in-flight request collapsing")
    serve.add_argument("--arrival", choices=("closed", "open"), default="closed",
                       help="closed: each client waits for its response; open: "
                            "Poisson arrivals at --rate-hz (thread mode only)")
    serve.add_argument("--rate-hz", type=float, default=200.0,
                       help="open-loop aggregate arrival rate")
    serve.add_argument("--arrival-seed", type=int, default=0,
                       help="open-loop interarrival RNG seed")
    serve.add_argument("--no-degradation", action="store_true",
                       help="disable adaptive quality degradation under load")
    serve.add_argument("--executor", default=None,
                       help="per-query fan-out backend (see repro.parallel)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve through N shard worker processes "
                            "(consistent-hash partitioned; 0 = in-process)")
    serve.add_argument("--json", action="store_true",
                       help="also print the full metrics surface as JSON")
    serve.set_defaults(func=_cmd_serve)

    jobs = sub.add_parser(
        "jobs",
        help="durable batch-query sweeps: submit, status, resume",
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    j_submit = jobs_sub.add_parser(
        "submit", help="create (or idempotently re-create) a sweep job"
    )
    j_submit.add_argument("store", help="SQLite job-store path")
    j_submit.add_argument("job_id")
    j_submit.add_argument("source", help=".meta.json manifest or time-series directory")
    j_submit.add_argument("--n", type=int, default=100,
                          help="queries in the sweep (default 100)")
    j_submit.add_argument("--seed", type=int, default=0)
    j_submit.add_argument("--qualities", default="0.25,0.5,1.0",
                          help="comma-separated quality levels to sample")
    j_submit.add_argument("--step", type=int, default=0)

    j_status = jobs_sub.add_parser("status", help="per-state task counts")
    j_status.add_argument("store")
    j_status.add_argument("job_id", nargs="?", default=None,
                          help="one job (default: all jobs in the store)")
    j_status.add_argument("--json", action="store_true")

    for name, help_text in (
        ("resume", "drain the job's remaining tasks (safe after any crash)"),
        ("run", "alias of resume"),
    ):
        j_run = jobs_sub.add_parser(name, help=help_text)
        j_run.add_argument("store")
        j_run.add_argument("job_id")
        j_run.add_argument("source", nargs="?", default=None,
                           help="dataset (default: recorded at submit)")
        j_run.add_argument("--shards", type=int, default=0, metavar="N",
                           help="execute through N shard worker processes")
        j_run.add_argument("--capacity", type=int, default=4)
        j_run.add_argument("--worker", default="cli-runner")
        j_run.add_argument("--lease-seconds", type=float, default=30.0)
        j_run.add_argument("--max-attempts", type=int, default=4)
        j_run.add_argument("--max-tasks", type=int, default=None,
                           help="stop after this many executions (testing)")
    jobs.set_defaults(func=_cmd_jobs)

    bench = sub.add_parser("bench", help="run a benchmark experiment")
    bench.add_argument("experiment", choices=["weak-scaling", "parallel-smoke"])
    bench.add_argument("--machine", type=_machine, default=machines.stampede2())
    bench.add_argument("--ranks", default="96,384,1536,6144")
    bench.add_argument("--executors", default="serial,thread,process",
                       help="executor specs for parallel-smoke (comma separated)")
    bench.add_argument("--record", default=None,
                       help="write a BENCH_<tag>.json data point (parallel-smoke)")
    bench.set_defaults(func=_cmd_bench)

    validate = sub.add_parser("validate", help="check a .bat file or dataset for damage")
    validate.add_argument("path")
    validate.add_argument("--deep", action="store_true",
                          help="also walk every treelet of every leaf file")
    validate.set_defaults(func=_cmd_validate)

    scrub = sub.add_parser(
        "scrub",
        help="verify every checksum in a dataset (or one .bat file), "
             "reporting per-file status and the exact bad section",
    )
    scrub.add_argument("path", help=".meta.json manifest or a single .bat file")
    scrub.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    scrub.set_defaults(func=_cmd_scrub)

    reorg = sub.add_parser(
        "reorg",
        help="rewrite cold-but-touched leaves into a query-aligned layout "
             "using a serve-tier telemetry snapshot, bumping the manifest's "
             "layout generation",
    )
    reorg.add_argument("manifest", help=".meta.json manifest to reorganize")
    reorg.add_argument("telemetry",
                       help="JSON telemetry snapshot (AccessTelemetry.snapshot "
                            "or a full service snapshot containing one)")
    reorg.add_argument("--step", type=int, default=0,
                       help="which step's telemetry to apply (default 0)")
    reorg.add_argument("--min-queries", type=int, default=8,
                       help="do nothing below this much query evidence")
    reorg.add_argument("--cold-open-fraction", type=float, default=0.25,
                       help="leaves opened at most this fraction of the "
                            "hottest leaf's opens are merge candidates")
    reorg.add_argument("--no-verify", action="store_true",
                       help="skip the pre-publish particle-multiset check")
    reorg.add_argument("--remove-old", action="store_true",
                       help="unlink replaced leaf files after republish "
                            "(default keeps them for in-flight readers)")
    reorg.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    reorg.set_defaults(func=_cmd_reorg)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
