"""Machine models: Stampede2, Summit, and a generic testing machine.

Each :class:`MachineSpec` bundles a network model, a filesystem model, and
compute-rate constants for the pipeline's CPU-bound stages. The constants
are *calibrated*, not measured: they are chosen so the first-order models
in :mod:`repro.simmpi` and :mod:`repro.iosim` put the paper's observed
crossovers in the right places (DESIGN.md §2):

- Stampede2 (Lustre, 330 GB/s peak, stripe 32 x 8 MB, 100 Gb/s fat tree,
  48-core SKX nodes): file-per-process flattens near 1536 ranks, so the
  metadata create rate is set so the per-rank create storm overtakes the
  ~4 MB payload write around that point.
- Summit (GPFS, 2.5 TB/s peak, 184 Gb/s, 42 hardware threads used per
  node): file-per-process flattens near 672 ranks, hence a lower create
  rate; GPFS has no per-file stripe-width cap, so shared-file scaling is
  limited by the per-writer coupling term instead.
- BAT construction is faster per particle on Summit's POWER9 (larger L3),
  matching the paper's Fig 6 discussion.

Absolute bandwidths will not match the paper's testbeds and are not meant
to; EXPERIMENTS.md compares shapes, ratios, and crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .iosim import FileSystemSpec, ParallelFileSystem
from .simmpi.network import NetworkSpec

__all__ = ["MachineSpec", "stampede2", "summit", "testing_machine"]

GB = 1e9
TB = 1e12


@dataclass(frozen=True)
class MachineSpec:
    """One HPC system: interconnect, filesystem, and compute rates."""

    name: str
    network: NetworkSpec
    filesystem: FileSystemSpec
    #: BAT construction throughput per aggregator, particles/second.
    bat_build_rate: float
    #: Aggregation Tree build cost coefficient: seconds per rank*log2(ranks).
    tree_build_coeff: float
    #: Read-side spatial query scan rate on an aggregator, particles/second.
    query_scan_rate: float
    #: Bytes of (bounds, count) metadata gathered per rank when building
    #: the Aggregation Tree: 6 doubles + one int64.
    rank_meta_bytes: int = 56

    def fs_model(self) -> ParallelFileSystem:
        return ParallelFileSystem(self.filesystem)


def stampede2() -> MachineSpec:
    """TACC Stampede2: SKX nodes, Omni-Path fat tree, Lustre scratch."""
    return MachineSpec(
        name="stampede2",
        network=NetworkSpec(
            node_bw=12.5 * GB,  # 100 Gb/s Omni-Path
            latency=2e-6,
            ranks_per_node=48,
            bisection_bw=float("inf"),  # full-bisection fat tree
        ),
        filesystem=FileSystemSpec(
            name="lustre-scratch",
            peak_write_bw=330 * GB,
            peak_read_bw=300 * GB,
            client_bw=1.2 * GB,
            target_bw=1.0 * GB,  # per-OST
            stripe_count=32,  # paper's stripe settings (32 x 8 MB)
            create_rate=20_000.0,
            open_rate=40_000.0,
            shared_writer_overhead=5e-4,
        ),
        bat_build_rate=20e6,
        tree_build_coeff=2e-7,
        query_scan_rate=150e6,
    )


def summit() -> MachineSpec:
    """OLCF Summit: POWER9 nodes, EDR fat tree, Spectrum Scale (GPFS)."""
    return MachineSpec(
        name="summit",
        network=NetworkSpec(
            node_bw=23.0 * GB,  # 184 Gb/s (dual-rail EDR)
            latency=1.5e-6,
            ranks_per_node=42,
            bisection_bw=float("inf"),
        ),
        filesystem=FileSystemSpec(
            name="gpfs-alpine",
            peak_write_bw=2.5 * TB,
            peak_read_bw=2.2 * TB,
            client_bw=2.5 * GB,
            target_bw=2.5 * GB,
            stripe_count=1024,  # GPFS block-distributes; effectively uncapped
            create_rate=5_000.0,
            open_rate=12_000.0,
            shared_writer_overhead=5e-4,
        ),
        bat_build_rate=30e6,
        tree_build_coeff=2e-7,
        query_scan_rate=200e6,
    )


def testing_machine(
    ranks_per_node: int = 4,
    create_rate: float = 1_000.0,
    peak_bw: float = 10 * GB,
) -> MachineSpec:
    """A small, fast-to-simulate machine for unit tests and examples."""
    return MachineSpec(
        name="testing",
        network=NetworkSpec(
            node_bw=10 * GB,
            latency=1e-6,
            ranks_per_node=ranks_per_node,
        ),
        filesystem=FileSystemSpec(
            name="testing-fs",
            peak_write_bw=peak_bw,
            peak_read_bw=peak_bw,
            client_bw=1 * GB,
            target_bw=1 * GB,
            stripe_count=4,
            create_rate=create_rate,
            open_rate=2 * create_rate,
            shared_writer_overhead=5e-4,
        ),
        bat_build_rate=10e6,
        tree_build_coeff=2e-7,
        query_scan_rate=100e6,
    )
