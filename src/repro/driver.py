"""Simulation + I/O driver: the loop a coupled application runs.

This is the integration the paper's C API targets (§III): a simulation
advances, periodically hands its per-rank particles to the I/O library,
and later restarts from the newest valid checkpoint. The driver works with
any object satisfying the small :class:`Simulation` protocol (both
mini-apps in :mod:`repro.workloads` do):

- ``step(n)`` — advance n timesteps,
- ``step_count`` — current timestep number,
- ``rank_data(nranks)`` — decomposed per-rank particle view,
- ``particles()`` — a complete-state checkpoint batch,
- ``restore(batch, step_count)`` — rebuild state from a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


from .core.dataset import BATDataset
from .core.timeseries import TimeSeriesDataset, TimeSeriesWriter
from .machines import MachineSpec

__all__ = ["IODriver", "RunLog", "restart_latest"]


@dataclass
class RunLog:
    """What one driven run wrote."""

    steps_written: list[int] = field(default_factory=list)
    write_seconds: list[float] = field(default_factory=list)
    particles_written: list[int] = field(default_factory=list)

    @property
    def total_io_seconds(self) -> float:
        return float(sum(self.write_seconds))


class IODriver:
    """Runs a simulation and checkpoints it through the two-phase writer."""

    def __init__(
        self,
        machine: MachineSpec,
        directory,
        nranks: int,
        io_every: int = 10,
        **writer_kwargs,
    ):
        if io_every < 1:
            raise ValueError("io_every must be >= 1")
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.io_every = io_every
        self.series = TimeSeriesWriter(machine, directory, **writer_kwargs)

    @property
    def directory(self) -> Path:
        return self.series.directory

    def run(self, sim, n_steps: int, write_initial: bool = True) -> RunLog:
        """Advance ``sim`` by ``n_steps``, writing every ``io_every`` steps.

        A checkpoint is also written at the final step, whether or not it
        falls on the cadence, so a run is always resumable from its end.
        """
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        log = RunLog()

        def checkpoint() -> None:
            data = sim.rank_data(self.nranks)
            report = self.series.write_step(sim.step_count, data)
            log.steps_written.append(sim.step_count)
            log.write_seconds.append(report.elapsed)
            log.particles_written.append(data.total_particles)

        if write_initial:
            checkpoint()
        remaining = n_steps
        while remaining > 0:
            chunk = min(self.io_every, remaining)
            sim.step(chunk)
            remaining -= chunk
            if remaining == 0 or (sim.step_count % self.io_every) == 0:
                checkpoint()
        # deduplicate a final step that landed on the cadence twice
        seen = set()
        keep = []
        for i, s in enumerate(log.steps_written):
            if s not in seen:
                seen.add(s)
                keep.append(i)
        log.steps_written = [log.steps_written[i] for i in keep]
        log.write_seconds = [log.write_seconds[i] for i in keep]
        log.particles_written = [log.particles_written[i] for i in keep]
        return log


def restart_latest(sim, directory) -> int:
    """Restore ``sim`` from the newest checkpoint in ``directory``.

    Reads the full particle population back through the dataset API and
    hands it to ``sim.restore``. Returns the restored step number.
    """
    try:
        ts = TimeSeriesDataset(directory)
    except FileNotFoundError:
        raise ValueError(f"no checkpoints in {directory}") from None
    with ts:
        if not ts.steps:
            raise ValueError(f"no checkpoints in {directory}")
        step = ts.steps[-1]
        ds: BATDataset = ts.step(step)
        batch, _ = ds.query()
    sim.restore(batch, step)
    return step
