"""Atomic, verified file publication.

Every durable artifact (leaf files, dataset manifests, series catalogs) is
published the same way: write to a ``*.tmp`` sibling, flush and fsync it,
then ``os.replace`` onto the final name and fsync the directory. A reader
therefore never observes a half-written file — it sees either the previous
version or the complete new one.

:func:`publish_bytes` adds read-back verification and bounded retry on top,
which is what makes the write path provably recover from injected torn
writes and bit flips: the verification compares the bytes that actually hit
the filesystem against the in-memory image before the rename, so a damaged
attempt is discarded and retried instead of being published.
"""

from __future__ import annotations

import os
import time
import zlib

from .errors import PublishError

__all__ = ["atomic_write_bytes", "publish_bytes"]


def _fsync_dir(dirname: str) -> None:
    """Best-effort fsync of a directory so the rename itself is durable."""
    try:
        fd = os.open(dirname or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (tmp file, fsync, rename)."""
    spath = os.fspath(path)
    tmp = spath + ".tmp"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            if fsync:
                os.fsync(f.fileno())
        os.replace(tmp, spath)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(os.path.dirname(spath))


def _apply_fault(data: bytes, fault) -> bytes:
    """Damage one write attempt according to a fault-plan entry.

    Entries are plain picklable tuples so plans cross process-executor
    boundaries: ``("torn", f)`` keeps only the first ``f`` fraction of the
    payload, ``("bitflip", f)`` flips the byte at fractional position ``f``.
    """
    if fault is None:
        return data
    kind, frac = fault
    if kind == "none":
        return data
    if kind == "torn":
        return data[: min(int(len(data) * frac), max(len(data) - 1, 0))]
    if kind == "bitflip":
        damaged = bytearray(data)
        if damaged:
            damaged[min(int(len(data) * frac), len(data) - 1)] ^= 0xFF
        return bytes(damaged)
    raise ValueError(f"unknown write fault kind {kind!r}")


def publish_bytes(
    path,
    data,
    *,
    fault_plan=(),
    max_attempts: int = 4,
    backoff_s: float = 0.0,
    fsync: bool = True,
    sleep=time.sleep,
) -> int:
    """Publish ``data`` at ``path`` with read-back verification and retry.

    Each attempt writes the tmp file, reads it back, and compares length and
    CRC32 against the in-memory image; only a verified attempt is renamed
    into place. ``fault_plan`` (one entry per attempt, see
    :func:`_apply_fault`) lets the fault injector damage specific attempts.

    Returns the number of attempts used (1 = first try clean). Raises
    :class:`~repro.errors.PublishError` if every attempt failed; the target
    path is untouched in that case.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    spath = os.fspath(path)
    tmp = spath + ".tmp"
    expect = zlib.crc32(data)
    for attempt in range(1, max_attempts + 1):
        fault = fault_plan[attempt - 1] if attempt - 1 < len(fault_plan) else None
        payload = _apply_fault(data, fault)
        try:
            with open(tmp, "wb") as f:
                f.write(payload)
                f.flush()
                if fsync:
                    os.fsync(f.fileno())
            with open(tmp, "rb") as f:
                written = f.read()
            if len(written) == len(data) and zlib.crc32(written) == expect:
                os.replace(tmp, spath)
                if fsync:
                    _fsync_dir(os.path.dirname(spath))
                return attempt
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        if backoff_s and attempt < max_attempts:
            sleep(backoff_s * (2 ** (attempt - 1)))
    raise PublishError(
        f"failed to publish {spath}: {max_attempts} write attempts "
        f"all failed read-back verification"
    )
