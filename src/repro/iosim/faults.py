"""Deterministic fault injection for the two-phase write path.

The injector models the failure modes a layout-reorganizing writer meets
at scale: torn writes and bit flips on the way to storage, dropped or
duplicated aggregator messages on the interconnect, and aggregators dying
between receiving particles and writing their files.

Two properties make the injected runs usable in benchmarks and CI:

- **Determinism.** Every fault decision derives from ``FaultConfig.seed``
  and a stable index (leaf index, message index, rank id) through its own
  :class:`numpy.random.Generator` stream — never from shared mutable RNG
  state — so per-leaf write plans are plain picklable tuples that cross
  process-executor boundaries, and a faulted run is exactly reproducible.
- **Recovery is observable, not assumed.** Write faults damage specific
  publish *attempts*; the read-back verification in
  :func:`repro.atomic.publish_bytes` catches them before the rename, so a
  faulted run must publish byte-identical files to a fault-free run or the
  benchmark's hash cross-check fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultConfig", "FaultInjector", "FaultReport"]

# stream labels keeping each fault family's random sequence independent
_STREAM_WRITE = 7919
_STREAM_MESSAGE = 104729
_STREAM_DEATH = 1299709


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and bounds of the injected faults.

    All probabilities are per event (write attempt, message, aggregator
    rank) in ``[0, 1]``; the default config injects nothing.
    """

    seed: int = 0
    #: probability a write attempt is torn (truncated mid-payload)
    torn_write: float = 0.0
    #: probability a write attempt lands with a flipped byte
    bit_flip: float = 0.0
    #: probability an aggregator-bound message is dropped (and retransmitted)
    drop_message: float = 0.0
    #: probability an aggregator-bound message arrives twice
    duplicate_message: float = 0.0
    #: probability each aggregator rank dies before building its files
    aggregator_death: float = 0.0
    #: bounded retry: attempts per leaf-file publish before giving up
    max_write_attempts: int = 4
    #: exponential backoff base between publish attempts (seconds; the
    #: default keeps simulated runs fast while exercising the retry path)
    retry_backoff_s: float = 0.0
    #: never fault the final permitted attempt, so a bounded retry always
    #: recovers; disable to test that PublishError surfaces cleanly
    always_recover: bool = True

    def __post_init__(self) -> None:
        for name in ("torn_write", "bit_flip", "drop_message",
                     "duplicate_message", "aggregator_death"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.drop_message + self.duplicate_message > 1.0:
            raise ValueError("drop_message + duplicate_message must be <= 1")
        if self.max_write_attempts < 1:
            raise ValueError("max_write_attempts must be >= 1")

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, n) > 0.0
            for n in ("torn_write", "bit_flip", "drop_message",
                      "duplicate_message", "aggregator_death")
        )


@dataclass
class FaultReport:
    """What one faulted write actually injected and recovered from."""

    injected_torn: int = 0
    injected_bit_flips: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    dead_aggregators: list[int] = field(default_factory=list)
    reassigned_leaves: int = 0
    #: total publish attempts across all leaf files
    write_attempts: int = 0
    #: leaf files that needed more than one attempt
    retried_writes: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.injected_torn
            + self.injected_bit_flips
            + self.dropped_messages
            + self.duplicated_messages
            + len(self.dead_aggregators)
        )

    def to_doc(self) -> dict:
        return {
            "injected_torn": self.injected_torn,
            "injected_bit_flips": self.injected_bit_flips,
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
            "dead_aggregators": list(self.dead_aggregators),
            "reassigned_leaves": self.reassigned_leaves,
            "write_attempts": self.write_attempts,
            "retried_writes": self.retried_writes,
            "total_injected": self.total_injected,
        }


class FaultInjector:
    """Stateless fault planner over a :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig):
        self.config = config

    # -- write faults -----------------------------------------------------

    def plan_leaf_write(self, leaf_index: int) -> tuple:
        """Fault plan for one leaf file's publish attempts.

        Returns a tuple of ``("torn"|"bitflip", fraction)`` entries, one per
        *damaged* attempt; the attempt after the last entry is clean. The
        plan is a pure function of ``(seed, leaf_index)`` and picklable, so
        rank 0 computes every plan up front and workers in any executor
        replay them identically.
        """
        cfg = self.config
        rng = np.random.default_rng([cfg.seed, _STREAM_WRITE, leaf_index])
        budget = cfg.max_write_attempts - (1 if cfg.always_recover else 0)
        plan = []
        for _ in range(budget):
            u = rng.random()
            if u < cfg.torn_write:
                plan.append(("torn", float(rng.random())))
            elif u < cfg.torn_write + cfg.bit_flip:
                plan.append(("bitflip", float(rng.random())))
            else:
                break
        return tuple(plan)

    # -- message faults ---------------------------------------------------

    def perturb_messages(self, messages):
        """Split the aggregator transfer into delivered + retransmitted.

        Returns ``(timing_messages, retransmits, dropped, duplicated)``.
        A dropped message still costs its first (lost) transmission and is
        retransmitted in a follow-up phase; a duplicated message costs the
        wire twice. Only *timing* is affected — the functional data path
        concatenates member batches directly, so correctness is preserved
        and the hash cross-checks stay meaningful.
        """
        cfg = self.config
        rng = np.random.default_rng([cfg.seed, _STREAM_MESSAGE])
        timing = []
        retransmits = []
        dropped = duplicated = 0
        for m in messages:
            u = rng.random()
            timing.append(m)
            if u < cfg.drop_message:
                dropped += 1
                retransmits.append(m)
            elif u < cfg.drop_message + cfg.duplicate_message:
                duplicated += 1
                timing.append(m)
        return timing, retransmits, dropped, duplicated

    # -- aggregator death -------------------------------------------------

    def sample_dead_aggregators(self, aggregator_ranks) -> list[int]:
        """Which aggregator ranks die before building; at least one survives."""
        cfg = self.config
        unique = sorted(set(int(r) for r in aggregator_ranks))
        rng = np.random.default_rng([cfg.seed, _STREAM_DEATH])
        dead = [r for r in unique if rng.random() < cfg.aggregator_death]
        if len(dead) >= len(unique) and dead:
            dead = dead[:-1]
        return dead
