"""Parametric parallel-filesystem timing model.

All durations are in seconds, sizes in bytes, rates in ops/s or bytes/s.
The model is deliberately first-order (DESIGN.md §5): it reproduces the
*shape* of the paper's scaling curves — where file-per-process collapses,
where shared files stop scaling, and how the two-phase target size trades
file count against transfer volume — not the absolute numbers of any
particular machine week.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FileSystemSpec", "ParallelFileSystem"]


@dataclass(frozen=True)
class FileSystemSpec:
    """Calibration constants for one filesystem.

    ``peak_write_bw``/``peak_read_bw``
        Aggregate bandwidth caps across all clients.
    ``client_bw``
        Max bandwidth a single client (rank) can drive on its own.
    ``target_bw``
        Bandwidth of one storage target (OST / NSD). A file striped over
        ``stripe_count`` targets cannot exceed ``stripe_count * target_bw``.
    ``stripe_count``
        Stripe width used for files (Lustre: per-file layout; GPFS: treated
        as effectively "all targets", so presets use a large value).
    ``create_rate`` / ``open_rate``
        Metadata-service throughput for file creates and opens. These
        serialize globally — the mechanism behind FPP degradation.
    ``shared_writer_overhead``
        Per-writer coupling cost of a single shared file (collective
        buffering exchange, extent-lock traffic). Charged once per writer,
        so shared-file time grows linearly with rank count.
    ``op_latency``
        Base latency of any I/O call.
    """

    name: str
    peak_write_bw: float
    peak_read_bw: float
    client_bw: float
    target_bw: float
    stripe_count: int
    create_rate: float
    open_rate: float
    shared_writer_overhead: float
    op_latency: float = 1e-4


class ParallelFileSystem:
    """Timing model over a :class:`FileSystemSpec`."""

    def __init__(self, spec: FileSystemSpec):
        self.spec = spec

    # -- independent files (file-per-process, two-phase subfiles) ---------

    def independent_write(self, sizes: np.ndarray, creates_per_writer: int = 1) -> np.ndarray:
        """Durations for W writers each writing its own file(s).

        ``sizes`` is bytes per writer; writers with zero bytes take no time.
        Every active writer is charged the full metadata storm (creates
        serialize at the MDS and a writer cannot proceed until its create
        returns; with synchronized timestep writes the storm's tail is what
        the makespan sees).
        """
        return self._independent(sizes, creates_per_writer, write=True)

    def independent_read(self, sizes: np.ndarray, opens_per_reader: int = 1) -> np.ndarray:
        """Durations for R readers each reading its own file(s)."""
        return self._independent(sizes, opens_per_reader, write=False)

    def _independent(self, sizes: np.ndarray, meta_ops: int, write: bool) -> np.ndarray:
        spec = self.spec
        sizes = np.asarray(sizes, dtype=np.float64)
        active = sizes > 0
        n_active = int(active.sum())
        out = np.zeros_like(sizes)
        if n_active == 0:
            return out
        meta_rate = spec.create_rate if write else spec.open_rate
        meta_time = (n_active * meta_ops) / meta_rate
        peak = spec.peak_write_bw if write else spec.peak_read_bw
        per_writer_bw = min(
            spec.client_bw,
            spec.stripe_count * spec.target_bw,
            peak / n_active,
        )
        out[active] = spec.op_latency + meta_time + sizes[active] / per_writer_bw
        return out

    def retry_write(self, extra_sizes: np.ndarray, attempts_per_writer: int = 1) -> np.ndarray:
        """Durations for re-publishing files whose first attempt was damaged.

        ``extra_sizes`` is the *additional* bytes each writer pushes across
        all of its retry attempts. Every retry repeats the full publish
        protocol — tmp-file create, data, read-back verify, rename — so a
        retry costs another metadata op plus the payload at the same
        per-writer bandwidth as the original write; ranks with no retries
        take no time.
        """
        return self._independent(extra_sizes, max(int(attempts_per_writer), 1), write=True)

    # -- single shared file (MPI-IO / HDF5 style) -------------------------

    def shared_write(self, total_bytes: float, n_writers: int, meta_factor: float = 1.0) -> float:
        """Duration of W ranks collectively writing one shared file.

        ``meta_factor`` scales the per-writer coupling term; the HDF5 mode
        uses a factor > 1 for its extra metadata collectives.
        """
        return self._shared(total_bytes, n_writers, meta_factor, write=True)

    def shared_read(self, total_bytes: float, n_readers: int, meta_factor: float = 1.0) -> float:
        """Duration of R ranks collectively reading one shared file."""
        return self._shared(total_bytes, n_readers, meta_factor, write=False)

    def _shared(self, total_bytes: float, n_ranks: int, meta_factor: float, write: bool) -> float:
        spec = self.spec
        if n_ranks <= 0 or total_bytes <= 0:
            return 0.0
        peak = spec.peak_write_bw if write else spec.peak_read_bw
        file_bw = min(
            peak,
            spec.stripe_count * spec.target_bw,
            n_ranks * spec.client_bw,
        )
        coupling = meta_factor * spec.shared_writer_overhead * n_ranks
        return spec.op_latency + coupling + total_bytes / file_bw

    # -- small metadata file ----------------------------------------------

    def small_write(self, nbytes: float) -> float:
        """One rank writing one small file (e.g. top-level metadata)."""
        return self.spec.op_latency + 1.0 / self.spec.create_rate + nbytes / self.spec.client_bw

    def small_read_all(self, nbytes: float, n_readers: int) -> float:
        """All ranks opening and reading the same small file.

        Opens of a single shared inode are served mostly from metadata
        caches; we charge a mild sublinear open cost rather than the full
        per-file storm.
        """
        if n_readers <= 0:
            return 0.0
        open_time = np.sqrt(n_readers) / self.spec.open_rate
        return self.spec.op_latency + open_time + nbytes / self.spec.client_bw
