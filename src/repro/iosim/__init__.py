"""Parallel filesystem cost models (Lustre- and GPFS-style).

Real runs in the paper hit a Lustre scratch system (Stampede2, 330 GB/s
peak) and IBM Spectrum Scale/GPFS (Summit, 2.5 TB/s). This package models
the three first-order mechanisms their evaluation exercises:

1. metadata pressure — file creates/opens serialize at the metadata
   service, which is what makes file-per-process collapse at scale;
2. bandwidth sharing — concurrent writers share per-target and aggregate
   bandwidth;
3. shared-file coupling — a single shared file adds per-writer
   synchronization (MPI-IO collective buffering, extent locks) and, on
   Lustre, caps bandwidth at ``stripe_count`` targets.

Machine presets live in :mod:`repro.machines`.
"""

from .faults import FaultConfig, FaultInjector, FaultReport
from .filesystem import FileSystemSpec, ParallelFileSystem

__all__ = [
    "FileSystemSpec",
    "ParallelFileSystem",
    "FaultConfig",
    "FaultInjector",
    "FaultReport",
]
