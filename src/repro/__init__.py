"""repro — Adaptive Spatially Aware I/O for Multiresolution Particle Data Layouts.

A from-scratch Python reproduction of Usher et al., IPDPS 2021 ("libbat"):
spatially aware adaptive two-phase aggregation for particle data, the
Binned Attribute Tree (BAT) multiresolution layout built in situ during
I/O, scalable two-phase restart reads, and low-latency visualization
queries — plus the baselines (AUG aggregation, file-per-process, shared
file, IOR) and machine models (Stampede2, Summit) the paper evaluates
against. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.

Typical use::

    import repro
    from repro import TwoPhaseWriter, machines

    writer = TwoPhaseWriter(machines.stampede2(), target_size=8 << 20)
    report = writer.write(rank_data, out_dir="out", name="ts0042")
    with repro.open_dataset("out/ts0042.meta.json") as ds:
        result = ds.query(repro.QueryRequest(quality=0.1))
        coarse, stats = result.batch, result.stats

All errors raised by the library derive from
:class:`repro.errors.ReproError`; see :mod:`repro.errors`.
"""

from . import errors, machines
from .api import (
    NeighborRequest,
    NeighborResult,
    QueryRequest,
    QueryResult,
    StreamIncrement,
    open_dataset,
    reassemble_stream,
)
from .bat import AttributeFilter, BATBuildConfig, BATFile, build_bat
from .bat.validate import validate_dataset, validate_file
from .binning import EquiDepthBinning, EquiWidthBinning
from .core import (
    AggregationTree,
    AggTreeConfig,
    DatasetMetadata,
    RankData,
    ReadReport,
    TwoPhaseReader,
    TwoPhaseWriter,
    WriteReport,
    build_aggregation_tree,
)
from .core.autotune import recommend_target_size
from .core.dataset import BATDataset
from .core.timeseries import TimeSeriesDataset, TimeSeriesWriter
from .types import AttributeSpec, Box, ParticleBatch

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "machines",
    "errors",
    "open_dataset",
    "QueryRequest",
    "QueryResult",
    "NeighborRequest",
    "NeighborResult",
    "StreamIncrement",
    "reassemble_stream",
    "Box",
    "AttributeSpec",
    "ParticleBatch",
    "RankData",
    "AggTreeConfig",
    "AggregationTree",
    "build_aggregation_tree",
    "TwoPhaseWriter",
    "WriteReport",
    "TwoPhaseReader",
    "ReadReport",
    "DatasetMetadata",
    "BATDataset",
    "BATBuildConfig",
    "BATFile",
    "build_bat",
    "AttributeFilter",
    "EquiWidthBinning",
    "EquiDepthBinning",
    "TimeSeriesWriter",
    "TimeSeriesDataset",
    "recommend_target_size",
    "validate_file",
    "validate_dataset",
]
