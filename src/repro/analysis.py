"""Analysis queries over BAT data: histograms and region statistics.

The paper positions the layout for "spatial or attribute subset queries"
driving analysis as well as visualization (§I, §V-A). These helpers run
common analysis reductions *through the query engine's callback path*, so
they stream over matching particles chunk-by-chunk without materializing
the full result — the access pattern an analysis tool sitting on top of
the library would use.

All functions accept either a :class:`~repro.core.dataset.BATDataset`
(whole timestep) or a single :class:`~repro.bat.BATFile`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .api import NeighborRequest, NeighborResult, QueryRequest
from .bat.file import BATFile
from .bat.query import query_file
from .types import Box

__all__ = [
    "RegionStats",
    "attribute_histogram",
    "region_stats",
    "attribute_summary",
    "SmoothedField",
    "FoFGroups",
    "cubic_spline_kernel",
    "sph_smooth",
    "fof_groups",
]


def _run_query(source, callback, box, filters, quality):
    if isinstance(source, BATFile):
        query_file(source, quality=quality, box=box, filters=filters, callback=callback)
    else:
        req = QueryRequest(quality=quality, box=box, filters=tuple(filters))
        source.query(req, callback=callback)


def _attr_range(source, attr: str) -> tuple[float, float]:
    ranges = source.attr_ranges
    if attr not in ranges:
        raise KeyError(f"no attribute {attr!r}")
    return ranges[attr]


def attribute_histogram(
    source,
    attr: str,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
    box: Box | None = None,
    filters=(),
    quality: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of one attribute over the (filtered) query result.

    Returns ``(counts, edges)`` as :func:`numpy.histogram` would, but
    computed streaming — each emitted chunk is binned and discarded.
    ``quality < 1`` histograms the LOD subset, the cheap approximate-first
    pattern progressive analysis uses.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    lo, hi = value_range if value_range is not None else _attr_range(source, attr)
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    counts = np.zeros(bins, dtype=np.int64)

    def accumulate(positions, attrs):
        h, _ = np.histogram(attrs[attr], bins=edges)
        counts[:] += h

    _run_query(source, accumulate, box, tuple(filters), quality)
    return counts, edges


@dataclass
class RegionStats:
    """Streaming count/mean/min/max/std for one attribute."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations (Welford/Chan)
    min: float = float("inf")
    max: float = float("-inf")

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        n_b = values.size
        mean_b = float(values.mean())
        m2_b = float(((values - mean_b) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self.m2 = n_b, mean_b, m2_b
        else:
            # Chan et al. parallel-variance merge
            n = self.count + n_b
            delta = mean_b - self.mean
            self.m2 += m2_b + delta * delta * self.count * n_b / n
            self.mean += delta * n_b / n
            self.count = n
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def region_stats(
    source,
    attrs: list[str],
    box: Box | None = None,
    filters=(),
    quality: float = 1.0,
) -> dict[str, RegionStats]:
    """Count/mean/std/min/max per attribute over a spatial region."""
    for a in attrs:
        _attr_range(source, a)  # validate names up front
    stats = {a: RegionStats() for a in attrs}

    def accumulate(positions, chunk_attrs):
        for a in attrs:
            stats[a].update(chunk_attrs[a])

    _run_query(source, accumulate, box, tuple(filters), quality)
    return stats


def attribute_summary(source, box: Box | None = None, quality: float = 1.0) -> dict:
    """Stats for every attribute in the file/dataset at once."""
    if isinstance(source, BATFile):
        names = list(source.attr_names)
    else:
        names = list(source.attr_ranges.keys())
    return region_stats(source, names, box=box, quality=quality)


# -- neighbor-list analyses ----------------------------------------------------
#
# These ride on :meth:`~repro.core.dataset.BATDataset.neighbors` (and so on
# the planner's ghost-region exchange): the kernel sum at a center near a
# leaf-file boundary sees the neighbor file's ghost strip, never a full
# neighbor-file read. Both take a :class:`~repro.core.dataset.BATDataset`.


def _segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-center sums of a flat neighbor-list array (empty lists -> 0)."""
    c = np.concatenate([[0.0], np.cumsum(values, dtype=np.float64)])
    return c[offsets[1:]] - c[offsets[:-1]]


def cubic_spline_kernel(r, h: float) -> np.ndarray:
    """The M4 cubic-spline SPH kernel ``W(r, h)`` with compact support ``h``.

    3-D normalization ``sigma = 8 / (pi h^3)``; ``W`` vanishes at
    ``r >= h``, so a fixed-radius neighbor list at ``radius=h`` covers
    the kernel support exactly.
    """
    if not h > 0:
        raise ValueError("smoothing length h must be positive")
    q = np.asarray(r, dtype=np.float64) / float(h)
    sigma = 8.0 / (np.pi * float(h) ** 3)
    w = np.where(
        q < 0.5,
        1.0 - 6.0 * q * q + 6.0 * q * q * q,
        2.0 * np.clip(1.0 - q, 0.0, None) ** 3,
    )
    return sigma * w


@dataclass
class SmoothedField:
    """One SPH-interpolated attribute field: ``values[i]`` at ``centers[i]``."""

    attr: str
    h: float
    centers: np.ndarray
    #: Shepard-normalized kernel average; NaN where a center has no
    #: neighbors inside ``h``
    values: np.ndarray
    #: neighbor-list length per center
    counts: np.ndarray
    #: the underlying neighbor query (stats, lists, rows)
    result: NeighborResult

    def __len__(self) -> int:
        return len(self.values)


def sph_smooth(
    dataset,
    attr: str,
    h: float,
    center_box: Box | None = None,
    points=None,
    filters=(),
    engine: str = "tree",
) -> SmoothedField:
    """SPH kernel interpolation of one attribute over fixed-radius lists.

    Evaluates the Shepard-normalized cubic-spline estimate

    ``A(x_i) = sum_j W(|x_i - x_j|, h) A_j / sum_j W(|x_i - x_j|, h)``

    at every particle inside ``center_box`` (or at explicit ``points``),
    with the neighbor sums ranging over *all* particles within ``h`` —
    including ghost particles from boundary-overlapping leaf files, so
    values near file seams are exact. With neither ``center_box`` nor
    ``points`` the whole dataset is smoothed.
    """
    if center_box is None and points is None:
        center_box = dataset.metadata.bounds
    request = NeighborRequest(
        center_box=center_box,
        points=points,
        radius=float(h),
        filters=tuple(filters),
        columns=(attr,),
        engine=engine,
    )
    res = dataset.neighbors(request)
    w = cubic_spline_kernel(res.distances, h)
    vals = np.asarray(res.batch.attributes[attr], dtype=np.float64)
    num = _segment_sums(w * vals, res.offsets)
    den = _segment_sums(w, res.offsets)
    values = np.full(res.n_centers, np.nan)
    nz = den > 0
    values[nz] = num[nz] / den[nz]
    return SmoothedField(
        attr=attr, h=float(h), centers=res.centers, values=values,
        counts=res.counts, result=res,
    )


@dataclass
class FoFGroups:
    """Friends-of-friends partition of the centers of one neighbor query."""

    centers: np.ndarray
    #: group id per center, compacted to ``0..n_groups-1`` and numbered
    #: in first-appearance (canonical center) order
    labels: np.ndarray
    #: member count per group, same indexing as ``labels``
    sizes: np.ndarray
    #: the underlying fixed-radius query at the linking length
    result: NeighborResult

    @property
    def n_groups(self) -> int:
        return len(self.sizes)

    def members(self, group: int) -> np.ndarray:
        return np.flatnonzero(self.labels == group)


def fof_groups(
    dataset,
    linking_length: float,
    center_box: Box | None = None,
    filters=(),
    engine: str = "tree",
) -> FoFGroups:
    """Friends-of-friends halo finding over the particles in a region.

    Two particles belong to the same group when a chain of pairwise
    links, each shorter than ``linking_length``, connects them. Links are
    discovered with one fixed-radius neighbor query whose centers are the
    particles of ``center_box`` (default: the whole domain); neighbor
    rows resolve back to center indices through the result's order keys,
    so linking is exact across leaf-file boundaries. Neighbors outside
    the center set (ghosts beyond the region, or filtered out) never
    merge groups — membership is confined to the centers.
    """
    if center_box is None:
        center_box = dataset.metadata.bounds
    request = NeighborRequest(
        center_box=center_box,
        radius=float(linking_length),
        filters=tuple(filters),
        columns=(),
        engine=engine,
    )
    res = dataset.neighbors(request)
    n = res.n_centers
    index_of = {tuple(k): i for i, k in enumerate(res.center_keys)}

    parent = np.arange(n, dtype=np.int64)

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    offsets = res.offsets
    keys = res.keys
    for i in range(n):
        for j in range(offsets[i], offsets[i + 1]):
            other = index_of.get(tuple(keys[j]))
            if other is None or other == i:
                continue
            ri, rj = find(i), find(other)
            if ri != rj:
                # merge toward the smaller canonical index so labels are
                # deterministic across executors
                if rj < ri:
                    ri, rj = rj, ri
                parent[rj] = ri
    roots = np.array([find(i) for i in range(n)], dtype=np.int64)
    uniq, labels = np.unique(roots, return_inverse=True)
    sizes = np.bincount(labels, minlength=len(uniq))
    return FoFGroups(
        centers=res.centers, labels=labels, sizes=sizes, result=res,
    )
