"""Analysis queries over BAT data: histograms and region statistics.

The paper positions the layout for "spatial or attribute subset queries"
driving analysis as well as visualization (§I, §V-A). These helpers run
common analysis reductions *through the query engine's callback path*, so
they stream over matching particles chunk-by-chunk without materializing
the full result — the access pattern an analysis tool sitting on top of
the library would use.

All functions accept either a :class:`~repro.core.dataset.BATDataset`
(whole timestep) or a single :class:`~repro.bat.BATFile`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .api import QueryRequest
from .bat.file import BATFile
from .bat.query import query_file
from .types import Box

__all__ = ["RegionStats", "attribute_histogram", "region_stats", "attribute_summary"]


def _run_query(source, callback, box, filters, quality):
    if isinstance(source, BATFile):
        query_file(source, quality=quality, box=box, filters=filters, callback=callback)
    else:
        req = QueryRequest(quality=quality, box=box, filters=tuple(filters))
        source.query(req, callback=callback)


def _attr_range(source, attr: str) -> tuple[float, float]:
    ranges = source.attr_ranges
    if attr not in ranges:
        raise KeyError(f"no attribute {attr!r}")
    return ranges[attr]


def attribute_histogram(
    source,
    attr: str,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
    box: Box | None = None,
    filters=(),
    quality: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of one attribute over the (filtered) query result.

    Returns ``(counts, edges)`` as :func:`numpy.histogram` would, but
    computed streaming — each emitted chunk is binned and discarded.
    ``quality < 1`` histograms the LOD subset, the cheap approximate-first
    pattern progressive analysis uses.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    lo, hi = value_range if value_range is not None else _attr_range(source, attr)
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    counts = np.zeros(bins, dtype=np.int64)

    def accumulate(positions, attrs):
        h, _ = np.histogram(attrs[attr], bins=edges)
        counts[:] += h

    _run_query(source, accumulate, box, tuple(filters), quality)
    return counts, edges


@dataclass
class RegionStats:
    """Streaming count/mean/min/max/std for one attribute."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations (Welford/Chan)
    min: float = float("inf")
    max: float = float("-inf")

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        n_b = values.size
        mean_b = float(values.mean())
        m2_b = float(((values - mean_b) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self.m2 = n_b, mean_b, m2_b
        else:
            # Chan et al. parallel-variance merge
            n = self.count + n_b
            delta = mean_b - self.mean
            self.m2 += m2_b + delta * delta * self.count * n_b / n
            self.mean += delta * n_b / n
            self.count = n
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


def region_stats(
    source,
    attrs: list[str],
    box: Box | None = None,
    filters=(),
    quality: float = 1.0,
) -> dict[str, RegionStats]:
    """Count/mean/std/min/max per attribute over a spatial region."""
    for a in attrs:
        _attr_range(source, a)  # validate names up front
    stats = {a: RegionStats() for a in attrs}

    def accumulate(positions, chunk_attrs):
        for a in attrs:
            stats[a].update(chunk_attrs[a])

    _run_query(source, accumulate, box, tuple(filters), quality)
    return stats


def attribute_summary(source, box: Box | None = None, quality: float = 1.0) -> dict:
    """Stats for every attribute in the file/dataset at once."""
    if isinstance(source, BATFile):
        names = list(source.attr_names)
    else:
        names = list(source.attr_ranges.keys())
    return region_stats(source, names, box=box, quality=quality)
