"""Shared value types used across the library.

The storage model mirrors HDF5/ADIOS-style array-per-attribute layouts:
a :class:`ParticleBatch` holds an ``(N, 3)`` float32 position array plus a
named set of per-particle attribute arrays (typically float64), exactly the
data each simulation rank hands to the I/O layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Box", "AttributeSpec", "ParticleBatch"]


@dataclass(frozen=True)
class Box:
    """Axis-aligned bounding box in 3D.

    ``lower`` and ``upper`` are length-3 float64 tuples. An *empty* box is
    represented by ``lower > upper`` on every axis (see :meth:`empty`).
    """

    lower: tuple[float, float, float]
    upper: tuple[float, float, float]

    @staticmethod
    def empty() -> "Box":
        inf = float("inf")
        return Box((inf, inf, inf), (-inf, -inf, -inf))

    @staticmethod
    def of_points(points: np.ndarray) -> "Box":
        """Tight bounds of an ``(N, 3)`` array; empty box for ``N == 0``."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        if len(pts) == 0:
            return Box.empty()
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        return Box(tuple(lo.tolist()), tuple(hi.tolist()))

    @property
    def is_empty(self) -> bool:
        return any(l > u for l, u in zip(self.lower, self.upper))

    @property
    def extents(self) -> np.ndarray:
        """Edge lengths; zeros for an empty box."""
        if self.is_empty:
            return np.zeros(3)
        return np.asarray(self.upper) - np.asarray(self.lower)

    @property
    def center(self) -> np.ndarray:
        return (np.asarray(self.upper) + np.asarray(self.lower)) * 0.5

    def longest_axis(self) -> int:
        return int(np.argmax(self.extents))

    def union(self, other: "Box") -> "Box":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = np.minimum(self.lower, other.lower)
        hi = np.maximum(self.upper, other.upper)
        return Box(tuple(lo.tolist()), tuple(hi.tolist()))

    def intersects(self, other: "Box") -> bool:
        if self.is_empty or other.is_empty:
            return False
        return all(
            sl <= ou and su >= ol
            for sl, su, ol, ou in zip(self.lower, self.upper, other.lower, other.upper)
        )

    def contains_box(self, other: "Box") -> bool:
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return all(
            sl <= ol and su >= ou
            for sl, su, ol, ou in zip(self.lower, self.upper, other.lower, other.upper)
        )

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which rows of an ``(N, 3)`` array fall inside."""
        pts = np.asarray(points).reshape(-1, 3)
        if self.is_empty:
            return np.zeros(len(pts), dtype=bool)
        lo = np.asarray(self.lower)
        hi = np.asarray(self.upper)
        return np.all((pts >= lo) & (pts <= hi), axis=1)

    def split(self, axis: int, position: float) -> tuple["Box", "Box"]:
        """Split into (left, right) halves at ``position`` along ``axis``."""
        lo = list(self.lower)
        hi = list(self.upper)
        left_hi = list(hi)
        left_hi[axis] = position
        right_lo = list(lo)
        right_lo[axis] = position
        return Box(tuple(lo), tuple(left_hi)), Box(tuple(right_lo), tuple(hi))

    def as_array(self) -> np.ndarray:
        """``(2, 3)`` float64 array ``[lower, upper]``."""
        return np.array([self.lower, self.upper], dtype=np.float64)

    @staticmethod
    def from_array(arr: np.ndarray) -> "Box":
        arr = np.asarray(arr, dtype=np.float64).reshape(2, 3)
        return Box(tuple(arr[0].tolist()), tuple(arr[1].tolist()))


@dataclass(frozen=True)
class AttributeSpec:
    """Name and dtype of one per-particle attribute array."""

    name: str
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


class ParticleBatch:
    """A set of particles: positions plus named attribute arrays.

    Positions are stored as ``(N, 3)`` float32 (matching the paper's three
    single-precision coordinates); attributes are 1D arrays of length N,
    float64 by default.

    Column-projected reads (a :class:`QueryRequest` whose ``columns`` does
    not name ``"positions"``) produce *positions-free* batches:
    ``positions`` is ``None`` and the row count comes from ``count``.
    Such batches still support ``len``, ``nbytes``, ``select``, and
    ``concatenate``; ``bounds`` reports an empty box.
    """

    def __init__(
        self,
        positions: np.ndarray | None,
        attributes: dict[str, np.ndarray] | None = None,
        count: int | None = None,
    ):
        if positions is None:
            if count is None:
                raise ValueError("a positions-free batch needs an explicit count")
            n = int(count)
        else:
            positions = np.ascontiguousarray(positions, dtype=np.float32).reshape(-1, 3)
            n = len(positions)
            if count is not None and int(count) != n:
                raise ValueError(f"count {count} != len(positions) {n}")
        self.positions = positions
        self._count = n
        self.attributes: dict[str, np.ndarray] = {}
        for name, arr in (attributes or {}).items():
            arr = np.ascontiguousarray(arr)
            if arr.shape != (n,):
                raise ValueError(
                    f"attribute {name!r} has shape {arr.shape}, expected ({n},)"
                )
            self.attributes[name] = arr

    @staticmethod
    def empty(
        attribute_specs: list[AttributeSpec] | None = None,
        with_positions: bool = True,
    ) -> "ParticleBatch":
        attrs = {
            spec.name: np.empty(0, dtype=spec.dtype) for spec in (attribute_specs or [])
        }
        positions = np.empty((0, 3), dtype=np.float32) if with_positions else None
        return ParticleBatch(positions, attrs, count=0)

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        """Raw payload size: positions (when present) plus attribute arrays."""
        pos_nbytes = self.positions.nbytes if self.positions is not None else 0
        return pos_nbytes + sum(a.nbytes for a in self.attributes.values())

    @property
    def bounds(self) -> Box:
        if self.positions is None:
            return Box.empty()
        return Box.of_points(self.positions)

    def attribute_specs(self) -> list[AttributeSpec]:
        return [AttributeSpec(name, arr.dtype) for name, arr in self.attributes.items()]

    def select(self, index: np.ndarray) -> "ParticleBatch":
        """New batch containing rows picked by an index or boolean mask."""
        attrs = {name: arr[index] for name, arr in self.attributes.items()}
        if self.positions is None:
            # the row count survives projection: size the selection against
            # an index over [0, count)
            n = int(np.arange(self._count)[index].size)
            return ParticleBatch(None, attrs, count=n)
        return ParticleBatch(self.positions[index], attrs)

    @staticmethod
    def concatenate(batches: list["ParticleBatch"]) -> "ParticleBatch":
        batches = [b for b in batches if b is not None]
        if not batches:
            return ParticleBatch.empty()
        names = list(batches[0].attributes.keys())
        with_positions = batches[0].positions is not None
        for b in batches:
            if list(b.attributes.keys()) != names:
                raise ValueError("cannot concatenate batches with mismatched attributes")
            if (b.positions is not None) != with_positions:
                raise ValueError(
                    "cannot concatenate positions-free and positioned batches"
                )
        attrs = {
            name: np.concatenate([b.attributes[name] for b in batches]) for name in names
        }
        if not with_positions:
            return ParticleBatch(None, attrs, count=sum(b.count for b in batches))
        positions = np.concatenate([b.positions for b in batches], axis=0)
        return ParticleBatch(positions, attrs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParticleBatch(n={len(self)}, attrs={list(self.attributes)}, "
            f"bytes={self.nbytes})"
        )
