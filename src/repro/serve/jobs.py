"""Durable, resumable batch-job queue over the serve tier.

An analysis sweep — ten thousand box/filter/quality queries over a
dataset — must survive everything a long run meets: worker crashes,
router restarts, poisoned queries, and an interactive session arriving
mid-sweep. This module keeps the sweep's entire state in one SQLite
file (stdlib ``sqlite3``, WAL mode) so a killed process resumes from the
last acknowledged query by simply being started again on the same store.

The state machine per task::

    pending ──lease──▶ leased ──complete──▶ done      (idempotent record)
       ▲                  │ fail (attempts < max)
       │◀── backoff ──────┤
       │                  │ fail (attempts == max)
       │                  ▼
       └── lease expiry   dead                         (dead-letter)

Delivery is **at-least-once**: a runner that dies mid-task leaves its
lease to expire, after which any runner re-leases the task and executes
it again. Completion is **idempotent and exactly-once in the log**: the
``completions`` table has one row per task (primary-keyed), a second
acknowledgement only bumps its ``duplicates`` counter — so "every query
answered exactly once in the completion log" is a table invariant, not a
scheduling hope. Results are digests (sha256 over the response bytes),
and because batch execution bypasses load degradation, a re-executed
task reproduces the identical digest — re-delivery is observable but
harmless.

Failures retry with exponential backoff (``not_before`` gates
re-leasing); a task that keeps failing lands in the ``dead`` state with
its last error preserved, and the sweep completes around it.

Runners feed the router's stateless :meth:`ShardedQueryService.execute`
(or :meth:`QueryService.execute`), which runs at bulk priority under the
shared admission budget — a sweep cannot starve interactive sessions.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..api import QueryRequest
from ..types import Box
from .loadgen import _digest
from .shard import request_from_doc, request_to_doc

__all__ = ["JobConfig", "JobStore", "JobRunner", "make_sweep"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id   TEXT PRIMARY KEY,
    source   TEXT NOT NULL DEFAULT '',
    step     INTEGER NOT NULL DEFAULT 0,
    created  REAL NOT NULL,
    total    INTEGER NOT NULL,
    meta     TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS tasks (
    job_id       TEXT NOT NULL,
    idx          INTEGER NOT NULL,
    request      TEXT NOT NULL,
    state        TEXT NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    lease_owner  TEXT,
    lease_expiry REAL,
    not_before   REAL NOT NULL DEFAULT 0,
    error        TEXT,
    PRIMARY KEY (job_id, idx)
);
CREATE INDEX IF NOT EXISTS tasks_by_state ON tasks (job_id, state, not_before);
CREATE TABLE IF NOT EXISTS completions (
    job_id     TEXT NOT NULL,
    idx        INTEGER NOT NULL,
    worker     TEXT NOT NULL,
    completed  REAL NOT NULL,
    digest     TEXT NOT NULL,
    points     INTEGER NOT NULL,
    duplicates INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (job_id, idx)
);
"""


@dataclass(frozen=True)
class JobConfig:
    """Runner/queue tuning knobs."""

    #: seconds a lease stays exclusive before any runner may re-lease
    lease_seconds: float = 30.0
    #: attempts before a task is dead-lettered
    max_attempts: int = 4
    #: base of the exponential retry backoff (seconds)
    backoff: float = 0.25
    #: tasks leased per store round-trip
    batch_size: int = 8
    #: idle poll interval while other runners hold the remaining leases
    poll_seconds: float = 0.05


class JobStore:
    """SQLite-backed durable queue; safe across threads and processes.

    Every mutating method takes an optional ``now`` so tests can drive
    lease expiry and backoff deterministically; the default is wall
    clock. All methods are small single transactions — crash-killing a
    process between any two of them leaves a consistent store.
    """

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock, self._conn:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, job_id: str, requests, *, source: str = "", step: int = 0,
               meta: dict | None = None, now: float | None = None) -> int:
        """Create a job (idempotent). Returns how many tasks were added.

        Re-submitting an existing job id is a no-op per task (INSERT OR
        IGNORE), so ``repro jobs submit`` after a crash never duplicates
        or resets work already done.
        """
        now = time.time() if now is None else now
        reqs = list(requests)
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO jobs (job_id, source, step, created, "
                "total, meta) VALUES (?, ?, ?, ?, ?, ?)",
                (job_id, source, step, now, len(reqs),
                 json.dumps(meta or {}, sort_keys=True)),
            )
            added = 0
            for idx, req in enumerate(reqs):
                cur = self._conn.execute(
                    "INSERT OR IGNORE INTO tasks (job_id, idx, request) "
                    "VALUES (?, ?, ?)",
                    (job_id, idx, json.dumps(request_to_doc(req), sort_keys=True)),
                )
                added += cur.rowcount
        return added

    def job(self, job_id: str) -> dict:
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id, source, step, created, total, meta FROM jobs "
                "WHERE job_id = ?", (job_id,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id!r} in {self.path}")
        return {
            "job_id": row[0], "source": row[1], "step": row[2],
            "created": row[3], "total": row[4], "meta": json.loads(row[5]),
        }

    def jobs(self) -> list[str]:
        with self._lock:
            return [r[0] for r in self._conn.execute(
                "SELECT job_id FROM jobs ORDER BY created"
            )]

    # -- the queue protocol ------------------------------------------------

    def lease(self, job_id: str, worker: str, *, limit: int = 1,
              lease_seconds: float = 30.0,
              now: float | None = None) -> list[tuple[int, dict, int]]:
        """Claim up to ``limit`` runnable tasks for ``worker``.

        Runnable: ``pending`` past its backoff gate, or ``leased`` with
        an **expired** lease (the at-least-once re-dispatch after a
        runner died holding it). Returns ``(idx, request_doc, attempts)``
        tuples, lowest index first — resumption is ordered, so "resume
        from the last acknowledged query" falls out of the state alone.
        """
        now = time.time() if now is None else now
        with self._lock, self._conn:
            rows = self._conn.execute(
                "SELECT idx, request, attempts FROM tasks WHERE job_id = ? "
                "AND ((state = 'pending' AND not_before <= ?) "
                "  OR (state = 'leased' AND lease_expiry <= ?)) "
                "ORDER BY idx LIMIT ?",
                (job_id, now, now, limit),
            ).fetchall()
            out = []
            for idx, request, attempts in rows:
                self._conn.execute(
                    "UPDATE tasks SET state = 'leased', lease_owner = ?, "
                    "lease_expiry = ? WHERE job_id = ? AND idx = ?",
                    (worker, now + lease_seconds, job_id, idx),
                )
                out.append((idx, json.loads(request), attempts))
        return out

    def complete(self, job_id: str, idx: int, worker: str, digest: str,
                 points: int, now: float | None = None) -> bool:
        """Acknowledge one task. Idempotent: returns ``True`` only once.

        A duplicate acknowledgement (the re-executed half of an
        at-least-once redelivery) bumps the completion row's
        ``duplicates`` counter and changes nothing else — the completion
        log keeps exactly one record per task, forever.
        """
        now = time.time() if now is None else now
        with self._lock, self._conn:
            state = self._conn.execute(
                "SELECT state FROM tasks WHERE job_id = ? AND idx = ?",
                (job_id, idx),
            ).fetchone()
            if state is None:
                raise KeyError(f"no task {idx} in job {job_id!r}")
            if state[0] == "done":
                self._conn.execute(
                    "UPDATE completions SET duplicates = duplicates + 1 "
                    "WHERE job_id = ? AND idx = ?", (job_id, idx),
                )
                return False
            self._conn.execute(
                "UPDATE tasks SET state = 'done', error = NULL, "
                "lease_owner = NULL, lease_expiry = NULL "
                "WHERE job_id = ? AND idx = ?", (job_id, idx),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO completions (job_id, idx, worker, "
                "completed, digest, points) VALUES (?, ?, ?, ?, ?, ?)",
                (job_id, idx, worker, now, digest, points),
            )
        return True

    def fail(self, job_id: str, idx: int, error: str, *,
             max_attempts: int = 4, backoff: float = 0.25,
             now: float | None = None) -> str:
        """Record one failed attempt; retry with backoff or dead-letter.

        Returns the task's new state (``"pending"`` or ``"dead"``).
        """
        now = time.time() if now is None else now
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT attempts FROM tasks WHERE job_id = ? AND idx = ?",
                (job_id, idx),
            ).fetchone()
            if row is None:
                raise KeyError(f"no task {idx} in job {job_id!r}")
            attempts = row[0] + 1
            state = "dead" if attempts >= max_attempts else "pending"
            self._conn.execute(
                "UPDATE tasks SET state = ?, attempts = ?, error = ?, "
                "lease_owner = NULL, lease_expiry = NULL, not_before = ? "
                "WHERE job_id = ? AND idx = ?",
                (state, attempts, error,
                 now + backoff * (2.0 ** (attempts - 1)), job_id, idx),
            )
        return state

    def release(self, job_id: str, idx: int) -> None:
        """Return a lease unexecuted (clean runner stop, not a failure)."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE tasks SET state = 'pending', lease_owner = NULL, "
                "lease_expiry = NULL WHERE job_id = ? AND idx = ? "
                "AND state = 'leased'", (job_id, idx),
            )

    # -- inspection --------------------------------------------------------

    def counts(self, job_id: str) -> dict:
        """Per-state task counts plus the completion-log accounting."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM tasks WHERE job_id = ? "
                "GROUP BY state", (job_id,),
            ).fetchall()
            comp = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(duplicates), 0), "
                "COALESCE(SUM(points), 0) FROM completions WHERE job_id = ?",
                (job_id,),
            ).fetchone()
            total = self._conn.execute(
                "SELECT COALESCE(total, 0) FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        doc = {"pending": 0, "leased": 0, "done": 0, "dead": 0}
        doc.update(dict(rows))
        doc["total"] = total[0] if total else 0
        doc["completions"] = comp[0]
        doc["duplicate_acks"] = comp[1]
        doc["points"] = comp[2]
        return doc

    def outstanding(self, job_id: str) -> bool:
        """Any task still pending or leased (i.e. the sweep is not over)?"""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM tasks WHERE job_id = ? AND state IN "
                "('pending', 'leased') LIMIT 1", (job_id,),
            ).fetchone()
        return row is not None

    def dead(self, job_id: str) -> list[tuple[int, str]]:
        """The dead-letter queue: ``(idx, last error)`` per poisoned task."""
        with self._lock:
            return self._conn.execute(
                "SELECT idx, error FROM tasks WHERE job_id = ? AND "
                "state = 'dead' ORDER BY idx", (job_id,),
            ).fetchall()

    def completions(self, job_id: str) -> list[tuple[int, str, int, int]]:
        """The completion log: ``(idx, digest, points, duplicates)``."""
        with self._lock:
            return self._conn.execute(
                "SELECT idx, digest, points, duplicates FROM completions "
                "WHERE job_id = ? ORDER BY idx", (job_id,),
            ).fetchall()


class JobRunner:
    """Drains one job through a service's stateless batch path.

    ``service`` is anything with ``execute(request, step=) ->
    ServeResponse`` — the sharded router or a single-process
    :class:`~repro.serve.service.QueryService`. Several runners (in one
    process or many) may drain the same job concurrently; the lease
    protocol keeps them off each other's tasks.
    """

    def __init__(self, store: JobStore, service, job_id: str, *,
                 worker: str = "runner-0", config: JobConfig | None = None,
                 clock=time.time):
        self.store = store
        self.service = service
        self.job_id = job_id
        self.worker = worker
        self.config = config or JobConfig()
        self._clock = clock
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the runner to stop after the task in hand (leases released)."""
        self._stop.set()

    def run(self, max_tasks: int | None = None, *,
            clean_stop: bool = True) -> dict:
        """Drain runnable tasks until the job has none left.

        ``max_tasks`` bounds executed tasks (tests and crash drills);
        with ``clean_stop=False`` the runner then simply *stops* —
        leases in hand stay leased, exactly as a SIGKILL would leave
        them, and expire for the next runner to pick up. Returns the
        final :meth:`JobStore.counts` view.
        """
        cfg = self.config
        step = self.store.job(self.job_id)["step"]
        executed = 0
        while not self._stop.is_set():
            if max_tasks is not None and executed >= max_tasks:
                break
            leased = self.store.lease(
                self.job_id, self.worker, limit=cfg.batch_size,
                lease_seconds=cfg.lease_seconds, now=self._clock(),
            )
            if not leased:
                if not self.store.outstanding(self.job_id):
                    break
                # other runners hold the remaining leases, or backoff
                # gates are still in the future — wait, then re-check
                time.sleep(cfg.poll_seconds)
                continue
            for idx, doc, _attempts in leased:
                if self._stop.is_set() or (
                    max_tasks is not None and executed >= max_tasks
                ):
                    if clean_stop:
                        self.store.release(self.job_id, idx)
                    continue
                executed += 1
                req = request_from_doc(doc)
                try:
                    resp = self.service.execute(req, step=step)
                except Exception as exc:  # noqa: BLE001 - recorded, retried
                    self.store.fail(
                        self.job_id, idx, f"{type(exc).__name__}: {exc}",
                        max_attempts=cfg.max_attempts, backoff=cfg.backoff,
                        now=self._clock(),
                    )
                    continue
                if resp.partial:
                    # quarantined leaves make the digest unstable; treat
                    # as a failure so the retry sees a repaired dataset
                    # or the task dead-letters with a clear reason
                    self.store.fail(
                        self.job_id, idx,
                        f"partial response ({resp.quarantined_files} "
                        "quarantined leaves)",
                        max_attempts=cfg.max_attempts, backoff=cfg.backoff,
                        now=self._clock(),
                    )
                    continue
                self.store.complete(
                    self.job_id, idx, self.worker, _digest(resp.batch),
                    len(resp), now=self._clock(),
                )
        return self.store.counts(self.job_id)


def make_sweep(bounds: Box, n: int, *, seed: int = 0,
               qualities=(0.25, 0.5, 1.0)) -> list[QueryRequest]:
    """A deterministic analysis sweep: ``n`` random boxes over ``bounds``.

    Seeded, so submitting the same sweep twice builds the identical job
    (and :meth:`JobStore.submit` then dedupes it entirely).
    """
    rng = np.random.default_rng(seed)
    lo = np.asarray(bounds.lower, dtype=np.float64)
    hi = np.asarray(bounds.upper, dtype=np.float64)
    span = hi - lo
    out = []
    for _ in range(n):
        center = lo + rng.random(3) * span
        half = (0.08 + 0.25 * rng.random(3)) * span
        box = Box(
            tuple(np.maximum(lo, center - half)),
            tuple(np.minimum(hi, center + half)),
        )
        out.append(QueryRequest(
            box=box, quality=float(rng.choice(list(qualities)))
        ))
    return out
