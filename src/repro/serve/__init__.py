"""Concurrent query serving over BAT datasets (the read side at scale).

The paper's read path (§V–VI) is built to answer *something useful at any
budget*; this package supplies the machinery that makes that promise hold
for many simultaneous clients instead of one: a bounded priority
scheduler with admission control (:mod:`~repro.serve.scheduler`),
adaptive quality degradation under load (:mod:`~repro.serve.degrade`), a
shared TTL+LRU result cache above the plan cache
(:mod:`~repro.serve.cache`), pre-completion request collapsing of
overlapping in-flight decodes (:mod:`~repro.serve.collapse`), streamed
per-rung delivery with bounded-outbox backpressure
(:mod:`~repro.serve.streaming`), a windowed JSON metrics surface
(:mod:`~repro.serve.metrics`), and a deterministic load generator
(:mod:`~repro.serve.loadgen`). :class:`~repro.serve.service.QueryService`
ties them together; the viz-layer
:class:`~repro.viz.server.ProgressiveStreamServer` is a thin wrapper over
it, and :mod:`repro.serve.aio` fronts it with a single asyncio event
loop for thousands of concurrent progressive sessions.
"""

from .aio import AsyncQueryService, AsyncStream, run_load_async
from .cache import ResultCache, result_key
from .collapse import CollapseAbandoned, CollapseKey, FollowSpec, InflightTable
from .degrade import DegradationConfig, DegradationPolicy
from .hashing import HashRing, assign_leaves, region_key
from .jobs import JobConfig, JobRunner, JobStore, make_sweep
from .loadgen import (
    LoadReport,
    TraceOp,
    make_hot_traces,
    make_traces,
    run_load,
    verify_identity_samples,
)
from .metrics import RequestSpan, ServeMetrics, json_sanitize, percentile
from .scheduler import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    AdmissionRejected,
    RequestScheduler,
    SchedulerClosed,
    SchedulerConfig,
    Ticket,
)
from .service import (
    QueryService,
    ServeConfig,
    ServeResponse,
    ServeSession,
    resolve_step_manifests,
)
from .shard import (
    ShardCrashed,
    ShardedQueryService,
    ShardUnavailable,
    request_from_doc,
    request_to_doc,
)
from .streaming import StreamHandle, StreamOutbox

__all__ = [
    "AdmissionRejected",
    "AsyncQueryService",
    "AsyncStream",
    "CollapseAbandoned",
    "CollapseKey",
    "DegradationConfig",
    "DegradationPolicy",
    "FollowSpec",
    "HashRing",
    "InflightTable",
    "JobConfig",
    "JobRunner",
    "JobStore",
    "LoadReport",
    "PRIORITY_BULK",
    "PRIORITY_INTERACTIVE",
    "QueryService",
    "RequestScheduler",
    "RequestSpan",
    "ResultCache",
    "SchedulerClosed",
    "SchedulerConfig",
    "ServeConfig",
    "ServeMetrics",
    "ServeResponse",
    "ServeSession",
    "ShardCrashed",
    "ShardUnavailable",
    "ShardedQueryService",
    "StreamHandle",
    "StreamOutbox",
    "Ticket",
    "TraceOp",
    "assign_leaves",
    "json_sanitize",
    "make_hot_traces",
    "make_sweep",
    "make_traces",
    "percentile",
    "region_key",
    "request_from_doc",
    "request_to_doc",
    "resolve_step_manifests",
    "run_load",
    "run_load_async",
    "verify_identity_samples",
]
