"""Concurrent query serving over BAT datasets (the read side at scale).

The paper's read path (§V–VI) is built to answer *something useful at any
budget*; this package supplies the machinery that makes that promise hold
for many simultaneous clients instead of one: a bounded priority
scheduler with admission control (:mod:`~repro.serve.scheduler`),
adaptive quality degradation under load (:mod:`~repro.serve.degrade`), a
shared TTL+LRU result cache above the plan cache
(:mod:`~repro.serve.cache`), a JSON metrics surface
(:mod:`~repro.serve.metrics`), and a deterministic load generator
(:mod:`~repro.serve.loadgen`). :class:`~repro.serve.service.QueryService`
ties them together; the viz-layer
:class:`~repro.viz.server.ProgressiveStreamServer` is a thin wrapper over
it.
"""

from .cache import ResultCache, result_key
from .degrade import DegradationConfig, DegradationPolicy
from .loadgen import LoadReport, TraceOp, make_traces, run_load, verify_identity_samples
from .metrics import RequestSpan, ServeMetrics, percentile
from .scheduler import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    AdmissionRejected,
    RequestScheduler,
    SchedulerClosed,
    SchedulerConfig,
    Ticket,
)
from .service import QueryService, ServeConfig, ServeResponse, ServeSession

__all__ = [
    "AdmissionRejected",
    "DegradationConfig",
    "DegradationPolicy",
    "LoadReport",
    "PRIORITY_BULK",
    "PRIORITY_INTERACTIVE",
    "QueryService",
    "RequestScheduler",
    "RequestSpan",
    "ResultCache",
    "SchedulerClosed",
    "SchedulerConfig",
    "ServeConfig",
    "ServeMetrics",
    "ServeResponse",
    "ServeSession",
    "Ticket",
    "TraceOp",
    "make_traces",
    "percentile",
    "result_key",
    "run_load",
    "verify_identity_samples",
]
