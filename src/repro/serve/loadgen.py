"""Load generator: replay interactive session traces against the service.

Models the paper's visualization clients (§V-B): each simulated client
opens a session and walks a deterministic trace of *zoom* (progressive
quality ramp into a shrinking box), *pan* (box translation, which resets
the progression), and *filter* (attribute range toggles) operations.
Traces are generated from a seed, so two runs at the same settings issue
the identical request stream — only scheduling differs.

``run_load`` drives one :class:`~repro.serve.service.QueryService` with
``concurrency`` client threads and returns a :class:`LoadReport` carrying
per-request latencies (p50/p99), throughput, rejection counts, and a
sample of served responses with their exact ``(step, box, filters,
prev_quality, quality)`` coordinates — the bench suite replays those
coordinates against a direct :class:`~repro.core.dataset.BATDataset` and
asserts byte identity, so "fast under load" can never drift from
"correct".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..api import QueryRequest
from ..bat.query import AttributeFilter
from ..types import Box
from .scheduler import AdmissionRejected
from .service import QueryService

__all__ = ["TraceOp", "LoadReport", "make_traces", "make_hot_traces", "run_load"]


@dataclass(frozen=True)
class TraceOp:
    """One client request: reach ``quality`` for the given view."""

    quality: float
    box: Box | None = None
    filters: tuple[AttributeFilter, ...] = ()


@dataclass
class LoadReport:
    """Everything one load run observed, ready for the bench payload."""

    requests: int = 0
    rejected: int = 0
    degraded: int = 0
    cache_hits: int = 0
    #: responses served off an overlapping in-flight decode
    collapsed: int = 0
    #: streamed responses cut short at a rung boundary by backpressure
    shed: int = 0
    #: increments delivered across all requests
    increments: int = 0
    points: int = 0
    nbytes: int = 0
    elapsed_seconds: float = 0.0
    #: request latency; under open-loop arrivals, measured from the
    #: *scheduled* arrival time (coordinated-omission-free)
    latencies: list[float] = field(default_factory=list)
    #: time-to-first-increment per streamed request
    ttfi: list[float] = field(default_factory=list)
    #: (step, box, filters, prev_quality, served_quality, digest) samples
    identity_samples: list[tuple] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0


def _zoom_trace(rng, bounds: Box, steps: int) -> list[TraceOp]:
    """Progressively refine into a shrinking box around one focus point."""
    lo = np.asarray(bounds.lower)
    hi = np.asarray(bounds.upper)
    focus = lo + rng.random(3) * (hi - lo)
    ops = []
    qualities = np.linspace(0.2, 1.0, steps)
    for i, q in enumerate(qualities):
        half = (hi - lo) * (0.5 - 0.35 * i / max(steps - 1, 1)) / 2.0
        box = Box(tuple((focus - half).tolist()), tuple((focus + half).tolist()))
        ops.append(TraceOp(quality=float(q), box=box))
    return ops


def _pan_trace(rng, bounds: Box, steps: int) -> list[TraceOp]:
    """Slide a window across the domain; every move resets progression."""
    lo = np.asarray(bounds.lower)
    hi = np.asarray(bounds.upper)
    size = (hi - lo) * 0.3
    start = lo + rng.random(3) * (hi - lo - size)
    step_vec = (hi - lo - size) / max(steps, 1) * rng.choice([-1.0, 1.0], 3)
    ops = []
    for i in range(steps):
        corner = np.clip(start + i * step_vec, lo, hi - size)
        box = Box(tuple(corner.tolist()), tuple((corner + size).tolist()))
        ops.append(TraceOp(quality=0.6, box=box))
    return ops


def _filter_trace(rng, attr_ranges: dict, steps: int) -> list[TraceOp]:
    """Toggle attribute ranges at moderate quality, then go full."""
    if not attr_ranges:
        return [TraceOp(quality=q) for q in np.linspace(0.3, 1.0, steps)]
    name = sorted(attr_ranges)[int(rng.integers(len(attr_ranges)))]
    glo, ghi = attr_ranges[name]
    ops = []
    for i in range(steps):
        width = 0.25 + 0.5 * rng.random()
        start = glo + rng.random() * (1.0 - width) * (ghi - glo)
        filt = AttributeFilter(name, float(start), float(start + width * (ghi - glo)))
        ops.append(TraceOp(quality=0.5 if i % 2 else 1.0, filters=(filt,)))
    return ops


def make_traces(
    n_sessions: int,
    bounds: Box,
    attr_ranges: dict | None = None,
    ops_per_session: int = 6,
    seed: int = 0,
) -> list[list[TraceOp]]:
    """Deterministic per-session request traces, mixing the three patterns."""
    rng = np.random.default_rng(seed)
    traces = []
    kinds = ["zoom", "pan", "filter"]
    for i in range(n_sessions):
        kind = kinds[i % len(kinds)]
        if kind == "zoom":
            traces.append(_zoom_trace(rng, bounds, ops_per_session))
        elif kind == "pan":
            traces.append(_pan_trace(rng, bounds, ops_per_session))
        else:
            traces.append(_filter_trace(rng, attr_ranges or {}, ops_per_session))
    return traces


def make_hot_traces(
    n_sessions: int,
    bounds: Box,
    n_views: int = 4,
    ops_per_session: int = 6,
    seed: int = 0,
) -> list[list[TraceOp]]:
    """Traces where many sessions walk a shared set of hot views.

    A realistic thundering herd: viewers pile onto the same handful of
    interesting regions (a collaboration session, a linked dashboard), so
    concurrent requests overlap heavily. This is the workload where
    pre-completion request collapsing pays — :func:`make_traces` gives
    every session its own random focus and collapse rarely triggers.
    """
    rng = np.random.default_rng(seed)
    views = [_zoom_trace(rng, bounds, ops_per_session) for _ in range(n_views)]
    # block assignment: cohorts of adjacent sessions share a view, so
    # their requests are in flight together (round-robin would interleave
    # views and a small worker pool would rarely see two alike at once)
    return [views[i * n_views // n_sessions] for i in range(n_sessions)]


def _digest(batch) -> str:
    import hashlib

    h = hashlib.sha256(batch.positions.tobytes())
    for name in sorted(batch.attributes):
        h.update(batch.attributes[name].tobytes())
    return h.hexdigest()


def run_load(
    service: QueryService,
    traces: list[list[TraceOp]],
    concurrency: int,
    identity_sample_every: int = 7,
    step: int = 0,
    arrival: str = "closed",
    rate_hz: float = 200.0,
    arrival_seed: int = 0,
) -> LoadReport:
    """Replay ``traces`` with ``concurrency`` client threads.

    Sessions are dealt round-robin to clients; each client walks its
    sessions sequentially (one outstanding request at a time, like a real
    viewer awaiting its increment). Rejected requests are counted and the
    client moves on — the retry policy lives with clients, not here.

    ``arrival`` picks the load model. The default ``"closed"`` loop above
    waits for each response before issuing the next request, which
    under-reports latency when the service stalls (coordinated omission:
    a stalled client stops generating the load that would have queued).
    ``arrival="open"`` instead draws seeded Poisson interarrivals at
    ``rate_hz`` and submits on that schedule regardless of completions;
    latency is then measured from each request's *scheduled* arrival to
    its completion, so a stall shows up in every latency it delayed.
    ``concurrency`` is ignored in open mode (one dispatcher, completions
    observed via ticket callbacks).
    """
    if arrival not in ("closed", "open"):
        raise ValueError(f"arrival must be 'closed' or 'open', got {arrival!r}")
    if arrival == "open":
        return _run_load_open(
            service, traces, rate_hz, arrival_seed, identity_sample_every, step
        )
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    lanes: list[list[list[TraceOp]]] = [[] for _ in range(concurrency)]
    for i, trace in enumerate(traces):
        lanes[i % concurrency].append(trace)

    report = LoadReport()
    lock = threading.Lock()

    def client(lane: list[list[TraceOp]], lane_index: int) -> None:
        for trace_index, trace in enumerate(lane):
            sid = service.open_session(step)
            try:
                for op_index, op in enumerate(trace):
                    t0 = time.perf_counter()
                    try:
                        resp = service.request(
                            sid,
                            QueryRequest(
                                quality=op.quality, box=op.box, filters=op.filters
                            ),
                        )
                    except AdmissionRejected:
                        with lock:
                            report.requests += 1
                            report.rejected += 1
                        continue
                    dt = time.perf_counter() - t0
                    with lock:
                        report.requests += 1
                        report.latencies.append(dt)
                        report.points += len(resp)
                        report.nbytes += resp.batch.nbytes
                        if resp.degraded:
                            report.degraded += 1
                        if resp.cache_hit:
                            report.cache_hits += 1
                        sample_slot = (
                            lane_index * 131 + trace_index * 17 + op_index
                        )
                        if sample_slot % identity_sample_every == 0 and len(resp):
                            report.identity_samples.append(
                                (
                                    step,
                                    op.box,
                                    tuple(op.filters),
                                    resp.prev_quality,
                                    resp.served_quality,
                                    _digest(resp.batch),
                                )
                            )
            finally:
                service.close_session(sid)

    threads = [
        threading.Thread(target=client, args=(lane, i), name=f"loadgen-{i}")
        for i, lane in enumerate(lanes)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.elapsed_seconds = time.perf_counter() - t_start
    return report


def _run_load_open(
    service: QueryService,
    traces: list[list[TraceOp]],
    rate_hz: float,
    arrival_seed: int,
    identity_sample_every: int,
    step: int,
) -> LoadReport:
    """Open-loop arrivals: deterministic Poisson schedule, pipelined submits.

    Requests are interleaved round-robin across sessions (so concurrent
    arrivals mix views) and submitted at their scheduled instants whether
    or not earlier ones completed; the per-session lock inside the
    service keeps each session's progression ordered. Latency uses the
    ticket's ``finished_at`` stamp against the scheduled arrival — both
    on the service's clock only when it is the default
    ``time.perf_counter``, which is what the bench suite uses.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be > 0")
    rng = np.random.default_rng(arrival_seed)
    sids = [service.open_session(step) for _ in traces]
    flat: list[tuple[int, int, TraceOp]] = []
    max_ops = max((len(t) for t in traces), default=0)
    for op_index in range(max_ops):
        for s_index, trace in enumerate(traces):
            if op_index < len(trace):
                flat.append((s_index, op_index, trace[op_index]))
    arrivals = np.cumsum(rng.exponential(1.0 / rate_hz, size=len(flat)))

    report = LoadReport()
    lock = threading.Lock()
    completions = threading.Semaphore(0)

    def on_done(ticket, scheduled: float, op: TraceOp, slot: int) -> None:
        try:
            resp = ticket.result(0)
        except BaseException:
            completions.release()
            return
        latency = max(ticket.finished_at - scheduled, 0.0)
        with lock:
            report.latencies.append(latency)
            report.points += len(resp)
            report.nbytes += resp.batch.nbytes
            report.increments += resp.increments
            if resp.degraded:
                report.degraded += 1
            if resp.cache_hit:
                report.cache_hits += 1
            if resp.collapsed:
                report.collapsed += 1
            if resp.shed:
                report.shed += 1
            if slot % identity_sample_every == 0 and len(resp) and not resp.partial:
                report.identity_samples.append(
                    (
                        step,
                        op.box,
                        tuple(op.filters),
                        resp.prev_quality,
                        resp.served_quality,
                        _digest(resp.batch),
                    )
                )
        completions.release()

    issued = 0
    t0 = time.perf_counter()
    try:
        for i, ((s_index, op_index, op), t_arr) in enumerate(zip(flat, arrivals)):
            now = time.perf_counter() - t0
            if t_arr > now:
                time.sleep(t_arr - now)
            scheduled = t0 + t_arr
            with lock:
                report.requests += 1
            try:
                ticket = service.submit(
                    sids[s_index],
                    QueryRequest(quality=op.quality, box=op.box, filters=op.filters),
                )
            except AdmissionRejected:
                with lock:
                    report.rejected += 1
                continue
            issued += 1
            slot = s_index * 131 + op_index * 17
            ticket.add_done_callback(
                lambda t, scheduled=scheduled, op=op, slot=slot: on_done(
                    t, scheduled, op, slot
                )
            )
    finally:
        for _ in range(issued):
            completions.acquire()
        for sid in sids:
            service.close_session(sid)
    report.elapsed_seconds = time.perf_counter() - t0
    return report


def verify_identity_samples(dataset, samples) -> int:
    """Re-run sampled responses directly; raise on any byte difference.

    Returns the number of samples checked. The direct query bypasses the
    scheduler, the degradation policy, and the result cache entirely —
    whatever those layers did, the bytes must match.
    """
    for step, box, filters, prev_q, served_q, digest in samples:
        batch, _ = dataset.query(
            QueryRequest(
                quality=served_q, prev_quality=prev_q, box=box, filters=filters
            )
        )
        if _digest(batch) != digest:
            raise AssertionError(
                f"served response diverged from direct query at step={step} "
                f"box={box} filters={filters} q={prev_q}->{served_q}"
            )
    return len(samples)
