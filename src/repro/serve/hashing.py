"""Consistent hashing of leaf-file regions onto shard workers.

The sharded serve tier partitions a dataset's leaf files across N worker
processes so every shard owns a disjoint slice of the spatial domain —
its own file handles, decoded-column budget, plan memo, and quarantine
state. Ownership must be a *pure function of the manifest*: the router
and every worker compute it independently (they only share the manifest
path and the shard count), so there is no ownership table to ship,
version, or repair after a worker restart.

A classic consistent-hash ring does that: each shard contributes
``replicas`` virtual points at ``sha1("shard:replica")``, a leaf hashes
its region key — ``dataset / step / leaf bounding box`` — onto the ring,
and the first shard point clockwise owns it. Keying on the *region*
rather than the leaf index keeps ownership stable across rewrites that
renumber leaves but preserve geometry, and gives spatially meaningful
placement diagnostics (a shard owns boxes, not arbitrary ints). With
replicas in the dozens the assignment is balanced to a few percent, and
changing the shard count moves only ~1/N of the leaves — the property
that makes elastic resizing cheap later.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "region_key", "assign_leaves"]

DEFAULT_REPLICAS = 64


def _hash64(key: str) -> int:
    """Stable 64-bit hash of a text key (sha1 prefix; not security)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


def region_key(dataset: str, step: int, bounds) -> str:
    """The canonical ring key of one leaf region.

    ``bounds`` is the leaf's :class:`~repro.types.Box`; ``repr`` of the
    float coordinates is exact and stable across processes, so router
    and workers derive identical keys from identical manifests.
    """
    lo = ",".join(repr(float(v)) for v in bounds.lower)
    hi = ",".join(repr(float(v)) for v in bounds.upper)
    return f"{dataset}/{step}/{lo}/{hi}"


class HashRing:
    """``n_shards`` shards, each as ``replicas`` virtual ring points."""

    def __init__(self, n_shards: int, replicas: int = DEFAULT_REPLICAS):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points = []
        for shard in range(self.n_shards):
            for rep in range(self.replicas):
                points.append((_hash64(f"shard-{shard}:{rep}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, key: str) -> int:
        """The shard owning ``key`` (first ring point clockwise)."""
        h = _hash64(key)
        i = bisect.bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashRing(n_shards={self.n_shards}, replicas={self.replicas})"


def assign_leaves(metadata, dataset: str, step: int, ring: HashRing) -> tuple:
    """Per-leaf shard owners, positionally aligned with ``metadata.leaves``.

    Deterministic given (manifest, shard count, replicas): the router and
    every worker call this independently and must agree, which the shard
    test suite asserts directly.
    """
    return tuple(
        ring.owner(region_key(dataset, step, leaf.bounds))
        for leaf in metadata.leaves
    )
