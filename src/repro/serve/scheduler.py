"""Bounded priority scheduler with admission control.

Many sessions share one dataset, one plan cache, and one file-handle
cache; letting every request run the moment it arrives would thrash all
three (and the page cache under them). The scheduler instead bounds the
number of *executing* requests to ``capacity`` worker threads and parks
the overflow in a priority queue:

- **priority** — interactive refinements (a session adding quality to a
  view it already holds, or a cheap first paint below the interactive
  quality threshold) run before cold full-quality scans, so a heavy
  analytics client cannot starve the viewers;
- **admission control** — the global queue is bounded by ``max_queued``
  and each session may hold at most ``max_session_queue`` outstanding
  requests; past either bound, :meth:`submit` raises
  :class:`AdmissionRejected` immediately instead of letting latency grow
  without bound. Rejection is cheap and explicit — clients back off and
  retry, which is the behaviour the adaptive degradation layer needs to
  see load actually drain.

Within a priority class, requests run in strict FIFO (a monotone sequence
number breaks ties), so two equal-priority requests from one session
execute in submission order.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import Counter
from dataclasses import dataclass

from ..errors import AdmissionRejected

__all__ = [
    "AdmissionRejected",
    "SchedulerClosed",
    "SchedulerConfig",
    "Ticket",
    "RequestScheduler",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_BULK",
]

#: runs first: refinements of an existing view / cheap first paints
PRIORITY_INTERACTIVE = 0
#: runs after: cold full-quality scans
PRIORITY_BULK = 1


class SchedulerClosed(RuntimeError):
    """The scheduler was shut down while this request was pending."""


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission-control bounds."""

    #: maximum concurrently executing requests (worker thread count)
    capacity: int = 4
    #: maximum requests waiting in the global queue
    max_queued: int = 64
    #: maximum outstanding (queued + running) requests per session
    max_session_queue: int = 8

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.max_session_queue < 1:
            raise ValueError("max_session_queue must be >= 1")


class Ticket:
    """Completion handle for one admitted request."""

    __slots__ = (
        "priority", "seq", "session_id", "fn",
        "enqueued_at", "started_at", "finished_at", "wait_seconds",
        "_done", "_result", "_error", "_cb_lock", "_callbacks",
    )

    def __init__(self, priority: int, seq: int, session_id: int, fn):
        self.priority = priority
        self.seq = seq
        self.session_id = session_id
        self.fn = fn
        self.enqueued_at = 0.0
        self.started_at = 0.0
        #: stamped just before the ticket resolves; with ``enqueued_at``
        #: it gives open-loop drivers the latency from *scheduled* arrival
        self.finished_at = 0.0
        self.wait_seconds = 0.0
        self._done = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._cb_lock = threading.Lock()
        self._callbacks: list | None = []

    def done(self) -> bool:
        return self._done.is_set()

    def add_done_callback(self, cb) -> None:
        """Call ``cb(ticket)`` when the ticket resolves (immediately if it
        already has). Runs on the worker thread — event-loop front ends
        must trampoline via ``loop.call_soon_threadsafe``."""
        with self._cb_lock:
            if self._callbacks is not None:
                self._callbacks.append(cb)
                return
        cb(self)

    def result(self, timeout: float | None = None):
        """Block until the request ran; re-raise its exception if it failed."""
        if not self._done.wait(timeout):
            raise TimeoutError("request still pending")
        if self._error is not None:
            raise self._error
        return self._result

    def _finish(self, result=None, error: BaseException | None = None) -> None:
        self._result = result
        self._error = error
        self._done.set()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, None
        for cb in callbacks:
            cb(self)

    def __lt__(self, other: "Ticket") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class RequestScheduler:
    """Priority queue + bounded worker pool fronting the query engine."""

    def __init__(self, config: SchedulerConfig | None = None, clock=time.perf_counter):
        self.config = config or SchedulerConfig()
        self._clock = clock
        self._cond = threading.Condition()
        self._heap: list[Ticket] = []
        self._per_session: Counter = Counter()
        self._seq = 0
        self._in_flight = 0
        self._closed = False
        self.admitted = 0
        self.rejected_queue_full = 0
        self.rejected_session_full = 0
        self.executed = 0
        self.max_queue_depth = 0
        self._workers = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(self.config.capacity)
        ]
        for w in self._workers:
            w.start()

    # -- admission -----------------------------------------------------------

    def submit(self, fn, session_id: int = 0, priority: int = PRIORITY_BULK) -> Ticket:
        """Admit ``fn`` for execution or raise :class:`AdmissionRejected`.

        ``fn`` is called on a worker thread with the ticket as its only
        argument (so the work can read its own queue-wait time); its
        return value / exception surfaces through the returned ticket.
        """
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            depth = len(self._heap)
            if depth >= self.config.max_queued:
                self.rejected_queue_full += 1
                raise AdmissionRejected("global queue full", depth)
            if self._per_session[session_id] >= self.config.max_session_queue:
                self.rejected_session_full += 1
                raise AdmissionRejected(f"session {session_id} queue full", depth)
            self._seq += 1
            ticket = Ticket(priority, self._seq, session_id, fn)
            ticket.enqueued_at = self._clock()
            heapq.heappush(self._heap, ticket)
            self._per_session[session_id] += 1
            self.admitted += 1
            self.max_queue_depth = max(self.max_queue_depth, len(self._heap))
            self._cond.notify()
            return ticket

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    def load_factor(self) -> float:
        """Backlog relative to capacity; > 1.0 means requests are waiting."""
        with self._cond:
            return (len(self._heap) + self._in_flight) / self.config.capacity

    def stats(self) -> dict:
        with self._cond:
            return {
                "capacity": self.config.capacity,
                "max_queued": self.config.max_queued,
                "max_session_queue": self.config.max_session_queue,
                "queued": len(self._heap),
                "in_flight": self._in_flight,
                "admitted": self.admitted,
                "executed": self.executed,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_session_full": self.rejected_session_full,
                "max_queue_depth": self.max_queue_depth,
            }

    # -- execution -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._closed:
                    self._cond.wait()
                if self._closed and not self._heap:
                    return
                ticket = heapq.heappop(self._heap)
                self._in_flight += 1
            ticket.started_at = self._clock()
            ticket.wait_seconds = ticket.started_at - ticket.enqueued_at
            try:
                result = ticket.fn(ticket)
            except BaseException as exc:  # surface through the ticket
                ticket.finished_at = self._clock()
                ticket._finish(error=exc)
            else:
                ticket.finished_at = self._clock()
                ticket._finish(result=result)
            with self._cond:
                self._in_flight -= 1
                self._per_session[ticket.session_id] -= 1
                if self._per_session[ticket.session_id] <= 0:
                    del self._per_session[ticket.session_id]
                self.executed += 1
                self._cond.notify_all()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and nothing is executing."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._heap or self._in_flight:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; pending tickets fail with SchedulerClosed."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not wait:
                pending, self._heap = self._heap, []
                for t in pending:
                    self._per_session[t.session_id] -= 1
                    t._finish(error=SchedulerClosed("scheduler closed"))
            self._cond.notify_all()
        for w in self._workers:
            w.join()

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"RequestScheduler(capacity={s['capacity']}, queued={s['queued']}, "
            f"in_flight={s['in_flight']})"
        )
