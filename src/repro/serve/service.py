"""The concurrent query service fronting one dataset or time series.

:class:`QueryService` multiplexes many client sessions over one set of
shared resources — one file-handle cache, one plan cache per timestep,
one result cache, one in-flight collapse table, one executor — where
previously every :class:`~repro.viz.server.ProgressiveStreamServer`
session family owned its own. A request travels::

    request() ── admission ──▶ RequestScheduler (priority queue,
        │ rejected past bounds      capacity worker threads)
        │                               │
        │                               ▼ per-session lock
        │                    DegradationPolicy.observe(load)
        │                               │ quality ceiling
        │                               ▼
        │                    ResultCache.get ── hit ──▶ response
        │                               │ miss
        │                               ▼
        │                    InflightTable.acquire ── follower ──▶ consume
        │                               │ leader                 leader's
        │                               ▼                        increments
        │                    Dataset.plan (PlanCache) ─▶ Dataset.query /
        │                               │                Dataset.stream
        │                               ▼                (BATFileCache)
        └──────────◀─────────  cache put + session accounting

Two execution modes share that path. :meth:`QueryService.submit` /
:meth:`~QueryService.request` are the one-shot mode: the worker runs
:meth:`~repro.core.dataset.BATDataset.query` exactly as before and the
response carries one batch. :meth:`QueryService.stream` is the
progressive mode: the worker walks the quality ladder via
:meth:`~repro.core.dataset.BATDataset.stream`, pushing each rung's
increment through a bounded per-session outbox as it materializes; a
consumer that falls behind sheds the remaining rungs at a rung boundary
(the session simply refines from there later, like load degradation).

Either way the **collapse table** sits between the result cache and the
decode: concurrent requests whose plans touch overlapping work — same
view, or a derived column-subset / filter-superset / rung-truncation of
it — share one decode, with the leader publishing increments and
followers adapting them per-request (see :mod:`repro.serve.collapse`).

Every response is byte-identical to a direct
:meth:`~repro.core.dataset.BATDataset.query` at the same effective
``(prev_quality, quality)`` — the scheduler, the caches, the collapse
table, and the streaming mode reorder and deduplicate work, they never
alter results. Degradation and shedding only lower the quality ceiling
of *new* increments, so a degraded or shed session refining after load
drains converges to exactly the full-quality data set.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..api import (
    NeighborRequest,
    NeighborResult,
    QueryRequest,
    StreamIncrement,
    reassemble_stream,
    warn_deprecated,
)
from ..bat.colcache import DEFAULT_COLUMN_CACHE_BYTES
from ..bat.filecache import DEFAULT_CAPACITY, BATFileCache
from ..bat.query import default_quality_ladder
from ..core.dataset import BATDataset
from ..core.metadata import DatasetMetadata
from ..types import Box, ParticleBatch
from .cache import ResultCache, neighbor_result_key, result_key
from .collapse import _DONE, CollapseAbandoned, CollapseKey, InflightTable, adapt_increment
from .degrade import DegradationConfig, DegradationPolicy
from .metrics import (
    DEFAULT_METRICS_WINDOW,
    AccessTelemetry,
    RequestSpan,
    ServeMetrics,
    json_sanitize,
)
from .scheduler import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    RequestScheduler,
    SchedulerClosed,
    SchedulerConfig,
    Ticket,
)
from .streaming import StreamHandle, StreamOutbox

__all__ = [
    "ServeConfig",
    "ServeSession",
    "ServeResponse",
    "QueryService",
    "resolve_step_manifests",
]


def resolve_step_manifests(source) -> dict[int, Path]:
    """``{step: manifest path}`` for one serveable source.

    ``source`` is either a ``*.meta.json`` manifest (one timestep,
    served as step 0) or a time-series directory containing
    ``series.json``. Shared by :class:`QueryService` and every shard
    worker process, so the router and its workers always agree on the
    step layout.
    """
    source = Path(source)
    if source.suffix == ".json" and source.is_file():
        return {0: source}
    from ..core.timeseries import TimeSeriesDataset

    series = TimeSeriesDataset(source)
    try:
        manifests = {
            s: series.directory / series.record(s).metadata_file
            for s in series.steps
        }
    finally:
        series.close()
    if not manifests:
        raise ValueError(f"time series at {source} has no written steps")
    return manifests


@dataclass(frozen=True)
class ServeConfig:
    """All tuning knobs of the service in one place."""

    #: maximum concurrently executing queries (scheduler worker threads)
    capacity: int = 4
    #: global queue bound; submissions past it are rejected
    max_queued: int = 64
    #: outstanding requests allowed per session
    max_session_queue: int = 8
    #: requests at or below this quality count as interactive first paints
    interactive_quality: float = 0.35
    #: result-cache entry bound and TTL (seconds; None disables expiry)
    result_cache_entries: int = 256
    result_ttl: float | None = 30.0
    #: degradation policy knobs (see :mod:`repro.serve.degrade`)
    degradation: DegradationConfig = field(default_factory=DegradationConfig)
    #: executor spec for per-file fan-out inside one query (see
    #: :mod:`repro.parallel`); serial by default — the scheduler already
    #: provides cross-request concurrency
    executor: str | None = None
    #: bound on simultaneously open leaf files, shared by all sessions
    max_open_files: int = DEFAULT_CAPACITY
    #: byte budget of the decoded-column LRU shared by every open file
    #: (0 disables the tier; columns then decode cold on every touch)
    column_cache_bytes: int = DEFAULT_COLUMN_CACHE_BYTES
    #: collapse concurrent overlapping requests onto one in-flight decode
    collapse: bool = True
    #: how long a follower waits on its leader before falling back to its
    #: own query (None = forever; the leader always runs on a live worker)
    collapse_timeout: float | None = 30.0
    #: increments buffered per streamed request before its worker blocks
    stream_outbox: int = 8
    #: how long a streamed worker waits on a full outbox before shedding
    #: the remaining rungs (None = never shed on backpressure)
    stream_grace: float | None = 2.0
    #: quality-ladder resolution for streamed requests (2**levels rungs
    #: across the full quality range; see ``default_quality_ladder``)
    stream_levels: int = 8
    #: ring-buffer size for latency/TTFI percentile samples
    metrics_window: int = DEFAULT_METRICS_WINDOW


@dataclass
class ServeSession:
    """One client's progressive view, owned by the service."""

    session_id: int
    step: int = 0
    box: Box | None = None
    filters: tuple = ()
    columns: tuple | None = None
    delivered_quality: float = 0.0
    bytes_sent: int = 0
    requests: int = 0
    downgrades: int = 0
    #: serializes this session's requests across scheduler workers
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def matches(self, step, box, filters, columns=None) -> bool:
        return (
            self.step == step
            and self.box == box
            and self.filters == tuple(filters)
            and self.columns == columns
        )


@dataclass
class ServeResponse:
    """What one admitted request returns."""

    batch: ParticleBatch
    requested_quality: float
    served_quality: float
    prev_quality: float
    #: quality was lowered by the load-shedding policy (not a data loss)
    degraded: bool
    cache_hit: bool
    span: RequestSpan
    #: data from quarantined (corrupt/missing) leaf files is absent
    partial: bool = False
    #: how many leaf files this response could not see
    quarantined_files: int = 0
    #: served off an overlapping in-flight request's decode
    collapsed: bool = False
    #: the stream stopped early at a rung boundary (slow consumer);
    #: ``served_quality`` is the last fully delivered rung
    shed: bool = False
    #: increments delivered (1 for a one-shot response, 0 if nothing new)
    increments: int = 0
    #: the full neighbor-query result when the request was a
    #: :class:`~repro.api.NeighborRequest` (``batch`` then holds its rows)
    neighbors: NeighborResult | None = None

    def __len__(self) -> int:
        return len(self.batch)


class QueryService:
    """Concurrent, admission-controlled front end over BAT datasets.

    ``source`` is either a ``*.meta.json`` manifest (one timestep, served
    as step 0) or a time-series directory containing ``series.json``.
    """

    def __init__(self, source, config: ServeConfig | None = None, clock=time.perf_counter):
        self.config = config or ServeConfig()
        self._clock = clock
        self._file_cache = BATFileCache(
            self.config.max_open_files,
            column_cache_bytes=self.config.column_cache_bytes,
        )
        self._datasets: dict[int, BATDataset] = {}
        self._dataset_lock = threading.Lock()
        source = Path(source)
        self._step_manifests = resolve_step_manifests(source)
        self._directory = next(iter(self._step_manifests.values())).parent
        self.scheduler = RequestScheduler(
            SchedulerConfig(
                capacity=self.config.capacity,
                max_queued=self.config.max_queued,
                max_session_queue=self.config.max_session_queue,
            ),
            clock=clock,
        )
        self.degradation = DegradationPolicy(self.config.degradation)
        self.results = ResultCache(
            capacity=self.config.result_cache_entries, ttl=self.config.result_ttl
        )
        self.collapse = InflightTable()
        self.metrics = ServeMetrics(clock=clock, window=self.config.metrics_window)
        #: per-(step, leaf) access tallies — the reorganizer's evidence
        self.telemetry = AccessTelemetry()
        self._sessions: dict[int, ServeSession] = {}
        self._session_lock = threading.Lock()
        self._next_session = 0
        #: outboxes of streams admitted but not yet finished; close()
        #: must resolve every one of them before tearing down datasets
        self._live_outboxes: set[StreamOutbox] = set()
        self._outbox_lock = threading.Lock()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self, *, cancel: bool = False) -> None:
        """Release every shared resource; by default drain queued work first.

        ``cancel=True`` is the bounded-shutdown path: live stream
        outboxes are abandoned first (in-flight workers then shed at the
        next rung boundary instead of blocking on full outboxes, and
        collapse followers fall back and shed in turn), queued tickets
        are cancelled with :class:`~repro.serve.scheduler.SchedulerClosed`
        rather than drained, and only then do the workers join — so
        teardown never races a worker still publishing. Either way every
        admitted stream's outbox is finished before datasets close, so no
        consumer can block forever on a service that no longer exists.
        """
        with self._outbox_lock:
            if self._closed:
                return
            self._closed = True
        if cancel:
            with self._outbox_lock:
                outboxes = list(self._live_outboxes)
            for outbox in outboxes:
                outbox.abandon()
            self.scheduler.close(wait=False)
        else:
            self.scheduler.close(wait=True)
        # safety net: a ticket cancelled before its worker ran never
        # reaches the fn's finally-finish; resolve its consumer here
        with self._outbox_lock:
            outboxes = list(self._live_outboxes)
            self._live_outboxes.clear()
        for outbox in outboxes:
            outbox.finish(None)
        with self._dataset_lock:
            for ds in self._datasets.values():
                ds.close()
            self._datasets.clear()
        self.results.clear()
        self._file_cache.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------------

    @property
    def steps(self) -> list[int]:
        return sorted(self._step_manifests)

    def dataset(self, step: int = 0) -> BATDataset:
        """The (lazily opened) dataset behind one step; shared handles."""
        with self._dataset_lock:
            ds = self._datasets.get(step)
            if ds is None:
                manifest = self._step_manifests.get(step)
                if manifest is None:
                    raise KeyError(f"no step {step}; have {self.steps}")
                ds = BATDataset(
                    manifest,
                    executor=self.config.executor,
                    file_cache=self._file_cache,
                )
                ds.telemetry = self.telemetry.bind(step)
                self._datasets[step] = ds
            return ds

    def generation(self, step: int = 0) -> int:
        """The layout generation the service currently serves for a step."""
        return self.dataset(step).metadata.generation

    def reload_step(self, step: int = 0) -> int:
        """Swap in the step's current on-disk manifest; returns its generation.

        The coherent-invalidation path of an online reorganization
        republish: the old dataset is closed (its handles drop from the
        shared file cache — deferred under leases, so streams in flight
        finish on their pinned old-generation handles), the step's result
        entries are evicted eagerly, and the fresh manifest's generation
        flows into every plan/result/collapse key from here on. In-flight
        requests holding the old dataset object still read the old leaf
        files (a reorg never deletes them in place), so whichever
        generation a request observed, its response is byte-identical to
        a direct query against that generation.
        """
        with self._dataset_lock:
            old = self._datasets.pop(step, None)
        if old is not None:
            old.close()
        self.results.invalidate_step(step)
        return self.dataset(step).metadata.generation

    def maybe_reload(self, step: int = 0) -> bool:
        """Reload one step iff its on-disk manifest generation moved."""
        manifest = self._step_manifests.get(step)
        if manifest is None:
            raise KeyError(f"no step {step}; have {self.steps}")
        on_disk = DatasetMetadata.load(manifest).generation
        if on_disk == self.dataset(step).metadata.generation:
            return False
        self.reload_step(step)
        return True

    # -- sessions ----------------------------------------------------------------

    def open_session(self, step: int = 0) -> int:
        if step not in self._step_manifests:
            raise KeyError(f"no step {step}; have {self.steps}")
        with self._session_lock:
            sid = self._next_session
            self._next_session += 1
            self._sessions[sid] = ServeSession(session_id=sid, step=step)
            return sid

    def close_session(self, session_id: int) -> ServeSession:
        with self._session_lock:
            return self._sessions.pop(session_id)

    def session(self, session_id: int) -> ServeSession:
        with self._session_lock:
            return self._sessions[session_id]

    @property
    def n_sessions(self) -> int:
        with self._session_lock:
            return len(self._sessions)

    # -- requests ----------------------------------------------------------------

    def _priority(self, sess: ServeSession, req: QueryRequest, step) -> int:
        """Refinements of a held view and cheap first paints go first."""
        if req.quality <= self.config.interactive_quality:
            return PRIORITY_INTERACTIVE
        if (
            sess.matches(step, req.box, req.filters, req.columns)
            and sess.delivered_quality > 0.0
        ):
            return PRIORITY_INTERACTIVE
        return PRIORITY_BULK

    @staticmethod
    def _coerce_legacy_request(method: str, request, legacy: dict) -> QueryRequest:
        """Map the pre-``QueryRequest`` call form onto a request object."""
        warn_deprecated(
            f"QueryService.{method}(" + ", ".join(sorted(
                (["quality"] if request is not None else []) + sorted(legacy)
            )) + ")",
            "pass a repro.QueryRequest",
            stacklevel=4,
        )
        if "quality" in legacy:
            if request is not None:
                raise TypeError(f"{method}() got multiple values for 'quality'")
            request = legacy.pop("quality")
        if request is None:
            raise TypeError(f"{method}() missing a QueryRequest (or legacy quality)")
        req = QueryRequest(
            quality=request,
            box=legacy.pop("box", None),
            filters=tuple(legacy.pop("filters", ())),
        )
        if legacy:
            name = next(iter(legacy))
            raise TypeError(f"{method}() got an unexpected keyword argument {name!r}")
        return req

    def submit(
        self,
        session_id: int,
        request: QueryRequest | float | None = None,
        *,
        step: int | None = None,
        **legacy,
    ) -> Ticket:
        """Admit one progressive request; the ticket resolves to a
        :class:`ServeResponse`. Raises
        :class:`~repro.serve.scheduler.AdmissionRejected` past the bounds
        (the rejection is recorded on the metrics surface).

        Takes a :class:`~repro.api.QueryRequest` or a
        :class:`~repro.api.NeighborRequest` (served one-shot at bulk
        priority through the same caches and collapse table); the
        pre-1.x form (``submit(sid, quality, box=..., filters=...)``)
        still works as a deprecated shim.
        """
        if isinstance(request, NeighborRequest):
            if legacy:
                name = next(iter(legacy))
                raise TypeError(f"submit() got an unexpected keyword argument {name!r}")
            return self._submit_neighbors(session_id, request, step)
        if not isinstance(request, QueryRequest):
            request = self._coerce_legacy_request("submit", request, legacy)
        elif legacy:
            name = next(iter(legacy))
            raise TypeError(f"submit() got an unexpected keyword argument {name!r}")
        sess = self.session(session_id)
        step = sess.step if step is None else step
        span = RequestSpan(
            session_id=session_id, seq=0, requested_quality=request.quality,
        )
        priority = self._priority(sess, request, step)
        span.priority = priority

        def fn(ticket):
            return self._execute(ticket, sess, span, request, step)

        try:
            ticket = self.scheduler.submit(fn, session_id=session_id, priority=priority)
        except Exception as exc:
            span.rejected = True
            span.queue_depth = getattr(exc, "queue_depth", 0)
            self.metrics.record(span)
            raise
        span.seq = ticket.seq
        return ticket

    def request(
        self,
        session_id: int,
        request: QueryRequest | float | None = None,
        *,
        step: int | None = None,
        timeout: float | None = None,
        **legacy,
    ) -> ServeResponse:
        """Synchronous :meth:`submit` — blocks until the response is ready."""
        if isinstance(request, NeighborRequest):
            pass
        elif not isinstance(request, QueryRequest):
            request = self._coerce_legacy_request("request", request, legacy)
        elif legacy:
            name = next(iter(legacy))
            raise TypeError(f"request() got an unexpected keyword argument {name!r}")
        return self.submit(session_id, request, step=step).result(timeout)

    #: scheduler session id of stateless batch work (no ServeSession)
    BATCH_SESSION = -1

    def execute(
        self, request: QueryRequest, step: int = 0, timeout: float | None = None
    ) -> ServeResponse:
        """Stateless one-shot window at bulk priority (the batch-job path).

        No session, no degradation: the window is exactly the request's
        ``(prev_quality, quality]``, so re-executing the same request —
        the at-least-once redelivery of :mod:`repro.serve.jobs` — always
        reproduces the identical bytes and completion digest. Shares the
        result cache and scheduler with interactive traffic but never
        outranks it.

        Also takes a :class:`~repro.api.NeighborRequest` — neighbor
        queries are one-shot by nature, so the stateless path serves
        them for both batch jobs and sessionless clients.
        """
        if isinstance(request, NeighborRequest):
            return self._submit_neighbors(
                self.BATCH_SESSION, request, step
            ).result(timeout)
        if not isinstance(request, QueryRequest):
            raise TypeError("execute() takes a repro.QueryRequest")
        span = RequestSpan(
            session_id=self.BATCH_SESSION, seq=0,
            requested_quality=request.quality,
            prev_quality=request.prev_quality,
        )
        span.priority = PRIORITY_BULK

        def fn(ticket):
            return self._execute_stateless(ticket, span, request, step)

        try:
            ticket = self.scheduler.submit(
                fn, session_id=self.BATCH_SESSION, priority=PRIORITY_BULK
            )
        except Exception as exc:
            span.rejected = True
            span.queue_depth = getattr(exc, "queue_depth", 0)
            self.metrics.record(span)
            raise
        span.seq = ticket.seq
        return ticket.result(timeout)

    def _execute_stateless(self, ticket, span, req: QueryRequest, step: int):
        t_start = self._clock()
        span.wait_seconds = ticket.wait_seconds
        sched = self.scheduler
        span.queue_depth = sched.queue_depth + sched.in_flight
        ds = self.dataset(step)
        prev, effective = req.prev_quality, req.quality
        key = result_key(
            step, req.box, req.filters, prev, effective, req.columns,
            generation=ds.metadata.generation,
        )
        batch = self.results.get(key)
        cache_hit = batch is not None
        if not cache_hit:
            t0 = self._clock()
            plan = ds.plan(req.box, req.filters)
            span.plan_seconds = self._clock() - t0
            exec_req = replace(req, on_error="degrade")
            t0 = self._clock()
            batch, qstats = ds.query(exec_req, plan=plan)
            span.traverse_seconds = self._clock() - t0
            span.quarantined_files = qstats.quarantined_files
            span.partial = qstats.quarantined_files > 0
            if not span.partial:
                self.results.put(key, batch)
        span.increments = 1
        span.served_quality = effective
        span.cache_hit = cache_hit
        span.points = len(batch)
        span.nbytes = batch.nbytes
        span.total_seconds = span.wait_seconds + (self._clock() - t_start)
        self.metrics.record(span)
        return ServeResponse(
            batch=batch,
            requested_quality=req.quality,
            served_quality=effective,
            prev_quality=prev,
            degraded=False,
            cache_hit=cache_hit,
            span=span,
            partial=span.partial,
            quarantined_files=span.quarantined_files,
            increments=span.increments,
        )

    def _submit_neighbors(self, session_id: int, request: NeighborRequest, step) -> Ticket:
        """Admit one neighbor query (bulk priority, one-shot)."""
        sess = None
        if session_id != self.BATCH_SESSION:
            sess = self.session(session_id)
            step = sess.step if step is None else step
        else:
            step = 0 if step is None else step
        span = RequestSpan(
            session_id=session_id, seq=0, requested_quality=1.0, prev_quality=0.0,
        )
        span.priority = PRIORITY_BULK

        def fn(ticket):
            return self._execute_neighbor(ticket, sess, span, request, step)

        try:
            ticket = self.scheduler.submit(
                fn, session_id=session_id, priority=PRIORITY_BULK
            )
        except Exception as exc:
            span.rejected = True
            span.queue_depth = getattr(exc, "queue_depth", 0)
            self.metrics.record(span)
            raise
        span.seq = ticket.seq
        return ticket

    def _execute_neighbor(
        self, ticket, sess, span, req: NeighborRequest, step: int
    ) -> ServeResponse:
        """Result cache → collapse → :meth:`BATDataset.neighbors`.

        Neighbor results are one-shot (no quality ladder), so the
        collapse entry publishes exactly one increment whose ``batch``
        is the whole :class:`~repro.api.NeighborResult`; joins are
        exact-match only (the frozen request rides in the key's ``box``
        slot). Partial results — a quarantined leaf — are never cached
        and never shared, exactly like the query family.
        """
        t_start = self._clock()
        span.wait_seconds = ticket.wait_seconds
        sched = self.scheduler
        span.queue_depth = sched.queue_depth + sched.in_flight
        ds = self.dataset(step)
        gen = ds.metadata.generation
        key = neighbor_result_key(step, req, generation=gen)
        result = self.results.get(key)
        cache_hit = result is not None
        collapsed = False
        if not cache_hit:
            entry = spec = None
            if self.config.collapse:
                ckey = CollapseKey(
                    step, req, (), 0.0, 1.0, None, req.engine, gen,
                    family="neighbor",
                )
                entry, spec = self.collapse.acquire(ckey, (1.0,))
            if spec is not None:
                incs, _, abandoned = self._follow(entry, spec, span, None, t_start)
                if abandoned:
                    self.collapse.record_fallback()
                elif incs:
                    result = incs[0].batch
                    collapsed = True
            if result is None:
                leading = entry is not None and spec is None
                try:
                    t0 = self._clock()
                    exec_req = replace(req, on_error="degrade")
                    result = ds.neighbors(exec_req)
                    span.traverse_seconds = self._clock() - t0
                    span.quarantined_files = result.stats.quarantined_files
                    span.partial = result.stats.quarantined_files > 0
                    if leading:
                        entry.publish(StreamIncrement(
                            quality=1.0, prev_quality=0.0, batch=result,
                            partial=span.partial,
                        ))
                        entry.finish()
                    if not span.partial:
                        self.results.put(key, result)
                except BaseException:
                    if leading:
                        entry.abandon()
                    raise
                finally:
                    if leading:
                        self.collapse.release(entry)
        span.increments = 1
        span.served_quality = 1.0
        span.cache_hit = cache_hit
        span.collapsed = collapsed
        span.points = len(result)
        span.nbytes = result.nbytes
        span.total_seconds = span.wait_seconds + (self._clock() - t_start)
        self.metrics.record(span)
        if sess is not None:
            with sess.lock:
                sess.requests += 1
                sess.bytes_sent += result.nbytes
        return ServeResponse(
            batch=result.batch,
            requested_quality=1.0,
            served_quality=1.0,
            prev_quality=0.0,
            degraded=False,
            cache_hit=cache_hit,
            span=span,
            partial=span.partial,
            quarantined_files=span.quarantined_files,
            collapsed=collapsed,
            increments=1,
            neighbors=result,
        )

    def stream(
        self,
        session_id: int,
        request: QueryRequest,
        *,
        step: int | None = None,
        ladder: tuple | None = None,
        on_event=None,
    ) -> StreamHandle:
        """Admit one progressive request in streaming mode.

        The returned :class:`~repro.serve.streaming.StreamHandle` yields
        one :class:`~repro.api.StreamIncrement` per quality-ladder rung
        as the worker materializes it; ``handle.result()`` resolves to
        the same :class:`ServeResponse` a one-shot :meth:`request` would
        return, whose batch is the reassembly of exactly the delivered
        increments. A consumer that stops draining sheds the remaining
        rungs (``response.shed``); the session's ``delivered_quality``
        then reflects only the rungs actually delivered, so the next
        request refines from there — convergence is never lost.

        ``ladder`` overrides the default quality ladder (rungs outside
        the effective ``(prev, quality]`` window are dropped);
        ``on_event`` is a thread-safe callback fired whenever the stream
        gains an increment or finishes (the asyncio front end's wakeup).
        """
        if not isinstance(request, QueryRequest):
            raise TypeError("stream() takes a repro.QueryRequest")
        sess = self.session(session_id)
        step = sess.step if step is None else step
        span = RequestSpan(
            session_id=session_id, seq=0, requested_quality=request.quality,
        )
        span.streamed = True
        priority = self._priority(sess, request, step)
        span.priority = priority
        outbox = StreamOutbox(self.config.stream_outbox, on_event=on_event)
        with self._outbox_lock:
            if self._closed:
                raise SchedulerClosed("service is closed")
            self._live_outboxes.add(outbox)

        def fn(ticket):
            error = None
            try:
                return self._execute(
                    ticket, sess, span, request, step, outbox=outbox, ladder=ladder
                )
            except BaseException as exc:
                error = exc
                raise
            finally:
                outbox.finish(error)

        try:
            ticket = self.scheduler.submit(fn, session_id=session_id, priority=priority)
        except Exception as exc:
            with self._outbox_lock:
                self._live_outboxes.discard(outbox)
            span.rejected = True
            span.queue_depth = getattr(exc, "queue_depth", 0)
            self.metrics.record(span)
            raise
        span.seq = ticket.seq
        # resolves the outbox even when the ticket is cancelled before
        # its worker ever runs (close(cancel=True) with a deep queue);
        # finish() is first-call-wins, so this never masks a real error
        ticket.add_done_callback(lambda t: self._stream_done(outbox, t))
        return StreamHandle(outbox, ticket)

    def _stream_done(self, outbox: StreamOutbox, ticket) -> None:
        with self._outbox_lock:
            self._live_outboxes.discard(outbox)
        try:
            ticket.result(0)
        except BaseException as exc:  # noqa: BLE001 - forwarded to consumer
            outbox.finish(exc)
        else:
            outbox.finish(None)

    # -- the worker-side hot path ----------------------------------------------

    def _empty_batch(self, ds: BATDataset, columns) -> ParticleBatch:
        specs = ds.attribute_specs()
        if columns is not None:
            specs = [sp for sp in specs if sp.name in columns]
        return ParticleBatch.empty(specs)

    def _execute(
        self, ticket, sess: ServeSession, span, req: QueryRequest, step,
        outbox: StreamOutbox | None = None, ladder: tuple | None = None,
    ):
        t_start = self._clock()
        span.wait_seconds = ticket.wait_seconds
        sched = self.scheduler
        quality = req.quality
        box, filters, columns = req.box, req.filters, req.columns
        streamed = outbox is not None
        with sess.lock:
            span.queue_depth = sched.queue_depth + sched.in_flight
            # a view change restarts the progression before degradation
            # is even consulted — the old increments are for another view
            if not sess.matches(step, box, filters, columns):
                sess.step = step
                sess.box = box
                sess.filters = filters
                sess.columns = columns
                sess.delivered_quality = 0.0
            prev = sess.delivered_quality
            span.prev_quality = prev

            self.degradation.observe(sched.load_factor())
            effective, degraded = self.degradation.apply(quality)
            span.degraded = degraded
            if degraded:
                sess.downgrades += 1

            ds = self.dataset(step)
            shed = False
            if effective <= prev:
                # nothing new to send at this ceiling (already-delivered
                # data is never re-sent, degraded or not)
                batch = self._empty_batch(ds, columns)
                served = prev
                cache_hit = False
            else:
                key = result_key(
                    step, box, filters, prev, effective, columns,
                    generation=ds.metadata.generation,
                )
                batch = self.results.get(key)
                cache_hit = batch is not None
                if cache_hit:
                    served = effective
                    if streamed:
                        inc = StreamIncrement(
                            quality=effective, prev_quality=prev, batch=batch
                        )
                        if outbox.push(inc, self.config.stream_grace):
                            span.increments = 1
                            span.first_increment_seconds = (
                                span.wait_seconds + (self._clock() - t_start)
                            )
                        else:
                            shed = True
                            batch = self._empty_batch(ds, columns)
                            served = prev
                    else:
                        span.increments = 1
                else:
                    t0 = self._clock()
                    plan = ds.plan(box, filters)
                    span.plan_seconds = self._clock() - t0
                    batch, served, shed = self._execute_miss(
                        span, req, step, ds, plan, prev, effective,
                        outbox, ladder, t_start,
                    )
                    if batch is None:
                        batch = self._empty_batch(ds, columns)
                    t0 = self._clock()
                    if not span.partial and served > prev:
                        # partial results must not be served to later
                        # requests from the cache as if they were
                        # complete; shed results are cached at the
                        # (prev, served) window they actually cover
                        self.results.put(
                            result_key(
                                step, box, filters, prev, served, columns,
                                generation=ds.metadata.generation,
                            ),
                            batch,
                        )
                    span.gather_seconds = self._clock() - t0
            if served > prev:
                sess.delivered_quality = served
            span.shed = shed
            sess.requests += 1
            sess.bytes_sent += batch.nbytes
        span.served_quality = served
        span.cache_hit = cache_hit
        span.points = len(batch)
        span.nbytes = batch.nbytes
        span.total_seconds = span.wait_seconds + (self._clock() - t_start)
        self.metrics.record(span)
        return ServeResponse(
            batch=batch,
            requested_quality=quality,
            served_quality=served,
            prev_quality=span.prev_quality,
            degraded=span.degraded,
            cache_hit=cache_hit,
            span=span,
            partial=span.partial,
            quarantined_files=span.quarantined_files,
            collapsed=span.collapsed,
            shed=shed,
            increments=span.increments,
        )

    def _execute_miss(
        self, span, req, step, ds, plan, prev, effective, outbox, ladder, t_start
    ):
        """Decode the (prev, effective] window: collapse, follow, or lead.

        Returns ``(batch_or_None, served_quality, shed)``.
        """
        if outbox is not None:
            if ladder is None:
                ladder = default_quality_ladder(
                    effective, prev, levels=self.config.stream_levels
                )
            else:
                # degradation may have lowered the target below the
                # caller's ladder; keep the rungs inside the window
                ladder = tuple(q for q in ladder if prev < q < effective) + (effective,)
        else:
            ladder = (effective,)
        entry = spec = None
        if self.config.collapse:
            ckey = CollapseKey(
                step, req.box, req.filters, prev, effective, req.columns,
                req.engine, ds.metadata.generation,
            )
            entry, spec = self.collapse.acquire(ckey, ladder)
        if spec is not None:
            incs, shed, abandoned = self._follow(entry, spec, span, outbox, t_start)
            if not abandoned:
                span.collapsed = True
                span.increments = len(incs)
                if incs:
                    return reassemble_stream(incs).batch, incs[-1].quality, shed
                return None, prev, shed
            self.collapse.record_fallback()
            # increments already pushed to a streaming consumer are
            # committed — the fallback decode covers only the remaining
            # window, and rung chaining keeps the union byte-exact
            kept = incs if outbox is not None else []
            fb_prev = kept[-1].quality if kept else prev
            if fb_prev >= effective:
                # the leader died after its final rung reached us
                span.collapsed = True
                span.increments = len(kept)
                return reassemble_stream(kept).batch, fb_prev, False
            fb_ladder = tuple(q for q in ladder if fb_prev < q < effective) + (effective,)
            return self._lead(
                None, span, req, ds, plan, fb_prev, effective, fb_ladder,
                outbox, t_start, carried=kept,
            )
        try:
            return self._lead(
                entry, span, req, ds, plan, prev, effective, ladder, outbox, t_start
            )
        finally:
            if entry is not None:
                self.collapse.release(entry)

    def _lead(
        self, entry, span, req, ds, plan, prev, effective, ladder, outbox,
        t_start, carried=(),
    ):
        """Execute the decode (as collapse leader when ``entry`` is set)."""
        exec_req = replace(req, quality=effective, prev_quality=prev, on_error="degrade")
        t0 = self._clock()
        if outbox is None:
            # one-shot mode: the pre-streaming sync path, published to
            # followers as a single pre-ordered increment.
            # Corrupt/missing leaves degrade the response instead of
            # failing the request: the dataset quarantines them and
            # returns what the surviving files hold
            batch, qstats = ds.query(exec_req, plan=plan)
            span.traverse_seconds = self._clock() - t0
            span.quarantined_files = qstats.quarantined_files
            span.partial = qstats.quarantined_files > 0
            span.increments = 1
            if entry is not None:
                entry.publish(StreamIncrement(
                    quality=effective, prev_quality=prev, batch=batch,
                    stats=qstats, partial=span.partial,
                ))
                entry.finish()
            return batch, effective, False
        incs = list(carried)
        shed = False
        gen = ds.stream(exec_req, ladder=ladder, plan=plan)
        try:
            for inc in gen:
                if entry is not None:
                    # publish before pushing: followers are never
                    # throttled by this request's own consumer (a
                    # partial increment kills the entry instead)
                    entry.publish(inc)
                if inc.partial:
                    span.partial = True
                if not outbox.push(inc, self.config.stream_grace):
                    shed = True
                    break
                incs.append(inc)
                if span.first_increment_seconds == 0.0:
                    span.first_increment_seconds = (
                        span.wait_seconds + (self._clock() - t_start)
                    )
        except BaseException:
            if entry is not None:
                entry.abandon()
            raise
        finally:
            gen.close()
        span.traverse_seconds = self._clock() - t0
        if entry is not None:
            if shed:
                # the unstreamed rungs will never be published
                entry.abandon()
            else:
                entry.finish()
        if incs and incs[-1].stats is not None:
            span.quarantined_files = incs[-1].stats.quarantined_files
        span.increments = len(incs)
        if incs:
            return reassemble_stream(incs).batch, incs[-1].quality, shed
        return None, prev, shed

    def _follow(self, entry, spec, span, outbox, t_start):
        """Consume a leader's published stream instead of decoding.

        Returns ``(increments, shed, abandoned)``; ``increments`` holds
        what was consumed (and, when streaming, already pushed) before
        the stop/shed/abandon point.
        """
        streamed = outbox is not None
        incs = []
        shed = abandoned = False
        shared_points = shared_bytes = 0
        i = 0
        while True:
            try:
                inc = entry.fetch(i, self.config.collapse_timeout, clock=self._clock)
            except CollapseAbandoned:
                abandoned = True
                break
            if inc is _DONE:
                break
            i += 1
            shared_points += len(inc.batch)
            shared_bytes += inc.batch.nbytes
            adapted = adapt_increment(inc, spec)
            if streamed and not outbox.push(adapted, self.config.stream_grace):
                shed = True
                break
            incs.append(adapted)
            if span.first_increment_seconds == 0.0:
                span.first_increment_seconds = (
                    span.wait_seconds + (self._clock() - t_start)
                )
            if spec.stop_quality is not None and inc.quality >= spec.stop_quality:
                break
        self.collapse.record_shared(shared_points, shared_bytes)
        return incs, shed, abandoned

    # -- metrics ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full JSON metrics surface: requests, scheduler, caches."""
        with self._dataset_lock:
            plans = {
                "hits": sum(ds.plan_cache.hits for ds in self._datasets.values()),
                "misses": sum(ds.plan_cache.misses for ds in self._datasets.values()),
                "entries": sum(len(ds.plan_cache) for ds in self._datasets.values()),
            }
            quarantined = {
                step: ds.quarantined() for step, ds in self._datasets.items()
            }
            generations = {
                str(step): ds.metadata.generation
                for step, ds in self._datasets.items()
            }
        file_stats = self._file_cache.stats()
        doc = self.metrics.snapshot()
        doc["scheduler"] = self.scheduler.stats()
        doc["degradation"] = self.degradation.stats()
        doc["caches"] = {
            "results": self.results.stats(),
            # pre-completion dedup: requests collapsed onto in-flight
            # decodes, one tier above the result cache
            "collapse": self.collapse.stats(),
            "plans": plans,
            "files": file_stats,
            # the decoded-column tier rides on the file cache; hoist it so
            # dashboards see all five levels side by side
            "decoded_columns": file_stats.pop(
                "decoded_columns",
                {"hits": 0, "misses": 0, "evictions": 0, "entries": 0,
                 "bytes": 0, "budget_bytes": 0},
            ),
        }
        doc["integrity"] = {
            "quarantined_leaves": sum(len(q) for q in quarantined.values()),
            "quarantined_by_step": {
                str(step): sorted(q) for step, q in quarantined.items() if q
            },
            "partial_responses": self.metrics.partial_responses,
            "file_open_errors": file_stats["open_errors"],
        }
        doc["sessions"] = self.n_sessions
        doc["steps"] = len(self._step_manifests)
        #: per-(step, leaf) open/decode/point tallies for the reorganizer
        doc["telemetry"] = self.telemetry.snapshot()
        doc["generations"] = generations
        # strictly JSON: shard workers ship this over IPC and re-emit it
        # verbatim; nothing numpy-shaped or tuple-keyed may leak through
        return json_sanitize(doc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryService(steps={len(self._step_manifests)}, "
            f"sessions={self.n_sessions}, capacity={self.config.capacity})"
        )
