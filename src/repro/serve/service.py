"""The concurrent query service fronting one dataset or time series.

:class:`QueryService` multiplexes many client sessions over one set of
shared resources — one file-handle cache, one plan cache per timestep,
one result cache, one executor — where previously every
:class:`~repro.viz.server.ProgressiveStreamServer` session family owned
its own. A request travels::

    request() ── admission ──▶ RequestScheduler (priority queue,
        │ rejected past bounds      capacity worker threads)
        │                               │
        │                               ▼ per-session lock
        │                    DegradationPolicy.observe(load)
        │                               │ quality ceiling
        │                               ▼
        │                    ResultCache.get ── hit ──▶ response
        │                               │ miss
        │                               ▼
        │                    Dataset.plan (PlanCache) ─▶ Dataset.query
        │                               │                (BATFileCache)
        │                               ▼
        └──────────◀─────────  cache put + session accounting

Every response is byte-identical to a direct
:meth:`~repro.core.dataset.BATDataset.query` at the same effective
``(prev_quality, quality)`` — the scheduler and the caches reorder and
deduplicate work, they never alter results. Degradation only lowers the
quality ceiling of *new* increments, so a degraded session refining after
load drains converges to exactly the full-quality data set.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..api import QueryRequest, warn_deprecated
from ..bat.colcache import DEFAULT_COLUMN_CACHE_BYTES
from ..bat.filecache import DEFAULT_CAPACITY, BATFileCache
from ..core.dataset import BATDataset
from ..types import Box, ParticleBatch
from .cache import ResultCache, result_key
from .degrade import DegradationConfig, DegradationPolicy
from .metrics import RequestSpan, ServeMetrics
from .scheduler import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    RequestScheduler,
    SchedulerConfig,
    Ticket,
)

__all__ = ["ServeConfig", "ServeSession", "ServeResponse", "QueryService"]


@dataclass(frozen=True)
class ServeConfig:
    """All tuning knobs of the service in one place."""

    #: maximum concurrently executing queries (scheduler worker threads)
    capacity: int = 4
    #: global queue bound; submissions past it are rejected
    max_queued: int = 64
    #: outstanding requests allowed per session
    max_session_queue: int = 8
    #: requests at or below this quality count as interactive first paints
    interactive_quality: float = 0.35
    #: result-cache entry bound and TTL (seconds; None disables expiry)
    result_cache_entries: int = 256
    result_ttl: float | None = 30.0
    #: degradation policy knobs (see :mod:`repro.serve.degrade`)
    degradation: DegradationConfig = field(default_factory=DegradationConfig)
    #: executor spec for per-file fan-out inside one query (see
    #: :mod:`repro.parallel`); serial by default — the scheduler already
    #: provides cross-request concurrency
    executor: str | None = None
    #: bound on simultaneously open leaf files, shared by all sessions
    max_open_files: int = DEFAULT_CAPACITY
    #: byte budget of the decoded-column LRU shared by every open file
    #: (0 disables the tier; columns then decode cold on every touch)
    column_cache_bytes: int = DEFAULT_COLUMN_CACHE_BYTES


@dataclass
class ServeSession:
    """One client's progressive view, owned by the service."""

    session_id: int
    step: int = 0
    box: Box | None = None
    filters: tuple = ()
    columns: tuple | None = None
    delivered_quality: float = 0.0
    bytes_sent: int = 0
    requests: int = 0
    downgrades: int = 0
    #: serializes this session's requests across scheduler workers
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def matches(self, step, box, filters, columns=None) -> bool:
        return (
            self.step == step
            and self.box == box
            and self.filters == tuple(filters)
            and self.columns == columns
        )


@dataclass
class ServeResponse:
    """What one admitted request returns."""

    batch: ParticleBatch
    requested_quality: float
    served_quality: float
    prev_quality: float
    #: quality was lowered by the load-shedding policy (not a data loss)
    degraded: bool
    cache_hit: bool
    span: RequestSpan
    #: data from quarantined (corrupt/missing) leaf files is absent
    partial: bool = False
    #: how many leaf files this response could not see
    quarantined_files: int = 0

    def __len__(self) -> int:
        return len(self.batch)


class QueryService:
    """Concurrent, admission-controlled front end over BAT datasets.

    ``source`` is either a ``*.meta.json`` manifest (one timestep, served
    as step 0) or a time-series directory containing ``series.json``.
    """

    def __init__(self, source, config: ServeConfig | None = None, clock=time.perf_counter):
        self.config = config or ServeConfig()
        self._clock = clock
        self._file_cache = BATFileCache(
            self.config.max_open_files,
            column_cache_bytes=self.config.column_cache_bytes,
        )
        self._datasets: dict[int, BATDataset] = {}
        self._dataset_lock = threading.Lock()
        source = Path(source)
        if source.suffix == ".json" and source.is_file():
            self._directory = source.parent
            self._step_manifests = {0: source}
        else:
            from ..core.timeseries import TimeSeriesDataset

            series = TimeSeriesDataset(source)
            try:
                self._directory = series.directory
                self._step_manifests = {
                    s: series.directory / series.record(s).metadata_file
                    for s in series.steps
                }
            finally:
                series.close()
            if not self._step_manifests:
                raise ValueError(f"time series at {source} has no written steps")
        self.scheduler = RequestScheduler(
            SchedulerConfig(
                capacity=self.config.capacity,
                max_queued=self.config.max_queued,
                max_session_queue=self.config.max_session_queue,
            ),
            clock=clock,
        )
        self.degradation = DegradationPolicy(self.config.degradation)
        self.results = ResultCache(
            capacity=self.config.result_cache_entries, ttl=self.config.result_ttl
        )
        self.metrics = ServeMetrics(clock=clock)
        self._sessions: dict[int, ServeSession] = {}
        self._session_lock = threading.Lock()
        self._next_session = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain queued work, then release every shared resource."""
        self.scheduler.close(wait=True)
        with self._dataset_lock:
            for ds in self._datasets.values():
                ds.close()
            self._datasets.clear()
        self.results.clear()
        self._file_cache.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------------

    @property
    def steps(self) -> list[int]:
        return sorted(self._step_manifests)

    def dataset(self, step: int = 0) -> BATDataset:
        """The (lazily opened) dataset behind one step; shared handles."""
        with self._dataset_lock:
            ds = self._datasets.get(step)
            if ds is None:
                manifest = self._step_manifests.get(step)
                if manifest is None:
                    raise KeyError(f"no step {step}; have {self.steps}")
                ds = BATDataset(
                    manifest,
                    executor=self.config.executor,
                    file_cache=self._file_cache,
                )
                self._datasets[step] = ds
            return ds

    # -- sessions ----------------------------------------------------------------

    def open_session(self, step: int = 0) -> int:
        if step not in self._step_manifests:
            raise KeyError(f"no step {step}; have {self.steps}")
        with self._session_lock:
            sid = self._next_session
            self._next_session += 1
            self._sessions[sid] = ServeSession(session_id=sid, step=step)
            return sid

    def close_session(self, session_id: int) -> ServeSession:
        with self._session_lock:
            return self._sessions.pop(session_id)

    def session(self, session_id: int) -> ServeSession:
        with self._session_lock:
            return self._sessions[session_id]

    @property
    def n_sessions(self) -> int:
        with self._session_lock:
            return len(self._sessions)

    # -- requests ----------------------------------------------------------------

    def _priority(self, sess: ServeSession, req: QueryRequest, step) -> int:
        """Refinements of a held view and cheap first paints go first."""
        if req.quality <= self.config.interactive_quality:
            return PRIORITY_INTERACTIVE
        if (
            sess.matches(step, req.box, req.filters, req.columns)
            and sess.delivered_quality > 0.0
        ):
            return PRIORITY_INTERACTIVE
        return PRIORITY_BULK

    @staticmethod
    def _coerce_legacy_request(method: str, request, legacy: dict) -> QueryRequest:
        """Map the pre-``QueryRequest`` call form onto a request object."""
        warn_deprecated(
            f"QueryService.{method}(" + ", ".join(sorted(
                (["quality"] if request is not None else []) + sorted(legacy)
            )) + ")",
            "pass a repro.QueryRequest",
            stacklevel=4,
        )
        if "quality" in legacy:
            if request is not None:
                raise TypeError(f"{method}() got multiple values for 'quality'")
            request = legacy.pop("quality")
        if request is None:
            raise TypeError(f"{method}() missing a QueryRequest (or legacy quality)")
        req = QueryRequest(
            quality=request,
            box=legacy.pop("box", None),
            filters=tuple(legacy.pop("filters", ())),
        )
        if legacy:
            name = next(iter(legacy))
            raise TypeError(f"{method}() got an unexpected keyword argument {name!r}")
        return req

    def submit(
        self,
        session_id: int,
        request: QueryRequest | float | None = None,
        *,
        step: int | None = None,
        **legacy,
    ) -> Ticket:
        """Admit one progressive request; the ticket resolves to a
        :class:`ServeResponse`. Raises
        :class:`~repro.serve.scheduler.AdmissionRejected` past the bounds
        (the rejection is recorded on the metrics surface).

        Takes a :class:`~repro.api.QueryRequest`; the pre-1.x form
        (``submit(sid, quality, box=..., filters=...)``) still works as a
        deprecated shim.
        """
        if not isinstance(request, QueryRequest):
            request = self._coerce_legacy_request("submit", request, legacy)
        elif legacy:
            name = next(iter(legacy))
            raise TypeError(f"submit() got an unexpected keyword argument {name!r}")
        sess = self.session(session_id)
        step = sess.step if step is None else step
        span = RequestSpan(
            session_id=session_id, seq=0, requested_quality=request.quality,
        )
        priority = self._priority(sess, request, step)
        span.priority = priority

        def fn(ticket):
            return self._execute(ticket, sess, span, request, step)

        try:
            ticket = self.scheduler.submit(fn, session_id=session_id, priority=priority)
        except Exception as exc:
            span.rejected = True
            span.queue_depth = getattr(exc, "queue_depth", 0)
            self.metrics.record(span)
            raise
        span.seq = ticket.seq
        return ticket

    def request(
        self,
        session_id: int,
        request: QueryRequest | float | None = None,
        *,
        step: int | None = None,
        timeout: float | None = None,
        **legacy,
    ) -> ServeResponse:
        """Synchronous :meth:`submit` — blocks until the response is ready."""
        if not isinstance(request, QueryRequest):
            request = self._coerce_legacy_request("request", request, legacy)
        elif legacy:
            name = next(iter(legacy))
            raise TypeError(f"request() got an unexpected keyword argument {name!r}")
        return self.submit(session_id, request, step=step).result(timeout)

    # -- the worker-side hot path ----------------------------------------------

    def _execute(self, ticket, sess: ServeSession, span, req: QueryRequest, step):
        t_start = self._clock()
        span.wait_seconds = ticket.wait_seconds
        sched = self.scheduler
        quality = req.quality
        box, filters, columns = req.box, req.filters, req.columns
        with sess.lock:
            span.queue_depth = sched.queue_depth + sched.in_flight
            # a view change restarts the progression before degradation
            # is even consulted — the old increments are for another view
            if not sess.matches(step, box, filters, columns):
                sess.step = step
                sess.box = box
                sess.filters = filters
                sess.columns = columns
                sess.delivered_quality = 0.0
            prev = sess.delivered_quality
            span.prev_quality = prev

            self.degradation.observe(sched.load_factor())
            effective, degraded = self.degradation.apply(quality)
            span.degraded = degraded
            if degraded:
                sess.downgrades += 1

            ds = self.dataset(step)
            if effective <= prev:
                # nothing new to send at this ceiling (already-delivered
                # data is never re-sent, degraded or not)
                specs = ds.attribute_specs()
                if columns is not None:
                    specs = [sp for sp in specs if sp.name in columns]
                batch = ParticleBatch.empty(specs)
                served = prev
                cache_hit = False
            else:
                key = result_key(step, box, filters, prev, effective, columns)
                batch = self.results.get(key)
                cache_hit = batch is not None
                if batch is None:
                    t0 = self._clock()
                    plan = ds.plan(box, filters)
                    span.plan_seconds = self._clock() - t0
                    t0 = self._clock()
                    # corrupt/missing leaves degrade the response instead
                    # of failing the request: the dataset quarantines them
                    # and returns what the surviving files hold
                    batch, qstats = ds.query(
                        replace(
                            req,
                            quality=effective,
                            prev_quality=prev,
                            on_error="degrade",
                        ),
                        plan=plan,
                    )
                    span.traverse_seconds = self._clock() - t0
                    span.quarantined_files = qstats.quarantined_files
                    span.partial = qstats.quarantined_files > 0
                    t0 = self._clock()
                    if not span.partial:
                        # partial results must not be served to later
                        # requests from the cache as if they were complete
                        self.results.put(key, batch)
                    span.gather_seconds = self._clock() - t0
                served = effective
                sess.delivered_quality = effective
            sess.requests += 1
            sess.bytes_sent += batch.nbytes
        span.served_quality = served
        span.cache_hit = cache_hit
        span.points = len(batch)
        span.nbytes = batch.nbytes
        span.total_seconds = span.wait_seconds + (self._clock() - t_start)
        self.metrics.record(span)
        return ServeResponse(
            batch=batch,
            requested_quality=quality,
            served_quality=served,
            prev_quality=span.prev_quality,
            degraded=span.degraded,
            cache_hit=cache_hit,
            span=span,
            partial=span.partial,
            quarantined_files=span.quarantined_files,
        )

    # -- metrics ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full JSON metrics surface: requests, scheduler, caches."""
        with self._dataset_lock:
            plans = {
                "hits": sum(ds.plan_cache.hits for ds in self._datasets.values()),
                "misses": sum(ds.plan_cache.misses for ds in self._datasets.values()),
                "entries": sum(len(ds.plan_cache) for ds in self._datasets.values()),
            }
            quarantined = {
                step: ds.quarantined() for step, ds in self._datasets.items()
            }
        file_stats = self._file_cache.stats()
        doc = self.metrics.snapshot()
        doc["scheduler"] = self.scheduler.stats()
        doc["degradation"] = self.degradation.stats()
        doc["caches"] = {
            "results": self.results.stats(),
            "plans": plans,
            "files": file_stats,
            # the decoded-column tier rides on the file cache; hoist it so
            # dashboards see all four levels side by side
            "decoded_columns": file_stats.pop(
                "decoded_columns",
                {"hits": 0, "misses": 0, "evictions": 0, "entries": 0,
                 "bytes": 0, "budget_bytes": 0},
            ),
        }
        doc["integrity"] = {
            "quarantined_leaves": sum(len(q) for q in quarantined.values()),
            "quarantined_by_step": {
                str(step): sorted(q) for step, q in quarantined.items() if q
            },
            "partial_responses": self.metrics.partial_responses,
            "file_open_errors": file_stats["open_errors"],
        }
        doc["sessions"] = self.n_sessions
        doc["steps"] = len(self._step_manifests)
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryService(steps={len(self._step_manifests)}, "
            f"sessions={self.n_sessions}, capacity={self.config.capacity})"
        )
