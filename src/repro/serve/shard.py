"""Sharded serve tier: a router front end over N shard worker processes.

One :class:`QueryService` process tops out at one GIL, one page cache
working set, and one failure domain. :class:`ShardedQueryService` splits
the dataset across worker **processes**: leaf files are partitioned by
the consistent-hash ring of :mod:`repro.serve.hashing` (keyed on
``(dataset, step, leaf region)``), and every shard owns its own
BATFileCache, DecodedColumnCache, PlanCache, quarantine set, and decode
threads for exactly the leaves it was dealt. The router keeps the parts
a fleet must share exactly once — sessions, admission control, the
degradation policy, the result cache, the batch-admission gate — and
plans each query against the manifest alone (it never opens a leaf
file), scattering the window to the shards whose leaves the plan
touches::

    request ── admission ──▶ router scheduler (capacity workers)
        │                        │ session lock, degradation,
        │                        │ ResultCache
        │                        ▼
        │                  plan (manifest only) ─▶ owners = ring lookup
        │                        │ scatter (pipe RPC, pickle)
        │              ┌─────────┼─────────┐
        │         shard 0    shard 1  ...  shard k     (processes)
        │          restricted plan → ds.stream → keyed increment
        │              └─────────┼─────────┘
        │                        ▼ gather
        └──────◀── reassemble_stream (order-key merge) + cache put

**Byte-identity across the scatter.** A shard executes the query with
the full plan *filtered to its owned leaves* — never via planner
exclusion, which would count the other shards' files as quarantined and
mark every response partial. Order keys from :meth:`BATDataset.stream`
carry a plan-local file rank in column 0; since every plan lists files
ascending by leaf index, each worker rewrites that column to the
**global leaf index** before replying, and the router's
:func:`~repro.api.reassemble_stream` lexsort then reproduces exactly
the single-process delivery order. Sharded responses are property-tested
byte-identical to :class:`QueryService` responses, including boxes
spanning shard boundaries.

**Crash containment.** Each shard client owns the worker process, a
receiver thread, and a pending-reply table. A worker death (EOF on the
pipe) fails the in-flight replies with :class:`ShardCrashed`; the caller
respawns the worker — fresh caches, ownership recomputed from the
manifest — and retries once. The batch-job tier (:mod:`repro.serve.jobs`)
layers at-least-once redelivery on top for sweeps.

**Shared admission budget.** Interactive sessions use the router
scheduler's full capacity at their usual priorities; stateless batch
work (:meth:`ShardedQueryService.execute`, used by the job runner) must
first acquire a bounded batch gate sized ``capacity * batch_share`` and
runs at ``PRIORITY_BULK``, so a 10k-query sweep saturates at most its
share of the workers and interactive requests always jump the queue.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from ..api import NeighborRequest, QueryRequest, StreamIncrement, reassemble_stream
from ..api import request_from_doc as api_request_from_doc
from ..api import request_to_doc as api_request_to_doc
from ..bat.filecache import BATFileCache
from ..core.metadata import DatasetMetadata
from ..core.planner import PlanCache
from ..errors import InvalidRequestError, ReproError
from ..types import ParticleBatch
from .cache import ResultCache, result_key
from .degrade import DegradationPolicy
from .hashing import DEFAULT_REPLICAS, HashRing, assign_leaves
from .metrics import (
    AccessTelemetry,
    RequestSpan,
    ServeMetrics,
    json_sanitize,
    merge_telemetry,
)
from .scheduler import (
    PRIORITY_BULK,
    RequestScheduler,
    SchedulerConfig,
)
from .service import ServeConfig, ServeResponse, ServeSession, resolve_step_manifests

__all__ = [
    "ShardCrashed",
    "ShardUnavailable",
    "ShardedQueryService",
    "request_to_doc",
    "request_from_doc",
    "shard_worker_main",
]


class ShardCrashed(ReproError, RuntimeError):
    """The worker process died while a reply was pending."""


class ShardUnavailable(ReproError, RuntimeError):
    """A shard stayed unreachable even after a respawn retry."""


# -- request wire form ---------------------------------------------------------
#
# Requests cross two boundaries that want plain data: the worker
# pipe (picklable, but a stable doc decouples worker versions from
# router internals) and the SQLite job store (strict JSON). The
# family-tagged codec lives beside the request types in
# :mod:`repro.api`; these names stay importable here for callers of the
# original shard-local pair (docs without a family tag parse as query
# requests, so PR-8-era stores stay readable).

request_to_doc = api_request_to_doc
request_from_doc = api_request_from_doc


# -- worker process ------------------------------------------------------------


class _ShardWorker:
    """Everything one shard worker process owns (built post-spawn)."""

    def __init__(self, source: str, shard_id: int, n_shards: int, options: dict):
        from ..core.dataset import BATDataset

        self._BATDataset = BATDataset
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.options = options
        self.ring = HashRing(n_shards, options.get("replicas", DEFAULT_REPLICAS))
        self._manifests = resolve_step_manifests(source)
        self._file_cache = BATFileCache(
            options.get("max_open_files", 64),
            column_cache_bytes=options.get("column_cache_bytes", 0),
        )
        self._datasets: dict[int, object] = {}
        self._owned: dict[int, frozenset] = {}
        self._lock = threading.Lock()
        self.metrics = ServeMetrics()
        self.telemetry = AccessTelemetry()
        self._started = time.perf_counter()

    def dataset(self, step: int):
        with self._lock:
            ds = self._datasets.get(step)
            if ds is None:
                manifest = self._manifests.get(step)
                if manifest is None:
                    raise KeyError(f"no step {step}; have {sorted(self._manifests)}")
                ds = self._BATDataset(
                    manifest,
                    executor=self.options.get("executor"),
                    file_cache=self._file_cache,
                )
                ds.telemetry = self.telemetry.bind(step)
                owners = assign_leaves(ds.metadata, manifest.name, step, self.ring)
                self._owned[step] = frozenset(
                    i for i, owner in enumerate(owners) if owner == self.shard_id
                )
                self._datasets[step] = ds
            return ds

    def reload(self, doc: dict) -> dict:
        """Drop one step's dataset and reload its on-disk manifest.

        The router broadcasts this after a reorganization republish: the
        worker's file-handle/decoded-column entries for the step drop
        with the dataset, leaf ownership is recomputed over the new leaf
        set, and the reply reports the generation now being served.
        """
        step = int(doc["step"])
        with self._lock:
            ds = self._datasets.pop(step, None)
            self._owned.pop(step, None)
        if ds is not None:
            ds.close()
        ds = self.dataset(step)
        with self._lock:
            owned = len(self._owned[step])
        return {
            "shard": self.shard_id,
            "generation": ds.metadata.generation,
            "owned_leaves": owned,
        }

    def execute(self, doc: dict) -> dict:
        """One scattered window on this shard's leaves; a keyed increment.

        The plan is the worker's own (quarantine-aware) plan filtered to
        owned leaves — filtering, not planner exclusion, so foreign
        leaves are not miscounted as quarantined. Order-key column 0 is
        rewritten from the plan-local file rank to the global leaf index
        so the router's merge is globally ordered.
        """
        t0 = time.perf_counter()
        step = int(doc["step"])
        req = request_from_doc(doc["request"])
        ds = self.dataset(step)
        full_plan = ds.plan(req.box, req.filters)
        owned = self._owned[step]
        files = tuple(fp for fp in full_plan.files if fp.leaf_index in owned)
        span = RequestSpan(
            session_id=self.shard_id, seq=0, requested_quality=req.quality,
            prev_quality=req.prev_quality,
        )
        if not files:
            payload = {
                "count": 0, "positions": None, "attributes": {},
                "order": np.empty((0, 3), dtype=np.int64),
                "partial": full_plan.excluded_files > 0,
                "quarantined_files": full_plan.excluded_files,
                "points_tested": 0, "files": 0,
            }
            span.total_seconds = time.perf_counter() - t0
            self.metrics.record(span)
            return payload
        plan = replace(full_plan, files=files, n_files=len(files))
        inc = None
        gen = ds.stream(req, ladder=(req.quality,), plan=plan)
        try:
            for inc in gen:
                pass  # single-rung ladder: exactly one increment
        finally:
            gen.close()
        order = inc.order
        if len(order):
            lut = np.fromiter(
                (fp.leaf_index for fp in plan.files), dtype=np.int64,
                count=len(plan.files),
            )
            order = order.copy()
            order[:, 0] = lut[order[:, 0]]
        stats = inc.stats
        batch = inc.batch
        span.served_quality = req.quality
        span.partial = inc.partial or stats.quarantined_files > 0
        span.quarantined_files = stats.quarantined_files
        span.points = len(batch)
        span.nbytes = batch.nbytes
        span.increments = 1
        span.traverse_seconds = time.perf_counter() - t0
        span.total_seconds = span.traverse_seconds
        self.metrics.record(span)
        return {
            "count": len(batch),
            "positions": batch.positions,
            "attributes": dict(batch.attributes),
            "order": order,
            "partial": span.partial,
            "quarantined_files": stats.quarantined_files,
            "points_tested": stats.points_tested,
            "files": len(plan.files),
        }

    def snapshot(self) -> dict:
        """This shard's strictly-JSON metrics slice (shipped over IPC)."""
        with self._lock:
            plans = {
                "hits": sum(ds.plan_cache.hits for ds in self._datasets.values()),
                "misses": sum(ds.plan_cache.misses for ds in self._datasets.values()),
            }
            quarantined = sum(
                len(ds.quarantined()) for ds in self._datasets.values()
            )
            owned = {step: len(v) for step, v in self._owned.items()}
            generations = {
                str(step): ds.metadata.generation
                for step, ds in self._datasets.items()
            }
        file_stats = self._file_cache.stats()
        doc = self.metrics.snapshot()
        doc["shard"] = self.shard_id
        doc["uptime_seconds"] = time.perf_counter() - self._started
        doc["owned_leaves"] = owned
        doc["caches"] = {
            "plans": plans,
            "files": file_stats,
            "decoded_columns": file_stats.pop("decoded_columns", {}),
        }
        doc["quarantined_leaves"] = quarantined
        doc["generations"] = generations
        doc["telemetry"] = self.telemetry.snapshot()
        return json_sanitize(doc)

    def close(self) -> None:
        with self._lock:
            for ds in self._datasets.values():
                ds.close()
            self._datasets.clear()
        self._file_cache.close()


def shard_worker_main(conn, source: str, shard_id: int, n_shards: int,
                      options: dict) -> None:
    """Worker-process entry point: serve pipe RPCs until shutdown/EOF.

    Requests are handled on a small thread pool (``capacity`` threads)
    so one shard serves the router's concurrent scatter calls; replies
    are tagged with the request id, so completion order is free.
    """
    from concurrent.futures import ThreadPoolExecutor

    worker = _ShardWorker(source, shard_id, n_shards, options)
    send_lock = threading.Lock()

    def reply(req_id, payload, *, ok=True):
        try:
            with send_lock:
                conn.send(("ok" if ok else "err", req_id, payload))
        except (OSError, ValueError, BrokenPipeError):  # router went away
            pass

    def handle(kind, req_id, doc):
        try:
            if kind == "query":
                reply(req_id, worker.execute(doc))
            elif kind == "snapshot":
                reply(req_id, worker.snapshot())
            elif kind == "reload":
                reply(req_id, worker.reload(doc))
            elif kind == "ping":
                reply(req_id, {"shard": shard_id})
            else:
                reply(req_id, f"unknown message kind {kind!r}", ok=False)
        except BaseException as exc:  # noqa: BLE001 - reported to the router
            reply(req_id, f"{type(exc).__name__}: {exc}", ok=False)

    pool = ThreadPoolExecutor(
        max_workers=max(1, int(options.get("capacity", 2)))
    )
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "shutdown":
                break
            pool.submit(handle, msg[0], msg[1], msg[2] if len(msg) > 2 else None)
    finally:
        pool.shutdown(wait=True)
        worker.close()
        try:
            conn.close()
        except OSError:
            pass


# -- router side ---------------------------------------------------------------


class _Reply:
    """One pending RPC's landing slot."""

    __slots__ = ("event", "value", "error", "crashed")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error = None
        self.crashed = False


class _ShardClient:
    """Router-side handle of one worker process: pipe, receiver, respawn."""

    def __init__(self, shard_id: int, source: str, n_shards: int,
                 options: dict, ctx):
        self.shard_id = shard_id
        self._source = source
        self._n_shards = n_shards
        self._options = options
        self._ctx = ctx
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._ids = itertools.count()
        self._pending: dict[int, _Reply] = {}
        self._alive = False
        self.process = None
        self._conn = None
        self.restarts = -1  # first spawn is not a restart
        self._spawn_locked()

    # -- lifecycle ---------------------------------------------------------

    def _spawn_locked(self) -> None:
        with self._lock:
            self._spawn()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(child, self._source, self.shard_id, self._n_shards,
                  self._options),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        proc.start()
        child.close()
        self.process = proc
        self._conn = parent
        self._alive = True
        self.restarts += 1
        threading.Thread(
            target=self._receive, args=(parent,),
            name=f"repro-shard-rx-{self.shard_id}", daemon=True,
        ).start()

    def _receive(self, conn) -> None:
        while True:
            try:
                kind, req_id, payload = conn.recv()
            except (EOFError, OSError):
                break
            with self._lock:
                reply = self._pending.pop(req_id, None)
            if reply is None:
                continue
            if kind == "ok":
                reply.value = payload
            else:
                reply.error = str(payload)
            reply.event.set()
        # worker gone: fail whatever was still in flight on this pipe
        with self._lock:
            if conn is self._conn:
                self._alive = False
            stranded = [r for r in self._pending.values() if not r.event.is_set()]
            self._pending.clear()
        for reply in stranded:
            reply.crashed = True
            reply.event.set()

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            conn, proc = self._conn, self.process
            self._alive = False
        if conn is not None:
            try:
                with self._send_lock:
                    conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        if proc is not None:
            proc.join(timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    # -- RPC ---------------------------------------------------------------

    def _start(self, kind: str, doc):
        """Send one request, respawning a dead worker first; returns a reply."""
        with self._lock:
            if not self._alive or self.process is None or not self.process.is_alive():
                self._spawn()
            reply = _Reply()
            req_id = next(self._ids)
            self._pending[req_id] = reply
            conn = self._conn
        try:
            with self._send_lock:
                conn.send((kind, req_id, doc))
        except (OSError, ValueError, BrokenPipeError):
            with self._lock:
                self._pending.pop(req_id, None)
                if conn is self._conn:
                    self._alive = False
            reply.crashed = True
            reply.event.set()
        return reply

    def call(self, kind: str, doc=None, timeout: float | None = None):
        """Blocking RPC with one transparent respawn-and-retry on crash."""
        reply = self.finish(self._start(kind, doc), timeout, retry=(kind, doc))
        return reply

    def finish(self, reply: _Reply, timeout: float | None, retry=None):
        """Wait for one started RPC; optionally retry once after a crash."""
        if not reply.event.wait(timeout):
            raise ShardUnavailable(
                f"shard {self.shard_id} did not answer within {timeout}s"
            )
        if reply.crashed:
            if retry is None:
                raise ShardCrashed(f"shard {self.shard_id} worker died mid-request")
            kind, doc = retry
            fresh = self._start(kind, doc)
            if not fresh.event.wait(timeout):
                raise ShardUnavailable(
                    f"shard {self.shard_id} did not answer within {timeout}s"
                )
            if fresh.crashed:
                raise ShardUnavailable(
                    f"shard {self.shard_id} crashed twice on one request"
                )
            reply = fresh
        if reply.error is not None:
            raise ShardUnavailable(
                f"shard {self.shard_id} failed: {reply.error}"
            )
        return reply.value


class ShardedQueryService:
    """Router facade: the :class:`QueryService` surface over N processes.

    Duck-compatible with :class:`QueryService` for the session API the
    load generator drives (``open_session`` / ``submit`` / ``request`` /
    ``close_session`` / ``snapshot``), plus the stateless
    :meth:`execute` the batch-job runner uses. Streaming delivery stays
    a single-process feature; the sharded tier serves one-shot windows.
    """

    #: scheduler session id of stateless batch work
    BATCH_SESSION = -1

    def __init__(
        self,
        source,
        config: ServeConfig | None = None,
        *,
        n_shards: int = 2,
        replicas: int = DEFAULT_REPLICAS,
        batch_share: float = 0.5,
        rpc_timeout: float = 120.0,
        mp_context: str = "spawn",
        clock=time.perf_counter,
    ):
        import multiprocessing

        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.config = config or ServeConfig()
        self._clock = clock
        self.n_shards = int(n_shards)
        self.ring = HashRing(self.n_shards, replicas)
        self._rpc_timeout = rpc_timeout
        source = Path(source)
        self._step_manifests = resolve_step_manifests(source)
        self._metadata: dict[int, DatasetMetadata] = {}
        self._plan_caches: dict[int, PlanCache] = {}
        self._owners: dict[int, tuple] = {}
        self._meta_lock = threading.Lock()
        self.scheduler = RequestScheduler(
            SchedulerConfig(
                capacity=self.config.capacity,
                max_queued=self.config.max_queued,
                max_session_queue=self.config.max_session_queue,
            ),
            clock=clock,
        )
        self.degradation = DegradationPolicy(self.config.degradation)
        self.results = ResultCache(
            capacity=self.config.result_cache_entries, ttl=self.config.result_ttl
        )
        self.metrics = ServeMetrics(clock=clock, window=self.config.metrics_window)
        self._sessions: dict[int, ServeSession] = {}
        self._session_lock = threading.Lock()
        self._next_session = 0
        # the shared admission budget: stateless batch work may hold at
        # most this many scheduler slots, interactive traffic the rest
        batch_slots = max(1, int(round(self.config.capacity * batch_share)))
        self._batch_gate = threading.BoundedSemaphore(
            min(batch_slots, self.config.max_session_queue)
        )
        self._fanout_lock = threading.Lock()
        self.fanout_single = 0
        self.fanout_multi = 0
        self.fanout_shards = 0
        options = {
            "capacity": max(1, self.config.capacity),
            "max_open_files": self.config.max_open_files,
            "column_cache_bytes": self.config.column_cache_bytes,
            "executor": self.config.executor,
            "replicas": replicas,
        }
        ctx = multiprocessing.get_context(mp_context)
        self._shards = [
            _ShardClient(i, str(source), self.n_shards, options, ctx)
            for i in range(self.n_shards)
        ]
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.scheduler.close(wait=True)
        for client in self._shards:
            client.close()
        self.results.clear()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure ---------------------------------------------------------

    @property
    def steps(self) -> list[int]:
        return sorted(self._step_manifests)

    def metadata(self, step: int = 0) -> DatasetMetadata:
        with self._meta_lock:
            meta = self._metadata.get(step)
            if meta is None:
                manifest = self._step_manifests.get(step)
                if manifest is None:
                    raise KeyError(f"no step {step}; have {self.steps}")
                meta = DatasetMetadata.load(manifest)
                self._metadata[step] = meta
                self._plan_caches[step] = PlanCache()
                self._owners[step] = assign_leaves(
                    meta, manifest.name, step, self.ring
                )
            return meta

    def owners(self, step: int = 0) -> tuple:
        """Per-leaf shard assignment (deterministic; workers agree)."""
        self.metadata(step)
        return self._owners[step]

    def generation(self, step: int = 0) -> int:
        """The layout generation the router currently serves for a step."""
        return self.metadata(step).generation

    def reload_step(self, step: int = 0) -> int:
        """Re-read the step's manifest and fan invalidation out to workers.

        The sharded half of a reorganization republish: the router drops
        its cached metadata/plan cache/ownership for the step and evicts
        the step's result entries, then broadcasts a ``reload`` RPC so
        every worker closes its dataset (dropping file-handle and
        decoded-column entries) and reloads the new manifest with freshly
        computed leaf ownership. A worker that crashes and respawns later
        reads the new manifest from disk anyway — the broadcast just makes
        the live ones agree *now*. Returns the new generation.
        """
        with self._meta_lock:
            self._metadata.pop(step, None)
            self._plan_caches.pop(step, None)
            self._owners.pop(step, None)
        self.results.invalidate_step(step)
        meta = self.metadata(step)
        for client in self._shards:
            client.call("reload", {"step": step}, timeout=self._rpc_timeout)
        return meta.generation

    @property
    def bounds(self):
        return self.metadata(self.steps[0]).bounds

    # -- sessions ----------------------------------------------------------

    def open_session(self, step: int = 0) -> int:
        if step not in self._step_manifests:
            raise KeyError(f"no step {step}; have {self.steps}")
        with self._session_lock:
            sid = self._next_session
            self._next_session += 1
            self._sessions[sid] = ServeSession(session_id=sid, step=step)
            return sid

    def close_session(self, session_id: int) -> ServeSession:
        with self._session_lock:
            return self._sessions.pop(session_id)

    def session(self, session_id: int) -> ServeSession:
        with self._session_lock:
            return self._sessions[session_id]

    @property
    def n_sessions(self) -> int:
        with self._session_lock:
            return len(self._sessions)

    # -- requests ----------------------------------------------------------

    def _priority(self, sess: ServeSession, req: QueryRequest, step) -> int:
        from .service import QueryService

        return QueryService._priority(self, sess, req, step)

    def submit(self, session_id: int, request: QueryRequest, *,
               step: int | None = None):
        """Admit one progressive request; mirrors :meth:`QueryService.submit`."""
        if isinstance(request, NeighborRequest):
            raise InvalidRequestError(
                "the sharded tier does not serve NeighborRequest yet: neighbor "
                "lists cross shard ownership boundaries (ghost exchange spans "
                "leaf files owned by different workers); use QueryService or "
                "BATDataset.neighbors"
            )
        if not isinstance(request, QueryRequest):
            raise TypeError("submit() takes a repro.QueryRequest")
        sess = self.session(session_id)
        step = sess.step if step is None else step
        span = RequestSpan(
            session_id=session_id, seq=0, requested_quality=request.quality,
        )
        priority = self._priority(sess, request, step)
        span.priority = priority

        def fn(ticket):
            return self._execute_session(ticket, sess, span, request, step)

        try:
            ticket = self.scheduler.submit(fn, session_id=session_id, priority=priority)
        except Exception as exc:
            span.rejected = True
            span.queue_depth = getattr(exc, "queue_depth", 0)
            self.metrics.record(span)
            raise
        span.seq = ticket.seq
        return ticket

    def request(self, session_id: int, request: QueryRequest, *,
                step: int | None = None, timeout: float | None = None):
        return self.submit(session_id, request, step=step).result(timeout)

    def execute(self, request: QueryRequest, step: int = 0,
                timeout: float | None = None) -> ServeResponse:
        """Stateless one-shot window at ``PRIORITY_BULK`` under the batch gate.

        The batch-job path: no session, no degradation (sweep results
        must be deterministic for idempotent completion digests), the
        window is exactly the request's ``(prev_quality, quality]``.
        Blocks while the batch share of the scheduler is fully occupied —
        sweeps throttle, interactive sessions do not.
        """
        if isinstance(request, NeighborRequest):
            raise InvalidRequestError(
                "the sharded tier does not serve NeighborRequest yet: neighbor "
                "lists cross shard ownership boundaries (ghost exchange spans "
                "leaf files owned by different workers); use QueryService or "
                "BATDataset.neighbors"
            )
        if not isinstance(request, QueryRequest):
            raise TypeError("execute() takes a repro.QueryRequest")
        self._batch_gate.acquire()
        try:
            span = RequestSpan(
                session_id=self.BATCH_SESSION, seq=0,
                requested_quality=request.quality,
                prev_quality=request.prev_quality,
            )
            span.priority = PRIORITY_BULK

            def fn(ticket):
                return self._execute_stateless(ticket, span, request, step)

            ticket = self.scheduler.submit(
                fn, session_id=self.BATCH_SESSION, priority=PRIORITY_BULK
            )
            span.seq = ticket.seq
            return ticket.result(timeout)
        finally:
            self._batch_gate.release()

    # -- execution (router scheduler workers) ------------------------------

    def _plan(self, step: int, box, filters):
        meta = self.metadata(step)
        return self._plan_caches[step].get_or_build(meta, box, tuple(filters))

    def _empty_batch(self, step: int, columns) -> ParticleBatch:
        specs = self.metadata(step).attribute_specs()
        if specs is None:  # pre-attr_dtypes manifest: one transient open
            from ..bat.file import BATFile

            meta = self.metadata(step)
            first = meta.leaves[0]
            with BATFile(self._step_manifests[step].parent / first.file_name) as f:
                specs = f.attribute_specs()
        if columns is not None:
            specs = [sp for sp in specs if sp.name in columns]
        return ParticleBatch.empty(specs)

    def _scatter_window(self, span, req: QueryRequest, step: int,
                        prev: float, effective: float):
        """Scatter the (prev, effective] window; gather and merge in order.

        Returns ``(batch, partial)``. The batch is byte-identical to the
        single-process decode of the same window (order-key merge).
        """
        t0 = self._clock()
        plan = self._plan(step, req.box, req.filters)
        span.plan_seconds = self._clock() - t0
        owners = self._owners[step]
        needed = sorted({owners[fp.leaf_index] for fp in plan.files})
        with self._fanout_lock:
            if len(needed) > 1:
                self.fanout_multi += 1
            else:
                self.fanout_single += 1
            self.fanout_shards += len(needed)
        if not needed:
            span.increments = 1
            return self._empty_batch(step, req.columns), False
        exec_req = replace(
            req, quality=effective, prev_quality=prev, on_error="degrade"
        )
        doc = {"step": step, "request": request_to_doc(exec_req)}
        t0 = self._clock()
        clients = [self._shards[s] for s in needed]
        started = [(c, c._start("query", doc)) for c in clients]
        payloads = [
            c.finish(reply, self._rpc_timeout, retry=("query", doc))
            for c, reply in started
        ]
        span.traverse_seconds = self._clock() - t0
        incs = []
        partial = False
        quarantined = 0
        for payload in payloads:
            partial = partial or payload["partial"]
            quarantined += payload["quarantined_files"]
            incs.append(StreamIncrement(
                quality=effective,
                prev_quality=prev,
                batch=ParticleBatch(
                    payload["positions"], payload["attributes"],
                    count=payload["count"],
                ),
                order=payload["order"],
            ))
        span.partial = partial
        span.quarantined_files = quarantined
        span.increments = 1
        batch = reassemble_stream(incs).batch
        if not len(batch) and not batch.attributes:
            # every shard answered empty with an untyped batch; retype
            # from the manifest so empty responses stay schema-stable
            batch = self._empty_batch(step, req.columns)
        return batch, partial

    def _execute_stateless(self, ticket, span, req: QueryRequest, step: int):
        t_start = self._clock()
        span.wait_seconds = ticket.wait_seconds
        span.queue_depth = self.scheduler.queue_depth + self.scheduler.in_flight
        prev, effective = req.prev_quality, req.quality
        key = result_key(
            step, req.box, req.filters, prev, effective, req.columns,
            generation=self.generation(step),
        )
        batch = self.results.get(key)
        cache_hit = batch is not None
        if cache_hit:
            partial = False
        else:
            batch, partial = self._scatter_window(span, req, step, prev, effective)
            if not partial:
                t0 = self._clock()
                self.results.put(key, batch)
                span.gather_seconds = self._clock() - t0
        span.served_quality = effective
        span.cache_hit = cache_hit
        span.points = len(batch)
        span.nbytes = batch.nbytes
        span.total_seconds = span.wait_seconds + (self._clock() - t_start)
        self.metrics.record(span)
        return ServeResponse(
            batch=batch,
            requested_quality=req.quality,
            served_quality=effective,
            prev_quality=prev,
            degraded=False,
            cache_hit=cache_hit,
            span=span,
            partial=partial,
            quarantined_files=span.quarantined_files,
            increments=span.increments,
        )

    def _execute_session(self, ticket, sess: ServeSession, span,
                         req: QueryRequest, step: int):
        """Session-stateful window: mirrors :meth:`QueryService._execute`.

        Same view-change reset, same monotone ``delivered_quality``, same
        degradation and caching decisions — so a sharded session's
        response sequence is byte-identical to a single-process one.
        """
        t_start = self._clock()
        span.wait_seconds = ticket.wait_seconds
        sched = self.scheduler
        quality = req.quality
        box, filters, columns = req.box, req.filters, req.columns
        with sess.lock:
            span.queue_depth = sched.queue_depth + sched.in_flight
            if not sess.matches(step, box, filters, columns):
                sess.step = step
                sess.box = box
                sess.filters = filters
                sess.columns = columns
                sess.delivered_quality = 0.0
            prev = sess.delivered_quality
            span.prev_quality = prev

            self.degradation.observe(sched.load_factor())
            effective, degraded = self.degradation.apply(quality)
            span.degraded = degraded
            if degraded:
                sess.downgrades += 1

            if effective <= prev:
                batch = self._empty_batch(step, columns)
                served = prev
                cache_hit = False
            else:
                key = result_key(
                    step, box, filters, prev, effective, columns,
                    generation=self.generation(step),
                )
                batch = self.results.get(key)
                cache_hit = batch is not None
                if cache_hit:
                    served = effective
                    span.increments = 1
                else:
                    batch, partial = self._scatter_window(
                        span, req, step, prev, effective
                    )
                    served = effective
                    if not partial:
                        t0 = self._clock()
                        self.results.put(key, batch)
                        span.gather_seconds = self._clock() - t0
            if served > prev:
                sess.delivered_quality = served
            sess.requests += 1
            sess.bytes_sent += batch.nbytes
        span.served_quality = served
        span.cache_hit = cache_hit
        span.points = len(batch)
        span.nbytes = batch.nbytes
        span.total_seconds = span.wait_seconds + (self._clock() - t_start)
        self.metrics.record(span)
        return ServeResponse(
            batch=batch,
            requested_quality=quality,
            served_quality=served,
            prev_quality=span.prev_quality,
            degraded=span.degraded,
            cache_hit=cache_hit,
            span=span,
            partial=span.partial,
            quarantined_files=span.quarantined_files,
            increments=span.increments,
        )

    # -- metrics -----------------------------------------------------------

    def snapshot(self, include_workers: bool = True) -> dict:
        """The aggregated JSON metrics surface: router plus every shard."""
        doc = self.metrics.snapshot()
        doc["scheduler"] = self.scheduler.stats()
        doc["degradation"] = self.degradation.stats()
        with self._meta_lock:
            plans = {
                "hits": sum(pc.hits for pc in self._plan_caches.values()),
                "misses": sum(pc.misses for pc in self._plan_caches.values()),
            }
        doc["caches"] = {"results": self.results.stats(), "plans": plans}
        with self._fanout_lock:
            scattered = self.fanout_single + self.fanout_multi
            doc["shards"] = {
                "count": self.n_shards,
                "fanout_single": self.fanout_single,
                "fanout_multi": self.fanout_multi,
                "fanout_mean": (
                    self.fanout_shards / scattered if scattered else 0.0
                ),
                "restarts": sum(c.restarts for c in self._shards),
            }
        if include_workers:
            workers = []
            for client in self._shards:
                try:
                    workers.append(client.call("snapshot", timeout=self._rpc_timeout))
                except (ShardCrashed, ShardUnavailable) as exc:
                    workers.append({"shard": client.shard_id, "error": str(exc)})
            doc["shards"]["workers"] = workers
        doc["sessions"] = self.n_sessions
        doc["steps"] = len(self._step_manifests)
        with self._meta_lock:
            doc["generations"] = {
                str(step): meta.generation
                for step, meta in self._metadata.items()
            }
        return json_sanitize(doc)

    def telemetry_snapshot(self) -> dict:
        """Per-(step, leaf) access tallies merged across every worker.

        The traversal happens in the shard processes, so the authoritative
        open/decode/point counts live there; this gathers each worker's
        :class:`~repro.serve.metrics.AccessTelemetry` snapshot and sums
        them into one document the reorg planner consumes exactly like a
        single-process service's ``snapshot()["telemetry"]``.
        """
        docs = []
        for client in self._shards:
            try:
                worker = client.call("snapshot", timeout=self._rpc_timeout)
            except (ShardCrashed, ShardUnavailable):
                continue
            docs.append(worker.get("telemetry"))
        return merge_telemetry(docs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedQueryService(shards={self.n_shards}, "
            f"steps={len(self._step_manifests)}, sessions={self.n_sessions})"
        )
