"""Pre-completion request collapsing: the in-flight decode table.

The :class:`~repro.serve.cache.ResultCache` deduplicates work *after* a
request completes; under a thundering herd (N sessions zooming into the
same region at once) all N misses start decoding before the first one
finishes, and the same treelets are decoded N times. The
:class:`InflightTable` sits one tier above the result cache in the cache
hierarchy (result → **collapse** → plan → decoded-column → file handle)
and collapses the herd *before* completion: the first request to miss
becomes the **leader** and executes normally, publishing each streamed
increment into its table entry as it materializes; every later request
whose work overlaps joins as a **follower** and consumes the leader's
increments instead of decoding anything itself.

Followers need not match the leader exactly. A follower shares an entry
when its result is a pure row/column transform of the leader's product:

- **exact** — same ``(step, box, filters, prev_quality, quality,
  columns, engine)``: increments are shared as-is;
- **column subset** — the leader materializes a superset of the
  follower's columns (or all of them): increments are projected. The
  file's attribute order is preserved by projection, so the bytes equal
  a direct query's;
- **filter superset** — the follower adds filters on top of the
  leader's (and the leader materialized the filtered attributes): rows
  are masked by the extra predicates. Bitmap pruning is conservative and
  the engines apply an exact false-positive check to every emitted row,
  so the surviving rows — and their order — are identical to a direct
  query with the full filter set;
- **quality truncation** — the follower wants a lower quality that lands
  exactly on one of the leader's ladder rungs: the follower stops
  consuming at that rung. Rung slot-ranges chain exactly, so a prefix of
  the stream *is* the direct result at the rung's quality.

A leader that fails, sheds under backpressure, or goes partial
(quarantined leaf) abandons its followers — they fall back to executing
their own query, never reusing a result that is not provably
byte-identical. Partial or shed products are likewise never shared.

Entries live only while the leader executes (pre-completion dedup); the
result cache takes over afterwards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..api import StreamIncrement
from ..types import ParticleBatch

__all__ = [
    "CollapseAbandoned",
    "CollapseKey",
    "FollowSpec",
    "InflightEntry",
    "InflightTable",
    "adapt_increment",
]


class CollapseAbandoned(Exception):
    """The leader failed, shed, or went partial; follower must fall back."""


@dataclass(frozen=True)
class CollapseKey:
    """Identity of one unit of in-flight decode work."""

    step: int
    box: object
    filters: tuple
    prev_quality: float
    quality: float
    columns: tuple | None
    engine: str
    #: manifest layout generation — a request planned against a
    #: reorganized layout must never join a leader started on the old
    #: one (row order follows the leaf set, so their streams differ)
    generation: int = 0
    #: request family ("query" or "neighbor") — families never share a
    #: decode; neighbor entries carry the frozen request as ``box`` and
    #: join on exact match only
    family: str = "query"


@dataclass(frozen=True)
class FollowSpec:
    """How a follower transforms the leader's increments into its own.

    ``extra_filters`` are the follower's filters the leader did not
    apply (row mask); ``columns`` is the follower's column selection when
    it differs from the leader's (projection; ``None`` means share
    as-is); ``stop_quality`` is the ladder rung the follower stops at
    (``None`` = consume the whole stream).
    """

    extra_filters: tuple = ()
    columns: tuple | None = None
    stop_quality: float | None = None

    @property
    def is_identity(self) -> bool:
        return not self.extra_filters and self.columns is None


def adapt_increment(inc: StreamIncrement, spec: FollowSpec) -> StreamIncrement:
    """Apply a follower's row mask / column projection to one increment."""
    if spec.is_identity:
        return inc
    batch = inc.batch
    order = inc.order
    if spec.extra_filters and len(batch):
        mask = None
        for f in spec.extra_filters:
            vals = batch.attributes[f.name]
            fmask = (vals >= f.lo) & (vals <= f.hi)
            mask = fmask if mask is None else (mask & fmask)
        if not mask.all():
            batch = batch.select(mask)
            if order is not None:
                order = order[mask]
    if spec.columns is not None:
        names = [n for n in batch.attributes if n in spec.columns]
        with_positions = "positions" in spec.columns
        attrs = {n: batch.attributes[n] for n in names}
        batch = ParticleBatch(
            batch.positions if with_positions else None, attrs, count=len(batch)
        )
    return StreamIncrement(
        quality=inc.quality,
        prev_quality=inc.prev_quality,
        batch=batch,
        order=order,
        stats=inc.stats,
        partial=inc.partial,
    )


#: follower sentinel: the leader finished publishing
_DONE = object()


class InflightEntry:
    """One leader's published stream, consumable by followers."""

    __slots__ = (
        "key", "ladder", "subscribers",
        "_cond", "_increments", "_done", "_dead",
    )

    def __init__(self, key: CollapseKey, ladder: tuple):
        self.key = key
        self.ladder = ladder
        #: followers that joined this entry (leader not counted)
        self.subscribers = 0
        self._cond = threading.Condition()
        self._increments: list[StreamIncrement] = []
        self._done = False
        #: set when the leader failed/shed/went partial: followers bail
        self._dead = False

    # -- leader side ---------------------------------------------------------

    def publish(self, inc: StreamIncrement) -> None:
        with self._cond:
            if inc.partial:
                # a quarantined leaf makes every later increment (and the
                # reassembly) non-byte-comparable: abandon followers
                self._dead = True
            else:
                self._increments.append(inc)
            self._cond.notify_all()

    def finish(self) -> None:
        with self._cond:
            self._done = True
            self._cond.notify_all()

    def abandon(self) -> None:
        """Leader failed or shed: wake followers into their fallbacks."""
        with self._cond:
            self._dead = True
            self._done = True
            self._cond.notify_all()

    # -- follower side -------------------------------------------------------

    def fetch(self, index: int, timeout: float | None, clock=time.monotonic):
        """Increment ``index``, blocking until published; ``_DONE`` at end.

        Raises :class:`CollapseAbandoned` when the leader died or the
        wait timed out — the follower falls back to its own query.
        """
        deadline = None if timeout is None else clock() + timeout
        with self._cond:
            while True:
                if self._dead:
                    raise CollapseAbandoned(str(self.key))
                if index < len(self._increments):
                    return self._increments[index]
                if self._done:
                    return _DONE
                remaining = None if deadline is None else deadline - clock()
                if remaining is not None and remaining <= 0:
                    raise CollapseAbandoned(f"timed out waiting on {self.key}")
                self._cond.wait(remaining)



def _filters_subset(sub: tuple, sup: tuple) -> bool:
    return all(f in sup for f in sub)


def _compatible(entry: InflightEntry, key: CollapseKey) -> FollowSpec | None:
    """The transform turning ``entry``'s stream into ``key``'s result, or None."""
    ek = entry.key
    if (ek.step, ek.box, ek.prev_quality, ek.engine) != (
        key.step, key.box, key.prev_quality, key.engine,
    ):
        return None
    if key.quality == ek.quality:
        stop = None
    elif key.quality in entry.ladder:
        stop = key.quality
    else:
        return None
    if not _filters_subset(ek.filters, key.filters):
        return None
    extra = tuple(f for f in key.filters if f not in ek.filters)
    columns = None if key.columns == ek.columns else key.columns
    if ek.columns is not None:
        # the leader only materialized ek.columns: the follower's columns
        # and its extra filter attributes must all be in that set
        if key.columns is None or not set(key.columns) <= set(ek.columns):
            return None
        if any(f.name not in ek.columns for f in extra):
            return None
    return FollowSpec(extra_filters=extra, columns=columns, stop_quality=stop)


class InflightTable:
    """Registry of in-flight leaders, keyed for exact and derived joins."""

    def __init__(self):
        self._lock = threading.Lock()
        #: (step, box, prev_quality, engine) -> entries in flight
        self._buckets: dict[tuple, list[InflightEntry]] = {}
        self.leaders = 0
        self.collapsed_hits = 0
        self.derived_hits = 0
        #: followers that had to fall back (leader failed/shed/partial/timeout)
        self.fallbacks = 0
        #: work followers did not repeat, summed as the leader's product size
        self.saved_points = 0
        self.saved_bytes = 0

    def acquire(self, key: CollapseKey, ladder: tuple):
        """Join an overlapping in-flight request or become the leader.

        Returns ``(entry, spec)``: ``spec`` is ``None`` for a leader
        (who must later :meth:`release` the entry) and a
        :class:`FollowSpec` for a follower.
        """
        bucket_key = (key.family, key.step, key.box, key.prev_quality, key.engine)
        with self._lock:
            for entry in self._buckets.get(bucket_key, ()):
                if entry.key == key:
                    entry.subscribers += 1
                    self.collapsed_hits += 1
                    return entry, FollowSpec()
                spec = _compatible(entry, key)
                if spec is not None:
                    entry.subscribers += 1
                    self.derived_hits += 1
                    return entry, spec
            entry = InflightEntry(key, ladder)
            self._buckets.setdefault(bucket_key, []).append(entry)
            self.leaders += 1
            return entry, None

    def release(self, entry: InflightEntry) -> None:
        """Leader done (or dead): entry leaves the pre-completion table."""
        bucket_key = (
            entry.key.family, entry.key.step, entry.key.box,
            entry.key.prev_quality, entry.key.engine,
        )
        with self._lock:
            bucket = self._buckets.get(bucket_key)
            if bucket is not None:
                try:
                    bucket.remove(entry)
                except ValueError:
                    pass
                if not bucket:
                    del self._buckets[bucket_key]

    def record_fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1

    def record_shared(self, points: int, nbytes: int) -> None:
        """A follower consumed this much of a leader's product."""
        with self._lock:
            self.saved_points += points
            self.saved_bytes += nbytes

    def stats(self) -> dict:
        with self._lock:
            entries = sum(len(b) for b in self._buckets.values())
            subscribers = sum(
                e.subscribers for b in self._buckets.values() for e in b
            )
            hits = self.collapsed_hits + self.derived_hits
            total = self.leaders + hits
            return {
                "entries": entries,
                "subscribers": subscribers,
                "leaders": self.leaders,
                "collapsed_hits": self.collapsed_hits,
                "derived_hits": self.derived_hits,
                "fallbacks": self.fallbacks,
                #: completed joins = decodes that never ran
                "saved_decodes": hits - self.fallbacks,
                "saved_points": self.saved_points,
                "saved_bytes": self.saved_bytes,
                "hit_rate": hits / total if total else 0.0,
            }
