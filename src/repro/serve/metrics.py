"""Per-request spans and the aggregated serving metrics surface.

Every request the service admits carries a :class:`RequestSpan` through
its lifetime — enqueue, scheduling wait, planning, traversal, gather —
and drops it into a :class:`ServeMetrics` collector on completion. The
collector is the single JSON-able source of truth the CLI, the load
generator, and the bench suite print: latency percentiles, per-phase time
totals, queue-depth high-water marks, admission rejections, degradation
engage/release transitions, and the hit rates of every cache layer
(result → collapse → plan → decoded column → file handle).

Memory is bounded: per-request samples (latency, time to first
increment) live in a fixed-size ring buffer, so a service that has been
up for weeks holds the same few kilobytes as one that served ten
requests. Percentiles are exact over that window; counters and phase
totals stay cumulative since start.

Wall-clock reads go through an injectable ``clock`` so tests can drive
TTL and latency accounting deterministically.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "DEFAULT_METRICS_WINDOW",
    "AccessTelemetry",
    "RequestSpan",
    "ServeMetrics",
    "json_sanitize",
    "merge_telemetry",
    "percentile",
]

#: ring-buffer size for per-request samples (latency, TTFI)
DEFAULT_METRICS_WINDOW = 4096


def _sanitize_key(key) -> str:
    """A strict-JSON object key: always ``str``, numpy unwrapped first."""
    if isinstance(key, str):
        return key
    if isinstance(key, np.generic):
        key = key.item()
    if isinstance(key, (tuple, list)):
        return "/".join(str(_sanitize_key(k)) for k in key)
    return str(key)


def json_sanitize(obj):
    """Make a metrics document strictly JSON-serializable.

    Shard workers ship their snapshots over IPC and dashboards re-emit
    them verbatim, so nothing numpy-shaped (scalars, arrays), no tuple or
    int dict keys, and no ``Path``/``set`` values may leak through.
    ``json.dumps(json_sanitize(doc), allow_nan=False)`` must always
    succeed for any snapshot the serve tier produces (regression-tested).
    Unknown objects fall back to ``str`` — a snapshot must never fail to
    serialize because one counter grew an exotic type.
    """
    if isinstance(obj, dict):
        return {_sanitize_key(k): json_sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_sanitize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(json_sanitize(v) for v in obj)
    if isinstance(obj, np.ndarray):
        return [json_sanitize(v) for v in obj.tolist()]
    if isinstance(obj, np.generic):
        obj = obj.item()
    if isinstance(obj, float):
        # NaN/Inf are not JSON; surface them as null rather than crash
        return obj if obj == obj and abs(obj) != float("inf") else None
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, Path):
        return str(obj)
    return str(obj)


def percentile(values, p: float) -> float:
    """Nearest-rank percentile of an unsorted sequence (0 for empty)."""
    if not values:
        return 0.0
    vals = sorted(values)
    if len(vals) == 1:
        return float(vals[0])
    rank = max(1, int(round(p / 100.0 * len(vals) + 0.5)))
    return float(vals[min(rank, len(vals)) - 1])


@dataclass
class RequestSpan:
    """Timing and outcome record of one request through the service."""

    session_id: int
    seq: int
    requested_quality: float
    prev_quality: float = 0.0
    served_quality: float = 0.0
    priority: int = 0
    #: queue depth observed at admission time (this request included)
    queue_depth: int = 0
    degraded: bool = False
    cache_hit: bool = False
    rejected: bool = False
    #: the result is missing data from quarantined (corrupt/missing) leaves
    partial: bool = False
    #: leaf files this request's query could not see
    quarantined_files: int = 0
    #: served from an overlapping in-flight request instead of decoding
    collapsed: bool = False
    #: delivered through a StreamHandle (increments, not one batch)
    streamed: bool = False
    #: stopped early at a rung boundary (slow consumer / closed handle)
    shed: bool = False
    #: increments actually delivered (1 for a one-shot response)
    increments: int = 0
    #: submission → first increment available to the client (0 = untracked)
    first_increment_seconds: float = 0.0
    wait_seconds: float = 0.0
    plan_seconds: float = 0.0
    traverse_seconds: float = 0.0
    gather_seconds: float = 0.0
    total_seconds: float = 0.0
    points: int = 0
    nbytes: int = 0

    def to_doc(self) -> dict:
        return {
            "session": self.session_id,
            "seq": self.seq,
            "requested_quality": self.requested_quality,
            "served_quality": self.served_quality,
            "prev_quality": self.prev_quality,
            "priority": self.priority,
            "queue_depth": self.queue_depth,
            "degraded": self.degraded,
            "cache_hit": self.cache_hit,
            "rejected": self.rejected,
            "partial": self.partial,
            "quarantined_files": self.quarantined_files,
            "collapsed": self.collapsed,
            "streamed": self.streamed,
            "shed": self.shed,
            "increments": self.increments,
            "first_increment_seconds": self.first_increment_seconds,
            "wait_seconds": self.wait_seconds,
            "plan_seconds": self.plan_seconds,
            "traverse_seconds": self.traverse_seconds,
            "gather_seconds": self.gather_seconds,
            "total_seconds": self.total_seconds,
            "points": self.points,
            "nbytes": self.nbytes,
        }


@dataclass
class _PhaseTotals:
    wait: float = 0.0
    plan: float = 0.0
    traverse: float = 0.0
    gather: float = 0.0

    def add(self, span: RequestSpan) -> None:
        self.wait += span.wait_seconds
        self.plan += span.plan_seconds
        self.traverse += span.traverse_seconds
        self.gather += span.gather_seconds


class ServeMetrics:
    """Thread-safe aggregation of request spans and scheduler samples.

    Counters are cumulative since construction; per-request samples live
    in a ring buffer of ``window`` entries, so percentiles describe the
    recent window while the memory footprint stays constant.
    """

    def __init__(self, clock=time.perf_counter, window: int = DEFAULT_METRICS_WINDOW):
        if window < 1:
            raise ValueError("metrics window must be >= 1")
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self.window = int(window)
        self._latencies: deque[float] = deque(maxlen=self.window)
        #: submission → first increment, streamed/collapsed requests only
        self._ttfi: deque[float] = deque(maxlen=self.window)
        self._phases = _PhaseTotals()
        self.completed = 0
        self.rejected = 0
        self.degraded = 0
        self.cache_hits = 0
        #: responses that lacked data from quarantined leaf files
        self.partial_responses = 0
        #: sum of quarantined-file counts across all requests
        self.quarantined_files = 0
        self.empty_increments = 0
        self.points_served = 0
        self.bytes_served = 0
        self.max_queue_depth = 0
        #: requests served off an overlapping in-flight decode
        self.collapsed = 0
        #: requests delivered through a StreamHandle
        self.streamed = 0
        #: streams stopped early at a rung boundary by backpressure
        self.shed = 0
        #: increments delivered across all requests
        self.increments = 0
        #: cumulative latency, so the all-time mean survives the window
        self.latency_sum = 0.0
        self.latency_max = 0.0

    # -- recording -----------------------------------------------------------

    def record(self, span: RequestSpan) -> None:
        with self._lock:
            if span.rejected:
                self.rejected += 1
                self.max_queue_depth = max(self.max_queue_depth, span.queue_depth)
                return
            self.completed += 1
            self._latencies.append(span.total_seconds)
            self.latency_sum += span.total_seconds
            self.latency_max = max(self.latency_max, span.total_seconds)
            self._phases.add(span)
            if span.degraded:
                self.degraded += 1
            if span.cache_hit:
                self.cache_hits += 1
            if span.partial:
                self.partial_responses += 1
                self.quarantined_files += span.quarantined_files
            if span.collapsed:
                self.collapsed += 1
            if span.streamed:
                self.streamed += 1
            if span.shed:
                self.shed += 1
            self.increments += span.increments
            if span.first_increment_seconds > 0.0:
                self._ttfi.append(span.first_increment_seconds)
            if span.points == 0:
                self.empty_increments += 1
            self.points_served += span.points
            self.bytes_served += span.nbytes
            self.max_queue_depth = max(self.max_queue_depth, span.queue_depth)

    def sample_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.max_queue_depth = max(self.max_queue_depth, depth)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """The JSON-able metrics surface (latencies in milliseconds)."""
        with self._lock:
            lat = list(self._latencies)
            ttfi = list(self._ttfi)
            elapsed = max(self._clock() - self._started, 1e-9)
            n = max(self.completed, 1)
            return {
                "requests": {
                    "completed": self.completed,
                    "rejected": self.rejected,
                    "degraded": self.degraded,
                    "cache_hits": self.cache_hits,
                    "partial": self.partial_responses,
                    "quarantined_files": self.quarantined_files,
                    "empty_increments": self.empty_increments,
                    "points_served": self.points_served,
                    "bytes_served": self.bytes_served,
                    "throughput_rps": self.completed / elapsed,
                },
                "latency_ms": {
                    "p50": 1e3 * percentile(lat, 50),
                    "p99": 1e3 * percentile(lat, 99),
                    "mean": 1e3 * sum(lat) / len(lat) if lat else 0.0,
                    "max": 1e3 * max(lat) if lat else 0.0,
                    # cumulative, not windowed: for long-run dashboards
                    "mean_all": 1e3 * self.latency_sum / n,
                    "max_all": 1e3 * self.latency_max,
                    "window": self.window,
                    "window_count": len(lat),
                },
                "streaming": {
                    "streamed": self.streamed,
                    "collapsed": self.collapsed,
                    "shed": self.shed,
                    "increments": self.increments,
                    "ttfi_ms": {
                        "p50": 1e3 * percentile(ttfi, 50),
                        "p99": 1e3 * percentile(ttfi, 99),
                        "mean": 1e3 * sum(ttfi) / len(ttfi) if ttfi else 0.0,
                        "window_count": len(ttfi),
                    },
                },
                "phase_seconds": {
                    "wait": self._phases.wait,
                    "plan": self._phases.plan,
                    "traverse": self._phases.traverse,
                    "gather": self._phases.gather,
                    "wait_mean": self._phases.wait / n,
                },
                "queue": {"max_depth": self.max_queue_depth},
            }

    def to_json(self, **extra) -> str:
        doc = self.snapshot()
        doc.update(extra)
        return json.dumps(doc, indent=1, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ServeMetrics(completed={self.completed}, rejected={self.rejected}, "
            f"degraded={self.degraded})"
        )


@dataclass
class _LeafTally:
    """Cumulative access counters for one (step, leaf)."""

    opens: int = 0
    points: int = 0
    decoded_bytes: int = 0

    def to_doc(self) -> dict:
        return {
            "opens": self.opens,
            "points": self.points,
            "decoded_bytes": self.decoded_bytes,
        }


class _StepTelemetry:
    """A per-step recording handle bound onto a dataset by the service.

    :class:`~repro.core.dataset.BATDataset` calls :meth:`leaf` once per
    planned file per executed query and :meth:`view` once per query; the
    handle forwards into the owning :class:`AccessTelemetry` with the
    step baked in, so the dataset layer stays step-agnostic.
    """

    __slots__ = ("_telemetry", "step")

    def __init__(self, telemetry: "AccessTelemetry", step: int):
        self._telemetry = telemetry
        self.step = int(step)

    def view(self, box, filters=(), columns=()) -> None:
        self._telemetry.record_view(self.step, box, filters, columns)

    def leaf(self, leaf_index: int, points: int = 0, decoded_bytes: int = 0) -> None:
        self._telemetry.record_leaf(self.step, leaf_index, points, decoded_bytes)


class AccessTelemetry:
    """Per-(step, leaf) access tallies plus hot-box/column evidence.

    This is the input side of online layout reorganization (Wan et al.,
    arXiv 2107.07108): the reorganizer needs to know *which leaves* real
    sessions open, how many points each contributes, how much column
    data it decodes, which query boxes recur, and which columns are
    touched. Everything here is cumulative counters plus a bounded
    top-K box census, so memory stays constant for a service that has
    been up for weeks.

    Thread-safe; a snapshot is strict-JSON (string keys, plain ints) so
    shard workers can ship theirs over the pipe RPC and the router can
    merge them with :func:`merge_telemetry`.
    """

    #: distinct boxes tracked per step before the census sheds rare ones
    BOX_CENSUS_CAP = 512

    def __init__(self):
        self._lock = threading.Lock()
        #: (step, leaf_index) -> tally
        self._leaves: dict[tuple[int, int], _LeafTally] = {}
        #: (step, column_name) -> touch count
        self._columns: dict[tuple[int, str], int] = {}
        #: step -> {(lower, upper) or None: count} — recurring query boxes
        self._boxes: dict[int, dict] = {}
        self.queries = 0

    def bind(self, step: int) -> _StepTelemetry:
        """A per-step recorder to attach to a dataset (``ds.telemetry``)."""
        return _StepTelemetry(self, step)

    # -- recording ---------------------------------------------------------

    def record_view(self, step: int, box, filters=(), columns=()) -> None:
        """Count one executed query: its box, filters, and touched columns."""
        step = int(step)
        if box is not None:
            box_key = (
                tuple(float(v) for v in box.lower),
                tuple(float(v) for v in box.upper),
            )
        else:
            box_key = None
        names = list(columns or ())
        for f in filters or ():
            name = f[0] if isinstance(f, (tuple, list)) else getattr(f, "name", None)
            if name is not None:
                names.append(name)
        with self._lock:
            self.queries += 1
            census = self._boxes.setdefault(step, {})
            census[box_key] = census.get(box_key, 0) + 1
            if len(census) > self.BOX_CENSUS_CAP:
                # shed the rarest half; recurring hot boxes survive
                keep = sorted(census.items(), key=lambda kv: -kv[1])
                census.clear()
                census.update(keep[: self.BOX_CENSUS_CAP // 2])
            for name in names:
                k = (step, str(name))
                self._columns[k] = self._columns.get(k, 0) + 1

    def record_leaf(
        self, step: int, leaf_index: int, points: int = 0, decoded_bytes: int = 0
    ) -> None:
        """Count one planned-file open and its per-query contribution."""
        k = (int(step), int(leaf_index))
        with self._lock:
            t = self._leaves.get(k)
            if t is None:
                t = self._leaves[k] = _LeafTally()
            t.opens += 1
            t.points += int(points)
            t.decoded_bytes += int(decoded_bytes)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Strict-JSON telemetry document, grouped per step.

        ``steps.<step>.leaves.<leaf_index>`` carries the open/point/decode
        tallies; ``boxes`` lists the top recurring query boxes as
        ``[lower, upper, count]`` (full-domain queries appear with null
        bounds); ``columns`` maps column name to touch count.
        """
        with self._lock:
            steps: dict[str, dict] = {}

            def _step_doc(step: int) -> dict:
                return steps.setdefault(
                    str(step), {"leaves": {}, "boxes": [], "columns": {}}
                )

            for (step, leaf), tally in self._leaves.items():
                _step_doc(step)["leaves"][str(leaf)] = tally.to_doc()
            for (step, name), n in self._columns.items():
                _step_doc(step)["columns"][name] = n
            for step, census in self._boxes.items():
                doc = _step_doc(step)
                top = sorted(census.items(), key=lambda kv: -kv[1])[:64]
                doc["boxes"] = [
                    [list(k[0]), list(k[1]), n] if k is not None else [None, None, n]
                    for k, n in top
                ]
            return {"queries": self.queries, "steps": steps}

    def files_opened(self, step: int | None = None) -> int:
        """Total planned-file opens recorded (optionally for one step)."""
        with self._lock:
            return sum(
                t.opens
                for (s, _), t in self._leaves.items()
                if step is None or s == int(step)
            )


def merge_telemetry(docs) -> dict:
    """Merge telemetry snapshots (e.g. one per shard worker) into one.

    Leaf tallies and column touches sum; box censuses sum per box. The
    result has the same shape as :meth:`AccessTelemetry.snapshot`, so the
    reorg planner consumes router-merged and single-process documents
    identically.
    """
    out = {"queries": 0, "steps": {}}
    for doc in docs:
        if not doc:
            continue
        out["queries"] += int(doc.get("queries", 0))
        for step, sdoc in doc.get("steps", {}).items():
            tgt = out["steps"].setdefault(
                str(step), {"leaves": {}, "boxes": [], "columns": {}}
            )
            for leaf, tally in sdoc.get("leaves", {}).items():
                cur = tgt["leaves"].setdefault(
                    str(leaf), {"opens": 0, "points": 0, "decoded_bytes": 0}
                )
                for k in cur:
                    cur[k] += int(tally.get(k, 0))
            for name, n in sdoc.get("columns", {}).items():
                tgt["columns"][name] = tgt["columns"].get(name, 0) + int(n)
            census: dict = {}
            for lo, hi, n in tgt["boxes"]:
                key = (tuple(lo), tuple(hi)) if lo is not None else None
                census[key] = census.get(key, 0) + int(n)
            for lo, hi, n in sdoc.get("boxes", []):
                key = (tuple(lo), tuple(hi)) if lo is not None else None
                census[key] = census.get(key, 0) + int(n)
            tgt["boxes"] = [
                [list(k[0]), list(k[1]), n] if k is not None else [None, None, n]
                for k, n in sorted(census.items(), key=lambda kv: -kv[1])
            ]
    return out
