"""Per-session increment transport with backpressure.

A streamed request's worker produces increments faster than a slow
client consumes them; buffering the gap unboundedly is exactly the
failure mode the serve tier exists to avoid. A :class:`StreamOutbox` is
a small bounded queue between one worker (producer) and one client
(consumer): the worker's :meth:`~StreamOutbox.push` blocks while the
outbox is full, and when the client has not drained it within the grace
period the push returns ``False`` — the worker then stops producing at
the current quality rung ("sheds"). Because rung slot-ranges chain
exactly, everything pushed so far *is* the byte-exact result at the last
delivered rung's quality, and the session refines from there once the
client catches up — the same convergence contract as load-driven quality
degradation.

The outbox is thread-synchronous (``threading.Condition``) but grows an
optional ``on_event`` hook invoked — outside the lock — whenever state a
consumer waits on changes; the asyncio front end
(:mod:`repro.serve.aio`) points it at ``loop.call_soon_threadsafe`` to
wake a coroutine instead of a thread, and consumes via the non-blocking
:meth:`~StreamOutbox.try_pop`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["DONE", "EMPTY", "StreamOutbox", "StreamHandle"]

#: consumer sentinel: the producer finished (successfully or not)
DONE = object()
#: ``try_pop`` sentinel: nothing buffered right now
EMPTY = object()


class StreamOutbox:
    """Bounded single-producer / single-consumer increment queue."""

    def __init__(self, maxsize: int, on_event=None, clock=time.monotonic):
        if maxsize < 1:
            raise ValueError("outbox maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._cond = threading.Condition()
        self._items: deque = deque()
        self._clock = clock
        self._finished = False
        self._error: BaseException | None = None
        self._abandoned = False
        #: thread-safe wakeup hook for event-loop consumers
        self._on_event = on_event
        #: pushes that found the outbox full and waited at all
        self.blocked_pushes = 0
        #: high-water mark of buffered increments
        self.max_depth = 0

    # -- producer (worker) side ---------------------------------------------

    def push(self, item, grace: float | None) -> bool:
        """Enqueue ``item``; block up to ``grace`` seconds while full.

        Returns ``False`` when the consumer is gone or did not free a
        slot within the grace period — the producer must shed (stop at
        the current rung boundary) instead of buffering further.
        """
        deadline = None if grace is None else self._clock() + grace
        notify = False
        with self._cond:
            if len(self._items) >= self.maxsize and not self._abandoned:
                self.blocked_pushes += 1
            while len(self._items) >= self.maxsize and not self._abandoned:
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            if self._abandoned:
                return False
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self._items))
            self._cond.notify_all()
            notify = True
        if notify and self._on_event is not None:
            self._on_event()
        return True

    def finish(self, error: BaseException | None = None) -> None:
        """Producer is done; buffered increments stay consumable.

        First call wins: a late safety-net ``finish(None)`` (shutdown,
        ticket cancellation callbacks) must not overwrite an error the
        worker already recorded, and vice versa.
        """
        with self._cond:
            if self._finished:
                return
            self._finished = True
            self._error = error
            self._cond.notify_all()
        if self._on_event is not None:
            self._on_event()

    # -- consumer (client) side ----------------------------------------------

    def pop(self, timeout: float | None = None):
        """Next increment, blocking; :data:`DONE` once drained and finished.

        Re-raises the producer's error (after all increments produced
        before it were consumed). Raises ``TimeoutError`` if nothing
        arrives in time.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                if self._items:
                    item = self._items.popleft()
                    self._cond.notify_all()
                    return item
                if self._finished:
                    if self._error is not None:
                        raise self._error
                    return DONE
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("stream increment still pending")
                self._cond.wait(remaining)

    def try_pop(self):
        """Non-blocking :meth:`pop`: :data:`EMPTY` when nothing is buffered."""
        with self._cond:
            if self._items:
                item = self._items.popleft()
                self._cond.notify_all()
                return item
            if self._finished:
                if self._error is not None:
                    raise self._error
                return DONE
            return EMPTY

    def abandon(self) -> None:
        """Consumer walks away: pending pushes return ``False`` immediately."""
        with self._cond:
            self._abandoned = True
            self._cond.notify_all()

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._items)


class StreamHandle:
    """Client-side face of one streamed request.

    Iterating yields :class:`~repro.api.StreamIncrement`s as the worker
    delivers them; :meth:`result` blocks for the final
    :class:`~repro.serve.service.ServeResponse` (whose batch is the
    reassembled stream). Dropping the handle early (``close``) tells the
    worker to stop producing.
    """

    def __init__(self, outbox: StreamOutbox, ticket):
        self.outbox = outbox
        self.ticket = ticket

    def __iter__(self):
        while True:
            item = self.outbox.pop()
            if item is DONE:
                return
            yield item

    def result(self, timeout: float | None = None):
        """The final :class:`ServeResponse` (drains nothing by itself)."""
        return self.ticket.result(timeout)

    def close(self) -> None:
        self.outbox.abandon()

    def __enter__(self) -> "StreamHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
