"""Asyncio front end: many progressive sessions on one event loop.

The thread-per-client model of :mod:`repro.serve.loadgen` tops out at
hundreds of clients; a visualization deployment wants thousands of idle
viewers each holding a progressive session open. This module multiplexes
them over a single event loop without adding any I/O threads of its own:
admission (:meth:`QueryService.stream`) is non-blocking, execution stays
on the service's existing worker pool, and delivery rides the
:class:`~repro.serve.streaming.StreamOutbox`'s ``on_event`` hook — the
worker thread wakes the consuming coroutine with
``loop.call_soon_threadsafe``, and the coroutine drains the outbox with
non-blocking ``try_pop``. A coroutine that stops draining exerts the
same backpressure as a slow thread: the bounded outbox fills, the worker
sheds at a rung boundary, and the session refines later.

``await service.request(...)`` resolves on a ticket done-callback, so a
pending request costs one waiting Future, not a parked thread — the
asyncio front end's whole reason to exist.
"""

from __future__ import annotations

import asyncio
import time

from ..api import QueryRequest
from .loadgen import LoadReport, TraceOp, _digest  # noqa: F401 (TraceOp re-export)
from .scheduler import AdmissionRejected
from .service import QueryService, ServeConfig, ServeResponse
from .streaming import DONE, EMPTY

__all__ = ["AsyncQueryService", "AsyncStream", "run_load_async"]


class AsyncStream:
    """One streamed request, consumed from the event loop.

    ``async for inc in stream`` yields increments as the worker delivers
    them; ``await stream.result()`` resolves to the final
    :class:`~repro.serve.service.ServeResponse`.
    """

    def __init__(self, handle, event: asyncio.Event):
        self._handle = handle
        self._event = event

    def __aiter__(self) -> "AsyncStream":
        return self

    async def __anext__(self):
        while True:
            item = self._handle.outbox.try_pop()
            if item is DONE:
                raise StopAsyncIteration
            if item is not EMPTY:
                return item
            self._event.clear()
            await self._event.wait()

    async def result(self) -> ServeResponse:
        ticket = self._handle.ticket
        loop = asyncio.get_running_loop()
        fut = loop.create_future()

        def on_done(_t, loop=loop, fut=fut):
            loop.call_soon_threadsafe(
                lambda: fut.done() or fut.set_result(None)
            )

        ticket.add_done_callback(on_done)
        await fut
        return ticket.result(0)

    def close(self) -> None:
        """Stop consuming; the worker sheds the remaining rungs."""
        self._handle.close()

    async def __aenter__(self) -> "AsyncStream":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()


class AsyncQueryService:
    """Event-loop face of one :class:`QueryService`.

    Construct from a source (owns the service) or wrap an existing one
    with ``AsyncQueryService(service=svc)`` (shares it; ``aclose`` then
    leaves it open). All methods must be called from a running loop.
    """

    def __init__(
        self,
        source=None,
        config: ServeConfig | None = None,
        *,
        service: QueryService | None = None,
    ):
        if service is None:
            if source is None:
                raise ValueError("AsyncQueryService needs a source or a service")
            service = QueryService(source, config)
            self._owned = True
        else:
            self._owned = False
        self.service = service

    # -- sessions (cheap, never block on I/O) --------------------------------

    def open_session(self, step: int = 0) -> int:
        return self.service.open_session(step)

    def close_session(self, session_id: int):
        return self.service.close_session(session_id)

    # -- requests ------------------------------------------------------------

    def stream(
        self,
        session_id: int,
        request: QueryRequest,
        *,
        step: int | None = None,
        ladder: tuple | None = None,
    ) -> AsyncStream:
        """Streaming request; raises
        :class:`~repro.serve.scheduler.AdmissionRejected` synchronously
        when the service is past its admission bounds."""
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        handle = self.service.stream(
            session_id,
            request,
            step=step,
            ladder=ladder,
            on_event=lambda: loop.call_soon_threadsafe(event.set),
        )
        return AsyncStream(handle, event)

    async def request(
        self, session_id: int, request: QueryRequest, *, step: int | None = None
    ) -> ServeResponse:
        """One-shot request awaited without parking a thread."""
        ticket = self.service.submit(session_id, request, step=step)
        loop = asyncio.get_running_loop()
        fut = loop.create_future()

        def on_done(_t, loop=loop, fut=fut):
            loop.call_soon_threadsafe(
                lambda: fut.done() or fut.set_result(None)
            )

        ticket.add_done_callback(on_done)
        await fut
        return ticket.result(0)

    async def snapshot(self) -> dict:
        return self.service.snapshot()

    async def aclose(self, *, cancel: bool = False) -> None:
        if self._owned:
            loop = asyncio.get_running_loop()
            # close() drains (or with cancel=True, sheds) the worker
            # pool — keep the event loop responsive while it does
            await loop.run_in_executor(
                None, lambda: self.service.close(cancel=cancel)
            )

    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()


async def _drive_session(
    aservice: AsyncQueryService,
    trace: list[TraceOp],
    step: int,
    report: LoadReport,
    sample_base: int,
    identity_sample_every: int,
    sem: asyncio.Semaphore | None,
) -> None:
    if sem is not None:
        await sem.acquire()
    try:
        sid = aservice.open_session(step)
        try:
            for op_index, op in enumerate(trace):
                req = QueryRequest(quality=op.quality, box=op.box, filters=op.filters)
                t0 = time.perf_counter()
                try:
                    stream = aservice.stream(sid, req)
                except AdmissionRejected:
                    report.requests += 1
                    report.rejected += 1
                    continue
                first = None
                async for _inc in stream:
                    if first is None:
                        first = time.perf_counter() - t0
                resp = await stream.result()
                dt = time.perf_counter() - t0
                # single event loop: no lock needed between sessions
                report.requests += 1
                report.latencies.append(dt)
                if first is not None:
                    report.ttfi.append(first)
                report.points += len(resp)
                report.nbytes += resp.batch.nbytes
                report.increments += resp.increments
                if resp.degraded:
                    report.degraded += 1
                if resp.cache_hit:
                    report.cache_hits += 1
                if resp.collapsed:
                    report.collapsed += 1
                if resp.shed:
                    report.shed += 1
                sample_slot = sample_base * 131 + op_index
                if (
                    sample_slot % identity_sample_every == 0
                    and len(resp)
                    and not resp.partial
                ):
                    report.identity_samples.append(
                        (
                            step,
                            op.box,
                            tuple(op.filters),
                            resp.prev_quality,
                            resp.served_quality,
                            _digest(resp.batch),
                        )
                    )
        finally:
            aservice.close_session(sid)
    finally:
        if sem is not None:
            sem.release()


def run_load_async(
    service: QueryService,
    traces: list[list[TraceOp]],
    identity_sample_every: int = 7,
    step: int = 0,
    max_concurrent_sessions: int | None = None,
) -> LoadReport:
    """Replay ``traces`` as concurrent asyncio sessions on one loop.

    The streaming analogue of :func:`repro.serve.loadgen.run_load`:
    every trace becomes one coroutine holding a progressive session and
    consuming streamed increments; all of them multiplex over the
    service's worker pool through a single event loop. The report's
    ``ttfi`` list records time-to-first-increment per request — the
    latency a progressive viewer actually perceives.
    """

    async def main() -> LoadReport:
        report = LoadReport()
        aservice = AsyncQueryService(service=service)
        sem = (
            asyncio.Semaphore(max_concurrent_sessions)
            if max_concurrent_sessions
            else None
        )
        t_start = time.perf_counter()
        await asyncio.gather(
            *(
                _drive_session(
                    aservice, trace, step, report, i, identity_sample_every, sem
                )
                for i, trace in enumerate(traces)
            )
        )
        report.elapsed_seconds = time.perf_counter() - t_start
        return report

    return asyncio.run(main())
