"""Shared TTL + LRU cache of query *results*, above the plan cache.

The serving cache hierarchy has three layers, cheapest miss first:

- **result cache** (this module) — whole :class:`~repro.types.ParticleBatch`
  responses keyed by ``(step, box, filters, prev_quality, quality,
  columns)``. A hit
  skips planning and traversal entirely. Entries expire after ``ttl``
  seconds (time-series data may be rewritten in place by a restarted
  simulation) and the least-recently-used entry is evicted past
  ``capacity``.
- **plan cache** (:class:`~repro.core.planner.PlanCache`) — per-file skip
  lists keyed by ``(box, filters)``; quality-independent.
- **file-handle cache** (:class:`~repro.bat.filecache.BATFileCache`) —
  open mmapped leaf files.

Because many interactive sessions look at the same hot views (a shared
dashboard, a default camera), one client's query pays the traversal and
every later identical request is served from memory — byte-identical by
construction, since the cached object *is* the batch a direct dataset
query returned. Batches are treated as immutable once cached; callers
must not write to a served batch's arrays.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from ..types import ParticleBatch

__all__ = ["ResultCache", "neighbor_result_key", "result_key"]


def result_key(
    step, box, filters, prev_quality: float, quality: float, columns=None,
    generation: int = 0,
) -> tuple:
    """The full identity of one progressive-increment response.

    ``prev_quality`` is part of the key: the increment ``0.3 → 0.7`` and
    the direct ``0 → 0.7`` read are different byte streams. ``columns``
    (the request's materialized-attribute selection, ``None`` for all) is
    part of the key too — the same traversal with fewer columns is a
    different payload. ``generation`` is the manifest's layout generation:
    an online reorganization republish changes row order (results follow
    file/treelet order), so responses cached against the old layout must
    never satisfy requests planned against the new one.
    """
    return (
        step, generation, box, tuple(filters), float(prev_quality),
        float(quality), None if columns is None else tuple(columns),
    )


def neighbor_result_key(step, request, generation: int = 0) -> tuple:
    """Cache identity of one neighbor-query response.

    The frozen :class:`~repro.api.NeighborRequest` *is* the identity —
    centers, k/radius, filters, columns, and engine are all hashed
    construction-time fields. ``step`` stays first so
    :meth:`ResultCache.invalidate_step` drops neighbor entries alongside
    query entries; the ``"neighbor"`` tag keeps the two families from
    ever colliding.
    """
    return (step, generation, "neighbor", request)


class ResultCache:
    """Thread-safe bounded LRU of query responses with TTL expiry."""

    def __init__(self, capacity: int = 256, ttl: float | None = 30.0, clock=time.monotonic):
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable expiry)")
        self.capacity = int(capacity)
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[ParticleBatch, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> ParticleBatch | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            batch, stored_at = entry
            if self.ttl is not None and self._clock() - stored_at > self.ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return batch

    def put(self, key: tuple, batch: ParticleBatch) -> None:
        with self._lock:
            self._entries[key] = (batch, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def invalidate_step(self, step) -> int:
        """Drop every entry for one step; returns how many were dropped.

        Belt-and-braces for reorganization republish: generation-qualified
        keys already prevent stale hits, and this eagerly frees the old
        generation's payload bytes instead of waiting for TTL/LRU.
        """
        with self._lock:
            victims = [k for k in self._entries if k[0] == step]
            for k in victims:
                del self._entries[k]
            return len(victims)

    @property
    def nbytes(self) -> int:
        """Payload bytes currently held (positions + attributes)."""
        with self._lock:
            return sum(b.nbytes for b, _ in self._entries.values())

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "ttl_seconds": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"ResultCache(entries={s['entries']}/{self.capacity}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )
