"""Adaptive quality degradation under load (the BAT layout's free knob).

The multiresolution layout makes response size a smooth function of the
quality parameter, so a loaded server has a graceful alternative to
queueing or rejection: serve *coarser* data now and let clients refine
when load drains. :class:`DegradationPolicy` turns the scheduler's load
factor — ``(queued + in_flight) / capacity`` — into a quality ceiling:

- load ``<= engage_at``: no ceiling (cap 1.0, full quality);
- load above ``engage_at``: the cap ramps linearly down, reaching
  ``min_quality`` at ``full_load`` — deeper backlog, coarser responses;
- hysteresis: once engaged, the cap only returns to 1.0 after load falls
  to ``release_at`` (< ``engage_at``), so a server hovering at the
  threshold does not flap between full and degraded service.

Correctness contract: degradation only lowers the quality *ceiling*; it
never rewrites what was already delivered. A degraded session later
refining to full quality receives exactly the increments a never-degraded
progressive session would — the convergence property tests in
``tests/test_serve.py`` pin this.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["DegradationConfig", "DegradationPolicy"]


@dataclass(frozen=True)
class DegradationConfig:
    """Tuning knobs for the load → quality-ceiling mapping."""

    #: load factor at/below which full quality is always served
    engage_at: float = 1.0
    #: load factor at which the ceiling bottoms out at ``min_quality``
    full_load: float = 3.0
    #: load factor the server must drain to before restoring full quality
    release_at: float = 0.5
    #: the coarsest quality the policy will ever serve
    min_quality: float = 0.25
    #: master switch (the viz wrapper disables degradation by default)
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.min_quality <= 1.0:
            raise ValueError("min_quality must be in (0, 1]")
        if self.release_at > self.engage_at:
            raise ValueError("release_at must be <= engage_at (hysteresis)")
        if self.full_load <= self.engage_at:
            raise ValueError("full_load must be > engage_at")


class DegradationPolicy:
    """Thread-safe load-tracking quality ceiling with hysteresis."""

    def __init__(self, config: DegradationConfig | None = None):
        self.config = config or DegradationConfig()
        self._lock = threading.Lock()
        self._cap = 1.0
        self._engaged = False
        self.engagements = 0
        self.releases = 0
        self.downgrades = 0

    @property
    def cap(self) -> float:
        with self._lock:
            return self._cap

    @property
    def engaged(self) -> bool:
        with self._lock:
            return self._engaged

    def _cap_for_load(self, load: float) -> float:
        cfg = self.config
        if load <= cfg.engage_at:
            return 1.0
        span = cfg.full_load - cfg.engage_at
        frac = min((load - cfg.engage_at) / span, 1.0)
        return 1.0 - frac * (1.0 - cfg.min_quality)

    def observe(self, load_factor: float) -> float:
        """Update the ceiling from a fresh load sample; returns the cap."""
        cfg = self.config
        if not cfg.enabled:
            return 1.0
        with self._lock:
            cap = self._cap_for_load(load_factor)
            if cap < 1.0:
                if not self._engaged:
                    self._engaged = True
                    self.engagements += 1
                self._cap = cap
            elif self._engaged:
                # engaged: require the drain watermark before restoring
                if load_factor <= cfg.release_at:
                    self._engaged = False
                    self.releases += 1
                    self._cap = 1.0
                # else: hold the last degraded cap (no flapping)
            else:
                self._cap = 1.0
            return self._cap

    def apply(self, requested_quality: float) -> tuple[float, bool]:
        """Clamp one request to the current ceiling.

        Returns ``(effective_quality, degraded)`` and counts the downgrade
        when the clamp actually lowered the request.
        """
        with self._lock:
            effective = min(requested_quality, self._cap)
            degraded = effective < requested_quality
            if degraded:
                self.downgrades += 1
            return effective, degraded

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.config.enabled,
                "cap": self._cap,
                "engaged": self._engaged,
                "engagements": self.engagements,
                "releases": self.releases,
                "downgrades": self.downgrades,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return f"DegradationPolicy(cap={s['cap']:.2f}, engaged={s['engaged']})"
