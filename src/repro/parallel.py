"""Pluggable execution layer for the I/O hot paths.

The paper's two-phase pipeline keeps every aggregator busy concurrently
(§IV–V); this module supplies the process-local analogue so the
reproduction's hot paths — per-aggregator BAT builds/writes, per-file
restart reads, and per-file dataset queries — actually overlap instead of
running in one Python thread.

Three executors share one tiny contract (:meth:`Executor.map` preserves
input order; results are deterministic regardless of completion order):

- ``serial`` — plain in-process loop, zero overhead, the default;
- ``thread`` — ``ThreadPoolExecutor``; wins when the work releases the GIL
  (numpy kernels, zlib, file writes) or is I/O bound;
- ``process`` — ``ProcessPoolExecutor``; wins for CPU-bound pure-Python
  work, at the cost of pickling tasks and results.

Executors are selected by *spec string* — ``"serial"``, ``"thread"``,
``"process"``, optionally suffixed with a worker count (``"thread:8"``,
``"process:4"``) — via config parameters, the CLI ``--executor`` flag, or
the ``REPRO_EXECUTOR`` environment variable. Everything downstream accepts
either a spec string or an :class:`Executor` instance, so a pool can be
built once and shared across many writes/queries — including across
threads: lazy pool construction and shutdown are lock-protected, so the
serve layer's scheduler workers can all fan out through one executor.

Parallel output is required to be *bit-identical* to serial output: tasks
are pure functions of their inputs and the merge points re-impose input
order, so the only nondeterminism a pool could introduce (completion
order) never reaches the results. ``tests/test_parallel.py`` enforces
this property.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "parse_executor_spec",
    "available_executors",
    "default_workers",
    "default_thread_workers",
    "EXECUTOR_ENV_VAR",
]

#: environment variable consulted when no executor is configured
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def default_workers() -> int:
    """Worker count used when a spec names no explicit count."""
    return max(os.cpu_count() or 1, 1)


def default_thread_workers() -> int:
    """Default size of the *thread* pool.

    Threads here exist to overlap I/O (fsync, page faults) with
    GIL-releasing compute, so the pool is sized past the core count —
    ``cpu + 4`` capped at 32, the same shape ``ThreadPoolExecutor`` uses —
    instead of ``cpu_count``. On a 1-core machine the old default built a
    1-worker pool: pure serial execution plus futures overhead, which is
    exactly the thread-slower-than-serial regression the write+query bench
    used to show.
    """
    return min(32, (os.cpu_count() or 1) + 4)


def available_executors() -> list[str]:
    return ["serial", "thread", "process"]


class Executor:
    """Ordered-map execution contract shared by all executors.

    ``map(fn, items)`` applies ``fn`` to every item and returns a list in
    input order — completion order never leaks. Executors are context
    managers; :meth:`close` is idempotent and the serial executor's is a
    no-op.
    """

    #: spec name ("serial", "thread", "process")
    kind = "serial"

    @property
    def workers(self) -> int:
        return 1

    def map(self, fn, items) -> list:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - overridden by pools
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """In-process loop; the deterministic reference all pools must match."""

    kind = "serial"

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Shared machinery for the concurrent.futures-backed executors."""

    _pool_cls: type = None  # set by subclasses
    _default_workers = staticmethod(default_workers)

    def __init__(self, workers: int | None = None):
        self._workers = int(workers) if workers else self._default_workers()
        if self._workers < 1:
            raise ValueError("executor worker count must be >= 1")
        self._pool = None
        self._pool_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self):
        # one executor may be shared by many serve-scheduler workers;
        # without the lock, racing first calls would each build a pool
        # and all but one would leak
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = self._pool_cls(max_workers=self._workers)
        return self._pool

    def map(self, fn, items) -> list:
        items = list(items)
        if len(items) <= 1:
            # pool startup isn't worth one task; also keeps empty maps cheap
            return [fn(item) for item in items]
        # concurrent.futures map() yields results in submission order, so
        # out-of-order completion cannot perturb the merge downstream.
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ThreadExecutor(_PoolExecutor):
    """Thread pool; best for GIL-releasing numpy/zlib/file work."""

    kind = "thread"
    _pool_cls = ThreadPoolExecutor
    _default_workers = staticmethod(default_thread_workers)


class ProcessExecutor(_PoolExecutor):
    """Process pool; tasks and results must be picklable."""

    kind = "process"
    _pool_cls = ProcessPoolExecutor

    def map(self, fn, items) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        # modest chunking amortizes IPC for large fan-outs without
        # sacrificing balance for small ones
        chunksize = max(1, len(items) // (4 * self._workers))
        return list(self._ensure_pool().map(fn, items, chunksize=chunksize))


def parse_executor_spec(spec: str) -> tuple[str, int | None]:
    """Split ``"kind[:workers]"`` into its parts, validating both."""
    kind, sep, count = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in available_executors():
        raise ValueError(
            f"unknown executor {kind!r}; available: {available_executors()}"
        )
    workers = None
    if sep:
        try:
            workers = int(count)
        except ValueError:
            raise ValueError(f"bad worker count in executor spec {spec!r}") from None
        if workers < 1:
            raise ValueError("executor worker count must be >= 1")
    if kind == "serial" and workers not in (None, 1):
        raise ValueError("the serial executor has exactly one worker")
    return kind, workers


def get_executor(spec=None) -> Executor:
    """Resolve a spec string, ``None``, or an :class:`Executor` instance.

    ``None`` falls back to ``$REPRO_EXECUTOR``, then to serial. Instances
    pass through untouched so callers can share one pool across calls.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR) or "serial"
    kind, workers = parse_executor_spec(str(spec))
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    return ProcessExecutor(workers)
