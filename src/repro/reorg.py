"""Telemetry-driven online layout reorganization (background rewriter).

The write path freezes the leaf layout at aggregation time, but the serve
tier records exactly which boxes, filters, and columns real sessions hit
(:class:`repro.serve.metrics.AccessTelemetry`). Following Wan et al.
(arXiv 2107.07108), this module closes the loop: it scores leaves hot or
cold from those tallies and rewrites the touched-but-misaligned ones into
query-aligned layouts —

- **carve**: leaves that recurring hot boxes only *partially* overlap are
  re-split along the observed box boundary; the inside points consolidate
  into dedicated hot leaf files (so hot queries open files whose every
  point matches) and each source leaf keeps a remainder file;
- **merge**: rarely-touched leaves coalesce into fewer files, cutting the
  per-query open/parse cost of broad sweeps over cold regions;
- **recodec**: frequently-opened leaves are rewritten with per-column
  codecs chosen by access frequency — hot columns decode-cheap (raw),
  cold columns size-cheap (zlib). Column *order* is only changed when a
  reorganization rewrites every leaf of a step: result attribute order
  follows file order, and mixed orders across one dataset's files would
  break batch concatenation (and byte-identity).

Every rewritten leaf is published under a **new, generation-qualified
file name** via :func:`repro.atomic.atomic_write_bytes`, and the manifest
republish bumps its layout ``generation`` counter. Old leaf files are
left in place (``remove_old`` garbage-collects them explicitly), so a
query in flight against the previous manifest keeps reading the exact
bytes it planned against: whichever generation a request observed, its
response is byte-identical to a direct query against that generation.
The serve tier reacts to the generation bump by invalidating its caches
coherently — see :meth:`repro.serve.service.QueryService.reload_step` and
:meth:`repro.serve.shard.ShardedQueryService.reload_step`.

By default every action is verified before the manifest is published:
the rewritten files are reopened and their full-quality particle
multiset compared byte-for-byte against the source leaves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .bat.builder import BATBuildConfig, build_bat
from .bat.file import BATFile
from .bat.query import query_file
from .bitmaps import remap_bitmap
from .core.metadata import DatasetMetadata, LeafMetadata
from .morton import encode_positions
from .types import Box, ParticleBatch

__all__ = [
    "ReorgAction",
    "ReorgConfig",
    "ReorgDaemon",
    "ReorgError",
    "ReorgReport",
    "apply_reorg",
    "plan_reorg",
    "reorganize",
]


class ReorgError(RuntimeError):
    """A reorganization could not be applied safely; nothing was published."""


@dataclass(frozen=True)
class ReorgConfig:
    """Thresholds and rewrite policy of one reorganization pass."""

    #: do nothing until at least this many queries back the evidence
    min_queries: int = 8
    #: a recurring box becomes carve evidence at this many observations
    min_box_queries: int = 4
    #: how many distinct hot boxes one pass may carve along
    max_hot_boxes: int = 4
    #: carve only leaves with at least this many points (tiny leaves are
    #: cheap to read whole; splitting them just multiplies files)
    carve_min_points: int = 512
    #: cap on points per carved hot file (larger hot regions chunk)
    max_hot_file_points: int = 1 << 18
    #: a leaf is "cold" when its opens fall at or below this fraction of
    #: the step's most-opened leaf
    cold_open_fraction: float = 0.25
    #: merged cold files stop growing at this many points
    merge_max_points: int = 1 << 18
    #: rewrite hot leaves' column codecs by access frequency
    recodec: bool = True
    #: a column is "hot" when touched in at least this fraction of queries
    hot_column_fraction: float = 0.5
    #: codec for frequently-read columns (decode-cheap)
    hot_codec: str = "raw"
    #: codec for rarely-read columns (size-cheap)
    cold_codec: str = "zlib"
    #: per-column codec policy of rewritten files: None keeps v3 raw
    #: columns, "auto" samples, or the frequency-driven mapping above
    codecs: str | None = "auto"
    #: re-read every rewritten file and verify its particle multiset is
    #: byte-identical to the source leaves before publishing the manifest
    verify: bool = True
    #: unlink replaced leaf files after the manifest republish. Off by
    #: default: readers of the previous generation may still be streaming
    #: from them (the serve tier's leases pin open handles, but a cold
    #: re-open of the old manifest needs the files on disk).
    remove_old: bool = False


@dataclass(frozen=True)
class ReorgAction:
    """One planned rewrite of a set of source leaves."""

    #: "carve", "merge", or "recodec"
    kind: str
    #: manifest leaf indices consumed by this action
    leaf_indices: tuple[int, ...]
    #: the observed hot box a carve splits along (None otherwise)
    hot_box: Box | None = None
    #: human-readable evidence ("opened 412x by 37 queries", ...)
    reason: str = ""

    def to_doc(self) -> dict:
        return {
            "kind": self.kind,
            "leaves": list(self.leaf_indices),
            "hot_box": (
                [list(self.hot_box.lower), list(self.hot_box.upper)]
                if self.hot_box is not None
                else None
            ),
            "reason": self.reason,
        }


@dataclass
class ReorgReport:
    """What one reorganization pass did."""

    step: int
    generation_from: int
    generation_to: int
    actions: list[ReorgAction] = field(default_factory=list)
    files_written: list[str] = field(default_factory=list)
    files_obsolete: list[str] = field(default_factory=list)
    files_removed: list[str] = field(default_factory=list)
    leaves_before: int = 0
    leaves_after: int = 0
    bytes_written: int = 0
    verified_points: int = 0
    duration_seconds: float = 0.0

    @property
    def changed(self) -> bool:
        return bool(self.actions)

    def to_doc(self) -> dict:
        return {
            "step": self.step,
            "generation_from": self.generation_from,
            "generation_to": self.generation_to,
            "actions": [a.to_doc() for a in self.actions],
            "files_written": list(self.files_written),
            "files_obsolete": list(self.files_obsolete),
            "files_removed": list(self.files_removed),
            "leaves_before": self.leaves_before,
            "leaves_after": self.leaves_after,
            "bytes_written": self.bytes_written,
            "verified_points": self.verified_points,
            "duration_seconds": self.duration_seconds,
        }


# -- planning ------------------------------------------------------------------


def _step_telemetry(telemetry: dict, step: int) -> dict:
    """The one-step slice of an AccessTelemetry snapshot (or merged doc)."""
    if telemetry is None:
        return {}
    steps = telemetry.get("steps", telemetry)
    return steps.get(str(step), steps.get(step, {})) or {}


def _leaf_opens(metadata: DatasetMetadata, tele: dict) -> np.ndarray:
    opens = np.zeros(len(metadata.leaves), dtype=np.int64)
    for leaf, tally in tele.get("leaves", {}).items():
        i = int(leaf)
        if 0 <= i < len(opens):
            opens[i] = int(tally.get("opens", 0))
    return opens


def plan_reorg(
    metadata: DatasetMetadata,
    telemetry: dict,
    step: int = 0,
    config: ReorgConfig | None = None,
) -> list[ReorgAction]:
    """Score leaves hot/cold against telemetry and plan rewrites.

    ``telemetry`` is an :meth:`AccessTelemetry.snapshot` document (or a
    router-merged one). Returns a possibly-empty list of actions; leaves
    appear in at most one action.
    """
    config = config or ReorgConfig()
    tele = _step_telemetry(telemetry, step)
    n_queries = sum(n for _, _, n in tele.get("boxes", []))
    if not tele or n_queries < config.min_queries:
        return []
    opens = _leaf_opens(metadata, tele)
    if not opens.any():
        return []
    actions: list[ReorgAction] = []
    claimed: set[int] = set()

    # carve along recurring hot boxes, hottest first
    boxes = [
        (Box(tuple(lo), tuple(hi)), int(n))
        for lo, hi, n in tele.get("boxes", [])
        if lo is not None and int(n) >= config.min_box_queries
    ]
    boxes.sort(key=lambda bn: -bn[1])
    for box, n in boxes[: config.max_hot_boxes]:
        carve = []
        for i, leaf in enumerate(metadata.leaves):
            if i in claimed or opens[i] == 0:
                continue
            if leaf.count < config.carve_min_points:
                continue
            # fully-inside leaves are already query-aligned; only leaves
            # the box cuts through pay for points they do not need
            if leaf.bounds.intersects(box) and not box.contains_box(leaf.bounds):
                carve.append(i)
        if not carve:
            continue
        claimed.update(carve)
        actions.append(
            ReorgAction(
                kind="carve",
                leaf_indices=tuple(carve),
                hot_box=box,
                reason=f"box seen {n}x cuts {len(carve)} leaves",
            )
        )

    # merge cold leaves (rarely opened relative to the hottest leaf),
    # grouped along the Morton curve so merged files keep tight bounds —
    # merging spatially scattered leaves would balloon the merged bounds
    # and defeat the manifest's box pruning
    max_opens = int(opens.max())
    cold_cut = max_opens * config.cold_open_fraction
    cold = [
        i
        for i in range(len(metadata.leaves))
        if i not in claimed and opens[i] <= cold_cut
    ]
    if len(cold) > 1:
        centers = np.array(
            [metadata.leaves[i].bounds.center for i in cold], dtype=np.float64
        )
        codes = encode_positions(centers, metadata.bounds)
        cold = [cold[j] for j in np.argsort(codes, kind="stable")]
    group: list[int] = []
    group_points = 0
    for i in cold:
        count = metadata.leaves[i].count
        if group and group_points + count > config.merge_max_points:
            if len(group) >= 2:
                claimed.update(group)
                actions.append(
                    ReorgAction(
                        kind="merge",
                        leaf_indices=tuple(group),
                        reason=f"opens <= {cold_cut:.1f} (max {max_opens})",
                    )
                )
            group, group_points = [], 0
        group.append(i)
        group_points += count
    if len(group) >= 2:
        claimed.update(group)
        actions.append(
            ReorgAction(
                kind="merge",
                leaf_indices=tuple(group),
                reason=f"opens <= {cold_cut:.1f} (max {max_opens})",
            )
        )

    # recodec the remaining hot leaves when column access is skewed
    if config.recodec:
        col_touches = tele.get("columns", {})
        if col_touches:
            hot_cols = {
                name
                for name, n in col_touches.items()
                if n >= config.hot_column_fraction * max(n_queries, 1)
            }
            all_cols = set(metadata.attr_dtypes) | {"positions"}
            if hot_cols and hot_cols != all_cols:
                for i in range(len(metadata.leaves)):
                    if i not in claimed and opens[i] > cold_cut:
                        actions.append(
                            ReorgAction(
                                kind="recodec",
                                leaf_indices=(i,),
                                reason=(
                                    f"hot columns {sorted(hot_cols)} of "
                                    f"{sorted(all_cols)}"
                                ),
                            )
                        )
                        claimed.add(i)
    return actions


# -- applying ------------------------------------------------------------------


def _read_leaf(directory: Path, leaf: LeafMetadata) -> ParticleBatch:
    """Full-quality read of one leaf file (transient handle, no cache)."""
    with BATFile(directory / leaf.file_name) as f:
        batch, _ = query_file(f, quality=1.0)
    return batch


def _canonical_rows(batch: ParticleBatch) -> bytes:
    """Order-independent byte identity of a batch's particle multiset."""
    cols = [np.ascontiguousarray(batch.positions[:, d]) for d in range(3)]
    names = sorted(batch.attributes)
    cols += [np.ascontiguousarray(batch.attributes[n]) for n in names]
    order = np.lexsort(tuple(reversed(cols)))
    return b"".join(np.ascontiguousarray(c[order]).tobytes() for c in cols)


def _codec_map(
    config: ReorgConfig, hot_cols: set[str] | None, file_cols: set[str]
):
    """The per-column codec spec for rewritten files."""
    if hot_cols is None or not config.recodec or config.codecs is None:
        # no frequency evidence (or v3 output requested): keep the
        # configured policy as-is
        return config.codecs
    # tree node records decode on every open regardless of the query:
    # always decode-cheap; everything unobserved defaults size-cheap
    spec: dict[str, str] = {"*": config.cold_codec, "nodes": config.hot_codec}
    for name in hot_cols & file_cols:
        spec[name] = config.hot_codec
    return spec


def _hot_columns(tele: dict, config: ReorgConfig) -> set[str] | None:
    col_touches = tele.get("columns", {})
    n_queries = sum(n for _, _, n in tele.get("boxes", []))
    if not col_touches or not n_queries:
        return None
    return {
        name
        for name, n in col_touches.items()
        if n >= config.hot_column_fraction * n_queries
    }


def _chunk(batch: ParticleBatch, max_points: int) -> list[ParticleBatch]:
    """Split a batch into spatially-sorted chunks of at most max_points."""
    n = len(batch)
    if n <= max_points:
        return [batch]
    pos = batch.positions
    order = np.lexsort((pos[:, 2], pos[:, 1], pos[:, 0]))
    pieces = []
    n_chunks = -(-n // max_points)
    for idx in np.array_split(order, n_chunks):
        pieces.append(
            ParticleBatch(
                pos[idx],
                {k: v[idx] for k, v in batch.attributes.items()},
            )
        )
    return pieces


def _complement_slabs(batch: ParticleBatch, box: Box) -> list[ParticleBatch]:
    """Partition points strictly outside ``box`` into up to 6 slabs.

    Slab ``2*axis`` holds points below the box on ``axis``, slab
    ``2*axis + 1`` points above it, considering only points not already
    claimed by an earlier axis. Every input point is strictly outside the
    (inclusive) box on at least one axis, so the slabs cover the batch —
    and each slab's tight bounds cannot intersect the box.
    """
    pos = batch.positions
    remaining = np.ones(len(batch), dtype=bool)
    slabs = []
    for axis in range(3):
        below = remaining & (pos[:, axis] < box.lower[axis])
        above = remaining & (pos[:, axis] > box.upper[axis])
        for m in (below, above):
            if m.any():
                slabs.append(_subset(batch, m))
        remaining &= ~(below | above)
    assert not remaining.any(), "point inside box reached complement split"
    return slabs


def _subset(batch: ParticleBatch, mask: np.ndarray) -> ParticleBatch:
    return ParticleBatch(
        batch.positions[mask],
        {k: v[mask] for k, v in batch.attributes.items()},
    )


def apply_reorg(
    manifest_path,
    actions,
    config: ReorgConfig | None = None,
    telemetry: dict | None = None,
    step: int = 0,
) -> ReorgReport:
    """Execute planned actions and atomically republish the manifest.

    Rewritten leaves land under new ``<stem>.g<generation>.r<k>.bat``
    names (each written via the atomic tmp+fsync+rename path); the
    manifest is republished last with ``generation + 1``, so a crash at
    any point leaves the previous generation fully intact and readable.
    Raises :class:`ReorgError` (publishing nothing) if verification finds
    any rewritten multiset differing from its sources.
    """
    t0 = time.perf_counter()
    config = config or ReorgConfig()
    manifest_path = Path(manifest_path)
    metadata = DatasetMetadata.load(manifest_path)
    directory = manifest_path.parent
    report = ReorgReport(
        step=step,
        generation_from=metadata.generation,
        generation_to=metadata.generation,
        actions=list(actions),
        leaves_before=len(metadata.leaves),
        leaves_after=len(metadata.leaves),
    )
    if not actions:
        report.duration_seconds = time.perf_counter() - t0
        return report

    new_gen = metadata.generation + 1
    stem = manifest_path.name.split(".")[0] or "reorg"
    hot_cols = _hot_columns(_step_telemetry(telemetry, step), config)
    attr_order = list(metadata.attr_dtypes)
    seen: set[int] = set()
    for action in actions:
        for i in action.leaf_indices:
            if i in seen:
                raise ReorgError(f"leaf {i} claimed by more than one action")
            if not 0 <= i < len(metadata.leaves):
                raise ReorgError(f"action names unknown leaf {i}")
            seen.add(i)

    # physical column reorder is only safe when every leaf is rewritten:
    # result attribute order follows file order, and one dataset must not
    # mix orders across files (batch concatenation requires agreement)
    reorder_all = (
        config.recodec
        and hot_cols is not None
        and len(seen) == len(metadata.leaves)
    )
    if reorder_all:
        attr_order = sorted(
            metadata.attr_dtypes,
            key=lambda n: (n not in hot_cols, n),
        )

    def _ordered(batch: ParticleBatch) -> ParticleBatch:
        attrs = {n: batch.attributes[n] for n in attr_order if n in batch.attributes}
        for n in batch.attributes:  # columns the manifest does not know
            attrs.setdefault(n, batch.attributes[n])
        return ParticleBatch(batch.positions, attrs)

    file_cols = {"nodes", "positions", *metadata.attr_dtypes}
    build_config = BATBuildConfig(codecs=_codec_map(config, hot_cols, file_cols))

    # Build every output file first; nothing is visible until the manifest
    # flips. outputs: position of the action's first source leaf -> list
    # of (file_name, BuiltBAT) so the new leaf list keeps spatial order.
    outputs: dict[int, list[tuple[str, object]]] = {}
    written: list[Path] = []
    file_seq = 0
    for action in actions:
        sources = [
            _read_leaf(directory, metadata.leaves[i]) for i in action.leaf_indices
        ]
        merged = (
            ParticleBatch.concatenate(sources) if len(sources) > 1 else sources[0]
        )
        if action.kind == "carve":
            mask = action.hot_box.contains_points(merged.positions)
            pieces = []
            if mask.any():
                pieces += _chunk(
                    _subset(merged, mask), config.max_hot_file_points
                )
            # the remainder is decomposed into axis-aligned complement
            # slabs: each slab lies strictly outside the hot box on its
            # defining axis, so the slab file's bounds never intersect
            # the box and the manifest prunes it from hot queries (a
            # plain per-source remainder would still wrap around the box)
            if not mask.all():
                for slab in _complement_slabs(
                    _subset(merged, ~mask), action.hot_box
                ):
                    pieces += _chunk(slab, config.merge_max_points)
        elif action.kind == "merge":
            pieces = _chunk(merged, config.merge_max_points)
        elif action.kind == "recodec":
            pieces = [merged]
        else:
            raise ReorgError(f"unknown action kind {action.kind!r}")

        built_pieces = []
        for piece in pieces:
            built = build_bat(_ordered(piece), build_config)
            name = f"{stem}.g{new_gen}.r{file_seq:04d}.bat"
            file_seq += 1
            built.write(directory / name)
            written.append(directory / name)
            report.bytes_written += built.nbytes
            built_pieces.append((name, built))

        if config.verify:
            rebuilt = []
            for name, _ in built_pieces:
                with BATFile(directory / name) as f:
                    b, _stats = query_file(f, quality=1.0, engine="recursive")
                rebuilt.append(b)
            got = _canonical_rows(ParticleBatch.concatenate(rebuilt))
            want = _canonical_rows(merged)
            if got != want:
                for path in written:
                    path.unlink(missing_ok=True)
                raise ReorgError(
                    f"{action.kind} of leaves {action.leaf_indices} does not "
                    "round-trip the particle multiset; manifest not published"
                )
            report.verified_points += len(merged)
        outputs[min(action.leaf_indices)] = built_pieces
        for i in action.leaf_indices:
            report.files_obsolete.append(metadata.leaves[i].file_name)

    # Splice the new leaf list: untouched leaves keep their relative
    # order, each action's outputs replace its first source leaf.
    new_leaves: list[LeafMetadata] = []
    attr_ranges = metadata.attr_ranges
    for i, leaf in enumerate(metadata.leaves):
        if i in seen:
            for name, built in outputs.pop(i, ()):
                new_leaves.append(
                    _built_leaf(name, built, leaf, attr_ranges)
                )
            continue
        new_leaves.append(leaf)
    if outputs:
        raise ReorgError("internal: unplaced reorg outputs")  # pragma: no cover
    for idx, leaf in enumerate(new_leaves):
        leaf.leaf_index = idx

    new_meta = DatasetMetadata(
        nranks=metadata.nranks,
        bounds=metadata.bounds,
        leaves=new_leaves,
        attr_ranges=dict(attr_ranges),
        # the aggregation tree indexes the old leaf set; a reorganized
        # manifest goes flat (readers fall back to the linear leaf scan)
        tree_nodes=[],
        inner_bitmaps=[],
        layout=metadata.layout,
        attr_dtypes={n: metadata.attr_dtypes[n] for n in attr_order}
        if metadata.attr_dtypes
        else {},
        generation=new_gen,
    )
    new_meta.save(manifest_path)
    report.generation_to = new_gen
    report.leaves_after = len(new_leaves)
    report.files_written = [p.name for p in written]
    if config.remove_old:
        for name in report.files_obsolete:
            path = directory / name
            if path.exists() and name not in report.files_written:
                path.unlink()
                report.files_removed.append(name)
    report.duration_seconds = time.perf_counter() - t0
    return report


def _built_leaf(
    name: str, built, source: LeafMetadata, global_ranges: dict
) -> LeafMetadata:
    """Manifest entry for one rewritten file (bitmaps on global ranges)."""
    global_bms = {}
    for attr, bm in built.root_bitmaps.items():
        glo, ghi = global_ranges.get(attr, built.attr_ranges[attr])
        binning = built.attr_binnings.get(attr)
        if binning is not None:
            global_bms[attr] = int(binning.remap_to_equiwidth(bm, glo, ghi))
        else:
            lo, hi = built.attr_ranges[attr]
            global_bms[attr] = int(remap_bitmap(bm, lo, hi, glo, ghi))
    return LeafMetadata(
        leaf_index=-1,  # renumbered after the splice
        file_name=name,
        bounds=built.bounds,
        count=built.n_points,
        nbytes=built.nbytes,
        aggregator=source.aggregator,
        rank_ids=list(source.rank_ids),
        attr_ranges=dict(built.attr_ranges),
        global_bitmaps=global_bms,
    )


def reorganize(
    manifest_path,
    telemetry: dict,
    step: int = 0,
    config: ReorgConfig | None = None,
) -> ReorgReport:
    """Plan and apply one reorganization pass over one step's manifest."""
    config = config or ReorgConfig()
    metadata = DatasetMetadata.load(manifest_path)
    actions = plan_reorg(metadata, telemetry, step=step, config=config)
    return apply_reorg(
        manifest_path, actions, config=config, telemetry=telemetry, step=step
    )


class ReorgDaemon:
    """Background loop: poll serve telemetry, rewrite, reload the service.

    Works against either a :class:`~repro.serve.service.QueryService` or a
    :class:`~repro.serve.shard.ShardedQueryService`; both expose
    ``reload_step`` and per-step manifests. Each tick runs one
    :func:`reorganize` pass per step and, when the layout changed, tells
    the service to swap in the new generation.
    """

    def __init__(
        self,
        service,
        config: ReorgConfig | None = None,
        interval: float = 30.0,
        steps=None,
    ):
        self.service = service
        self.config = config or ReorgConfig()
        self.interval = float(interval)
        self._steps = list(steps) if steps is not None else None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.reports: list[ReorgReport] = []

    def _telemetry(self) -> dict:
        svc = self.service
        if hasattr(svc, "telemetry_snapshot"):  # sharded router
            return svc.telemetry_snapshot()
        return svc.telemetry.snapshot()

    def run_once(self) -> list[ReorgReport]:
        """One reorganization pass over every step; returns its reports."""
        telemetry = self._telemetry()
        steps = self._steps if self._steps is not None else self.service.steps
        out = []
        for step in steps:
            manifest = self.service._step_manifests[step]
            report = reorganize(
                manifest, telemetry, step=step, config=self.config
            )
            if report.changed:
                self.service.reload_step(step)
            out.append(report)
        self.reports.extend(out)
        return out

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def loop():
            while not self._stop.wait(self.interval):
                try:
                    self.run_once()
                except ReorgError:
                    # a failed pass publishes nothing; keep serving and
                    # try again with fresher telemetry next tick
                    continue

        self._thread = threading.Thread(
            target=loop, name="reorg-daemon", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ReorgDaemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
