"""LogP-style cost models for the collectives the pipelines use.

The write pipeline uses a gather of (bounds, count) tuples to rank 0, a
scatter of aggregator assignments, and a final gather of root bitmaps
(§III-A, §III-D). The read pipeline ends with a nonblocking barrier
(§IV-B). All are modeled with standard binomial-tree formulas: ``log2(P)``
latency steps plus a bandwidth term at the root for rooted collectives.
"""

from __future__ import annotations

import math

from .network import NetworkSpec

__all__ = [
    "gather_time",
    "scatter_time",
    "bcast_time",
    "barrier_time",
    "reduce_time",
]


def _log2p(nranks: int) -> float:
    return math.log2(nranks) if nranks > 1 else 0.0


def _rank_bw(spec: NetworkSpec) -> float:
    """Bandwidth one rank sees when its node's NIC is fully shared."""
    return spec.node_bw / spec.ranks_per_node


def gather_time(nranks: int, bytes_per_rank: float, spec: NetworkSpec) -> float:
    """Gather of ``bytes_per_rank`` from every rank to the root.

    A binomial-tree gather forwards progressively larger payloads; the root
    ultimately ingests the full ``P * m`` bytes, which dominates for the
    small-message gathers in the pipeline.
    """
    total = nranks * bytes_per_rank
    return _log2p(nranks) * spec.latency + total / spec.node_bw


def scatter_time(nranks: int, bytes_per_rank: float, spec: NetworkSpec) -> float:
    """Scatter from the root; symmetric to gather."""
    return gather_time(nranks, bytes_per_rank, spec)


def bcast_time(nranks: int, nbytes: float, spec: NetworkSpec) -> float:
    """Binomial-tree broadcast of ``nbytes`` to every rank."""
    return _log2p(nranks) * (spec.latency + nbytes / spec.node_bw)


def reduce_time(nranks: int, nbytes: float, spec: NetworkSpec) -> float:
    """Binomial-tree reduction of an ``nbytes`` payload."""
    return bcast_time(nranks, nbytes, spec)


def barrier_time(nranks: int, spec: NetworkSpec) -> float:
    """Dissemination barrier: ``ceil(log2 P)`` latency rounds."""
    if nranks <= 1:
        return 0.0
    return math.ceil(math.log2(nranks)) * spec.latency
