"""Per-rank clocks and named-phase accounting.

A :class:`Timeline` tracks one float64 clock per virtual rank and records,
for every named phase, how much the *makespan* (max clock) advanced. The
phase records are what the breakdown figures (paper Figs 6, 10, 12) plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PhaseRecord", "Timeline"]


@dataclass
class PhaseRecord:
    """Makespan contribution of one pipeline phase."""

    name: str
    duration: float
    #: per-rank time spent inside the phase (0 for uninvolved ranks)
    per_rank: np.ndarray | None = None


@dataclass
class Timeline:
    """Clocks for ``nranks`` virtual ranks plus an ordered phase log."""

    nranks: int
    clocks: np.ndarray = field(init=False)
    phases: list[PhaseRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.clocks = np.zeros(self.nranks, dtype=np.float64)

    @property
    def elapsed(self) -> float:
        """Current makespan — what a barrier at this point would observe."""
        return float(self.clocks.max()) if self.nranks else 0.0

    def record(self, name: str, new_clocks: np.ndarray) -> PhaseRecord:
        """Adopt updated clocks and log the makespan delta as a phase."""
        new_clocks = np.asarray(new_clocks, dtype=np.float64)
        if new_clocks.shape != self.clocks.shape:
            raise ValueError("clock array shape changed")
        if (new_clocks < self.clocks - 1e-12).any():
            raise ValueError(f"phase {name!r} moved a clock backwards")
        before = self.elapsed
        per_rank = new_clocks - self.clocks
        self.clocks = new_clocks
        rec = PhaseRecord(name, self.elapsed - before, per_rank)
        self.phases.append(rec)
        return rec

    def add_uniform(self, name: str, duration: float) -> PhaseRecord:
        """Charge every rank the same duration (e.g. a collective)."""
        if duration < 0:
            raise ValueError("negative phase duration")
        return self.record(name, self.clocks + duration)

    def add_root(self, name: str, duration: float, root: int = 0) -> PhaseRecord:
        """Charge only ``root``, then synchronize others to it if behind.

        Models root-side serial work (e.g. the Aggregation Tree build) that
        every rank must wait on before the following scatter.
        """
        new = self.clocks.copy()
        new[root] += duration
        new = np.maximum(new, new[root])
        return self.record(name, new)

    def add_per_rank(self, name: str, durations: np.ndarray) -> PhaseRecord:
        """Charge each rank its own duration (e.g. local BAT builds)."""
        durations = np.asarray(durations, dtype=np.float64)
        if (durations < 0).any():
            raise ValueError("negative per-rank duration")
        return self.record(name, self.clocks + durations)

    def synchronize(self) -> None:
        """Barrier: align all clocks to the makespan (not logged as a phase)."""
        self.clocks[:] = self.elapsed

    def breakdown(self) -> dict[str, float]:
        """Total makespan contribution per phase name, merging repeats."""
        out: dict[str, float] = {}
        for rec in self.phases:
            out[rec.name] = out.get(rec.name, 0.0) + rec.duration
        return out
