"""Fat-tree network cost model for point-to-point transfer phases.

The aggregation transfer (paper §III-B) and read fetch (§IV-B) are bulk
point-to-point phases: many ranks send one message each to a much smaller
set of aggregators. On a full-bisection fat tree, the first-order limits are

1. *injection* — a rank shares its node's NIC with the other ranks on the
   node, so its outgoing bandwidth is ``node_bw / ranks_per_node`` while
   neighbours are also sending;
2. *in-cast* — an aggregator receiving from k senders is limited by its
   node's ingest bandwidth, shared with co-located aggregators;
3. *bisection* — the whole phase cannot move bytes faster than the network
   core allows.

Completion per rank is computed from these three terms plus a per-message
latency charge. Congestion from adversarial routing is not modeled; the
paper's machines both use (near-)full-bisection fat trees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkSpec", "Message", "transfer_phase"]


@dataclass(frozen=True)
class NetworkSpec:
    """Parameters of the interconnect.

    ``node_bw`` is the per-node NIC bandwidth in bytes/s, ``latency`` the
    per-message software+wire latency in seconds, ``ranks_per_node`` how many
    ranks share a NIC, and ``bisection_bw`` the aggregate core bandwidth in
    bytes/s (``inf`` for an ideal full-bisection fabric).
    """

    node_bw: float
    latency: float
    ranks_per_node: int
    bisection_bw: float = float("inf")

    def node_of(self, ranks: np.ndarray) -> np.ndarray:
        return np.asarray(ranks, dtype=np.int64) // self.ranks_per_node


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer of ``nbytes`` from ``src`` to ``dst``."""

    src: int
    dst: int
    nbytes: int


def transfer_phase(
    messages: list[Message],
    clocks: np.ndarray,
    spec: NetworkSpec,
) -> np.ndarray:
    """Advance per-rank clocks across a bulk point-to-point phase.

    Returns a new clock array. Self-messages (``src == dst``) are charged a
    memcpy at node bandwidth with no latency. Ranks not involved in any
    message keep their clock.
    """
    clocks = np.asarray(clocks, dtype=np.float64)
    new = clocks.copy()
    if not messages:
        return new

    srcs = np.array([m.src for m in messages], dtype=np.int64)
    dsts = np.array([m.dst for m in messages], dtype=np.int64)
    sizes = np.array([m.nbytes for m in messages], dtype=np.float64)
    remote = srcs != dsts

    nranks = len(clocks)
    out_bytes = np.bincount(srcs[remote], weights=sizes[remote], minlength=nranks)
    in_bytes = np.bincount(dsts[remote], weights=sizes[remote], minlength=nranks)
    n_in = np.bincount(dsts[remote], minlength=nranks).astype(np.float64)
    n_out = np.bincount(srcs[remote], minlength=nranks).astype(np.float64)

    # Node-level NIC sharing: bytes through each NIC in each direction.
    nodes_src = spec.node_of(np.arange(nranks))
    n_nodes = int(nodes_src.max()) + 1 if nranks else 0
    node_out = np.bincount(nodes_src, weights=out_bytes, minlength=n_nodes)
    node_in = np.bincount(nodes_src, weights=in_bytes, minlength=n_nodes)

    total_bytes = float(sizes[remote].sum())
    bisection_time = total_bytes / spec.bisection_bw if np.isfinite(spec.bisection_bw) else 0.0

    # A phase starts when every participant has arrived (nonblocking sends
    # are posted, but an aggregator cannot finish before the last sender
    # reaches the phase). Use the max clock of involved ranks as the common
    # start — conservative but matches the barrier-like structure of a
    # timestep write.
    involved = (out_bytes > 0) | (in_bytes > 0) | (n_in > 0)
    # Include self-message participants.
    for m in messages:
        if m.src == m.dst:
            involved[m.src] = True
    start = float(clocks[involved].max()) if involved.any() else float(clocks.max())

    # Per-rank duration: latency per posted message plus the slower of its
    # NIC-shared send and receive streams, floored by bisection.
    send_time = np.zeros(nranks)
    recv_time = np.zeros(nranks)
    nz = node_out > 0
    node_out_time = np.zeros(n_nodes)
    node_out_time[nz] = node_out[nz] / spec.node_bw
    nz = node_in > 0
    node_in_time = np.zeros(n_nodes)
    node_in_time[nz] = node_in[nz] / spec.node_bw
    send_time = node_out_time[nodes_src] * np.where(out_bytes > 0, 1.0, 0.0)
    recv_time = node_in_time[nodes_src] * np.where(in_bytes > 0, 1.0, 0.0)

    dur = spec.latency * (n_in + n_out) + np.maximum(send_time, recv_time)
    dur = np.where(involved, np.maximum(dur, bisection_time), 0.0)

    # Self-messages: local memcpy at node bandwidth.
    if (~remote).any():
        self_bytes = np.bincount(srcs[~remote], weights=sizes[~remote], minlength=nranks)
        dur += self_bytes / spec.node_bw

    new[involved] = start + dur[involved]
    return new
