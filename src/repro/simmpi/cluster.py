"""The :class:`VirtualCluster` facade used by the I/O pipelines.

A cluster is ``nranks`` virtual MPI ranks on a :class:`~repro.machines.MachineSpec`.
Pipelines express themselves as a sequence of named phases (collectives,
point-to-point transfers, per-rank compute, filesystem operations); the
cluster advances per-rank clocks through each phase and keeps the phase log
that the breakdown figures plot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from . import collectives
from .network import Message, transfer_phase
from .timeline import PhaseRecord, Timeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..machines import MachineSpec

__all__ = ["VirtualCluster"]


class VirtualCluster:
    """A virtual machine partition: ``nranks`` ranks with simulated time."""

    def __init__(self, nranks: int, machine: "MachineSpec", network_model: str = "phase"):
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        if network_model not in ("phase", "event"):
            raise ValueError("network_model must be 'phase' or 'event'")
        self.nranks = nranks
        self.machine = machine
        self.network_model = network_model
        self.timeline = Timeline(nranks)
        self._fs = machine.fs_model()

    # -- time accounting ---------------------------------------------------

    @property
    def elapsed(self) -> float:
        return self.timeline.elapsed

    @property
    def phases(self) -> list[PhaseRecord]:
        return self.timeline.phases

    def breakdown(self) -> dict[str, float]:
        return self.timeline.breakdown()

    # -- collectives ---------------------------------------------------------

    def gather_to_root(self, name: str, bytes_per_rank: float) -> None:
        self.timeline.synchronize()
        t = collectives.gather_time(self.nranks, bytes_per_rank, self.machine.network)
        self.timeline.add_uniform(name, t)

    def scatter_from_root(self, name: str, bytes_per_rank: float) -> None:
        self.timeline.synchronize()
        t = collectives.scatter_time(self.nranks, bytes_per_rank, self.machine.network)
        self.timeline.add_uniform(name, t)

    def bcast(self, name: str, nbytes: float) -> None:
        self.timeline.synchronize()
        t = collectives.bcast_time(self.nranks, nbytes, self.machine.network)
        self.timeline.add_uniform(name, t)

    def barrier(self, name: str = "barrier") -> None:
        t = collectives.barrier_time(self.nranks, self.machine.network)
        self.timeline.synchronize()
        self.timeline.add_uniform(name, t)

    # -- compute -------------------------------------------------------------

    def root_compute(self, name: str, seconds: float, root: int = 0) -> None:
        """Serial work on the root that everyone then waits for."""
        self.timeline.add_root(name, seconds, root=root)

    def compute(self, name: str, per_rank_seconds: np.ndarray) -> None:
        """Independent per-rank work (e.g. each aggregator's BAT build)."""
        self.timeline.add_per_rank(name, per_rank_seconds)

    # -- point-to-point -------------------------------------------------------

    def p2p(self, name: str, messages: list[Message]) -> None:
        if self.network_model == "event":
            from .eventsim import simulate_transfers

            new = simulate_transfers(messages, self.timeline.clocks, self.machine.network)
        else:
            new = transfer_phase(messages, self.timeline.clocks, self.machine.network)
        self.timeline.record(name, new)

    # -- filesystem ------------------------------------------------------------

    def write_independent(self, name: str, sizes_per_rank: np.ndarray, creates: int = 1) -> None:
        dur = self._fs.independent_write(np.asarray(sizes_per_rank, dtype=np.float64), creates)
        self.timeline.add_per_rank(name, dur)

    def read_independent(self, name: str, sizes_per_rank: np.ndarray, opens: int = 1) -> None:
        dur = self._fs.independent_read(np.asarray(sizes_per_rank, dtype=np.float64), opens)
        self.timeline.add_per_rank(name, dur)

    def retry_writes(self, name: str, extra_sizes_per_rank: np.ndarray, attempts: int = 1) -> None:
        """Charge re-publish attempts for damaged writes (fault injection)."""
        dur = self._fs.retry_write(
            np.asarray(extra_sizes_per_rank, dtype=np.float64), attempts
        )
        self.timeline.add_per_rank(name, dur)

    def write_shared(self, name: str, total_bytes: float, meta_factor: float = 1.0) -> None:
        self.timeline.synchronize()
        t = self._fs.shared_write(total_bytes, self.nranks, meta_factor)
        self.timeline.add_uniform(name, t)

    def read_shared(self, name: str, total_bytes: float, meta_factor: float = 1.0) -> None:
        self.timeline.synchronize()
        t = self._fs.shared_read(total_bytes, self.nranks, meta_factor)
        self.timeline.add_uniform(name, t)

    def root_small_write(self, name: str, nbytes: float, root: int = 0) -> None:
        self.timeline.add_root(name, self._fs.small_write(nbytes), root=root)

    def all_small_read(self, name: str, nbytes: float) -> None:
        self.timeline.synchronize()
        self.timeline.add_uniform(name, self._fs.small_read_all(nbytes, self.nranks))
