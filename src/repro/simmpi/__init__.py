"""Virtual MPI cluster substrate.

The paper runs on real MPI at 24k–43k cores; this environment has neither
an MPI runtime nor multiple cores. The substitute (DESIGN.md §2/§5) executes
the I/O pipelines *functionally* for real — every byte lands where MPI would
put it — while elapsed time is produced by first-order cost models:

- :mod:`repro.simmpi.network` — fat-tree point-to-point phase model,
- :mod:`repro.simmpi.collectives` — LogP-style collective costs,
- :mod:`repro.simmpi.timeline` — per-rank clocks and phase accounting,
- :mod:`repro.simmpi.cluster` — the :class:`VirtualCluster` facade.
"""

from .cluster import VirtualCluster
from .network import Message, NetworkSpec, transfer_phase
from .timeline import PhaseRecord, Timeline

__all__ = [
    "VirtualCluster",
    "Message",
    "NetworkSpec",
    "transfer_phase",
    "Timeline",
    "PhaseRecord",
]
