"""Discrete-event network simulation with max-min fair bandwidth sharing.

The closed-form phase model (:func:`repro.simmpi.network.transfer_phase`)
charges every rank an aggregate NIC-sharing term; it is fast and captures
the first-order limits, but it cannot represent *time-varying* contention —
e.g. a late sender enjoying an uncontended NIC after its neighbours
finished. This module provides the higher-fidelity alternative: flows
start when their sender's clock allows, every active flow receives its
max-min fair rate given the per-NIC capacities (progressive filling), and
time advances from flow event to flow event (start or completion),
re-solving the allocation at each.

Cost is O(events x NICs); use it for message patterns up to a few
thousand flows (aggregation at moderate scale, targeted studies) and the
phase model for the 43k-rank sweeps. ``VirtualCluster`` selects between
them via ``network_model``.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .network import Message, NetworkSpec

__all__ = ["simulate_transfers", "max_min_rates"]


def max_min_rates(
    flows: list[tuple[int, int]], capacities: dict[int, float]
) -> list[float]:
    """Max-min fair rates for flows over shared node capacities.

    Each flow is a (src_node, dst_node) pair consuming capacity at both
    endpoints (full duplex is modeled as separate tx/rx budgets by the
    caller via distinct keys). Progressive filling: repeatedly find the
    most-loaded resource, freeze its flows at the fair share, remove, and
    continue.
    """
    n = len(flows)
    rates = [0.0] * n
    remaining_cap = dict(capacities)
    active: set[int] = set(range(n))
    flow_users: dict[int, set[int]] = defaultdict(set)
    for i, (a, b) in enumerate(flows):
        flow_users[a].add(i)
        flow_users[b].add(i)

    while active:
        # fair share each resource could give its remaining active flows
        best_res, best_share = None, float("inf")
        for res, users in flow_users.items():
            live = users & active
            if not live:
                continue
            share = remaining_cap[res] / len(live)
            if share < best_share:
                best_res, best_share = res, share
        if best_res is None:
            break
        frozen = flow_users[best_res] & active
        for i in frozen:
            rates[i] = best_share
            active.discard(i)
            a, b = flows[i]
            remaining_cap[a] -= best_share
            remaining_cap[b] -= best_share
        remaining_cap[best_res] = 0.0
    return rates


def simulate_transfers(
    messages: list[Message],
    clocks: np.ndarray,
    spec: NetworkSpec,
) -> np.ndarray:
    """Event-driven counterpart of :func:`transfer_phase`.

    Each message becomes a flow that starts at its sender's clock, shares
    its source NIC's transmit budget and its destination NIC's receive
    budget max-min fairly with all concurrently active flows, and bumps the
    receiver's clock at completion (the sender's at the same instant — the
    rendezvous completes for both ends). Self-messages are local memcpys.
    """
    clocks = np.asarray(clocks, dtype=np.float64)
    new = clocks.copy()
    if not messages:
        return new

    node_of = spec.node_of(np.arange(len(clocks)))

    flows = []  # [remaining_bytes, src, dst, tx_key, rx_key, started]
    for m in messages:
        if m.src == m.dst:
            new[m.src] = max(new[m.src], clocks[m.src] + m.nbytes / spec.node_bw)
            continue
        flows.append(
            {
                "remaining": float(m.nbytes),
                "src": m.src,
                "dst": m.dst,
                "tx": ("tx", int(node_of[m.src])),
                "rx": ("rx", int(node_of[m.dst])),
                "start": float(clocks[m.src]) + spec.latency,
                "done": None,
            }
        )
    if not flows:
        return new

    # event loop: at each boundary (flow start or earliest completion under
    # current rates), advance remaining bytes and re-solve the allocation
    start_times = sorted({f["start"] for f in flows})
    t = start_times[0]
    pending = sorted(range(len(flows)), key=lambda i: flows[i]["start"], reverse=True)
    active: list[int] = []

    def capacities_for(live: list[int]) -> dict:
        caps: dict = {}
        for i in live:
            caps[flows[i]["tx"]] = spec.node_bw
            caps[flows[i]["rx"]] = spec.node_bw
        return caps

    guard = 0
    max_iter = 4 * len(flows) + 8
    while pending or active:
        guard += 1
        if guard > max_iter:  # pragma: no cover - safety net
            raise RuntimeError("event simulation failed to converge")
        while pending and flows[pending[-1]]["start"] <= t + 1e-15:
            active.append(pending.pop())
        if not active:
            t = flows[pending[-1]]["start"]
            continue

        pairs = [(flows[i]["tx"], flows[i]["rx"]) for i in active]
        rates = max_min_rates(pairs, capacities_for(active))

        # next event: earliest completion under these rates, or next start
        dt_complete = min(
            flows[i]["remaining"] / r if r > 0 else float("inf")
            for i, r in zip(active, rates)
        )
        dt_start = (
            flows[pending[-1]]["start"] - t if pending else float("inf")
        )
        dt = min(dt_complete, dt_start)
        for i, r in zip(active, rates):
            flows[i]["remaining"] -= r * dt
        t += dt
        finished = [i for i in active if flows[i]["remaining"] <= 1e-9]
        for i in finished:
            flows[i]["done"] = t
            active.remove(i)

    for f in flows:
        new[f["dst"]] = max(new[f["dst"]], f["done"])
        new[f["src"]] = max(new[f["src"]], f["done"])

    # bisection floor, as in the phase model: the whole phase cannot beat
    # the core's aggregate bandwidth
    if np.isfinite(spec.bisection_bw):
        total = sum(float(m.nbytes) for m in messages if m.src != m.dst)
        if total > 0:
            involved = sorted({m.src for m in messages} | {m.dst for m in messages})
            floor = float(clocks[involved].max()) + total / spec.bisection_bw
            for r in involved:
                new[r] = max(new[r], floor)
    return new
