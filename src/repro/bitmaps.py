"""Fixed-size (32-bit) binned bitmap indices for attribute filtering.

Each bitmap summarizes one attribute over a set of particles: bit *i* is set
iff some particle's value falls in bin *i* of 32 equal-width bins spanning a
reference value range. Following the paper, bitmaps are fixed at 32 bits so
they occupy predictable storage and can be deduplicated through a dictionary
addressed by 16-bit IDs (§III-C2/C3).

Bitmaps combine with bitwise OR (union of children) and test for overlap
with bitwise AND (query pruning). Because binning is conservative, a zero
AND proves the subtree holds no matching value (no false negatives); a
nonzero AND still requires a per-particle false-positive check (§V-A).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BITMAP_BITS",
    "FULL_BITMAP",
    "value_bins",
    "bitmap_of_values",
    "bitmaps_by_group",
    "query_bitmap",
    "remap_bitmap",
    "bitmap_bins",
    "BitmapDictionary",
]

BITMAP_BITS = 32
FULL_BITMAP = np.uint32(0xFFFFFFFF)


def value_bins(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Bin index in ``[0, 32)`` for each value relative to ``[lo, hi]``.

    Values outside the range clamp to the boundary bins; a degenerate range
    maps everything to bin 0.
    """
    values = np.asarray(values, dtype=np.float64)
    span = hi - lo
    if span <= 0:
        return np.zeros(values.shape, dtype=np.int64)
    bins = ((values - lo) * (BITMAP_BITS / span)).astype(np.int64)
    np.clip(bins, 0, BITMAP_BITS - 1, out=bins)
    return bins


def bitmap_of_values(values: np.ndarray, lo: float, hi: float) -> np.uint32:
    """Bitmap covering every value in the array."""
    values = np.asarray(values)
    if values.size == 0:
        return np.uint32(0)
    bins = value_bins(values, lo, hi)
    bits = np.bitwise_or.reduce(np.uint32(1) << bins.astype(np.uint32))
    return np.uint32(bits)


def bitmaps_by_group(
    values: np.ndarray, group_ids: np.ndarray, n_groups: int, lo: float, hi: float
) -> np.ndarray:
    """Per-group bitmaps computed in one vectorized pass.

    ``group_ids`` assigns each value to a group in ``[0, n_groups)``; the
    result is a uint32 array of length ``n_groups`` (zero for empty groups).
    This is the hot path of BAT leaf construction, so it avoids a Python
    loop over leaves by OR-reducing per (group, bin) pairs.
    """
    values = np.asarray(values)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    out = np.zeros(n_groups, dtype=np.uint32)
    if values.size == 0:
        return out
    bins = value_bins(values, lo, hi)
    # Unique (group, bin) pairs; OR the corresponding one-hot bits per group.
    keys = group_ids * BITMAP_BITS + bins
    uniq = np.unique(keys)
    np.bitwise_or.at(
        out,
        (uniq // BITMAP_BITS).astype(np.int64),
        (np.uint32(1) << (uniq % BITMAP_BITS).astype(np.uint32)),
    )
    return out


def query_bitmap(qlo: float, qhi: float, lo: float, hi: float) -> np.uint32:
    """Bitmap matching any value in ``[qlo, qhi]`` relative to ``[lo, hi]``.

    Sets every bin overlapping the query interval. A query disjoint from the
    reference range returns 0 (nothing can match); a degenerate reference
    range returns the full bitmap (no pruning possible).
    """
    if qhi < qlo:
        return np.uint32(0)
    span = hi - lo
    if span <= 0:
        return FULL_BITMAP
    if qhi < lo or qlo > hi:
        return np.uint32(0)
    first = int(np.clip(np.floor((qlo - lo) * BITMAP_BITS / span), 0, BITMAP_BITS - 1))
    last = int(np.clip(np.floor((qhi - lo) * BITMAP_BITS / span), 0, BITMAP_BITS - 1))
    count = last - first + 1
    if count >= BITMAP_BITS:
        return FULL_BITMAP
    return np.uint32(((1 << count) - 1) << first)


def bitmap_bins(bitmap: int) -> list[int]:
    """Indices of set bits, ascending."""
    return [i for i in range(BITMAP_BITS) if (int(bitmap) >> i) & 1]


def remap_bitmap(bitmap: int, lo: float, hi: float, glo: float, ghi: float) -> np.uint32:
    """Re-express a bitmap built against ``[lo, hi]`` relative to ``[glo, ghi]``.

    Used when rank 0 merges aggregator-local bitmaps into the global-range
    Aggregation Tree metadata (§III-D). Each set local bin's value interval
    is conservatively covered by the global bins it overlaps.
    """
    bitmap = int(bitmap)
    if bitmap == 0:
        return np.uint32(0)
    span = hi - lo
    if span <= 0:
        # All local values equal `lo`; they land in a single global bin.
        return query_bitmap(lo, lo, glo, ghi)
    out = np.uint32(0)
    width = span / BITMAP_BITS
    for b in bitmap_bins(bitmap):
        blo = lo + b * width
        bhi = blo + width
        out |= query_bitmap(blo, bhi, glo, ghi)
    return np.uint32(out)


class BitmapDictionary:
    """Deduplicates uint32 bitmaps behind 16-bit IDs (§III-C3).

    The compacted BAT file stores one dictionary per file and replaces every
    node bitmap with an index into it. 16-bit IDs cap the dictionary at 65536
    entries; :meth:`add` raises if a file somehow exceeds that (the paper
    found 65k "more than sufficient in practice", and our tests confirm
    typical files use a few hundred).
    """

    MAX_ENTRIES = 1 << 16

    def __init__(self) -> None:
        self._ids: dict[int, int] = {}
        self._bitmaps: list[int] = []

    def add(self, bitmap: int) -> int:
        """Intern a bitmap, returning its 16-bit ID."""
        key = int(bitmap)
        found = self._ids.get(key)
        if found is not None:
            return found
        if len(self._bitmaps) >= self.MAX_ENTRIES:
            raise OverflowError("bitmap dictionary exceeded 65536 unique entries")
        idx = len(self._bitmaps)
        self._ids[key] = idx
        self._bitmaps.append(key)
        return idx

    def add_many(self, bitmaps: np.ndarray) -> np.ndarray:
        """Intern an array of bitmaps, returning uint16 IDs.

        Equivalent to calling :meth:`add` element by element (IDs are
        assigned in first-occurrence order, so files stay byte-identical),
        but dedups through one vectorized ``np.unique`` pass so only the
        handful of distinct bitmaps touch the Python dict.
        """
        flat = np.asarray(bitmaps).ravel()
        if flat.size == 0:
            return np.empty(0, dtype=np.uint16)
        vals, first, inv = np.unique(flat, return_index=True, return_inverse=True)
        ids = np.empty(len(vals), dtype=np.uint16)
        for j in np.argsort(first, kind="stable"):
            ids[j] = self.add(int(vals[j]))
        return ids[inv]

    def __len__(self) -> int:
        return len(self._bitmaps)

    def __getitem__(self, idx: int) -> int:
        return self._bitmaps[idx]

    def as_array(self) -> np.ndarray:
        return np.array(self._bitmaps, dtype=np.uint32)

    @staticmethod
    def from_array(arr: np.ndarray) -> "BitmapDictionary":
        d = BitmapDictionary()
        for v in np.asarray(arr, dtype=np.uint32):
            d.add(int(v))
        return d
