"""Adjustable Uniform Grid (AUG) aggregation — Kumar et al., ICPP 2019.

The prior state of the art the paper compares against (§VI-A2). A uniform
grid is fit to the data bounds; the number of cells is chosen from the
target file size *assuming a uniform particle density*; ranks map to the
cell containing their center; empty cells are discarded. Because cells have
equal volume rather than equal particle counts, clustered distributions
produce badly imbalanced aggregation groups — exactly the behaviour Figs
9–12 quantify.

The plan object exposes the same ``leaves`` interface as the adaptive
:class:`~repro.core.aggtree.AggregationTree`, so it plugs into the same
two-phase writer (the paper implemented AUG "within our library to provide
a direct algorithmic comparison").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.aggtree import AggLeaf
from ..types import Box

__all__ = ["AUGPlan", "build_aug_plan"]


@dataclass
class AUGPlan:
    """Flat aggregation plan produced by the uniform grid."""

    leaves: list[AggLeaf] = field(default_factory=list)
    grid_dims: tuple[int, int, int] = (1, 1, 1)
    data_bounds: Box = field(default_factory=Box.empty)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def query_box(self, box: Box) -> list[int]:
        return [l.leaf_index for l in self.leaves if l.bounds.intersects(box)]

    def file_sizes(self) -> np.ndarray:
        return np.array([l.nbytes for l in self.leaves], dtype=np.int64)

    def imbalance(self) -> float:
        counts = np.array([l.count for l in self.leaves], dtype=np.float64)
        if len(counts) == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())


def _choose_grid_dims(extents: np.ndarray, n_cells: int) -> tuple[int, int, int]:
    """Integer grid dims with product >= n_cells, proportional to extents.

    Greedy: grow the axis whose per-cell extent is currently largest, so
    cells stay near-cubic in the data's aspect ratio.
    """
    dims = np.ones(3, dtype=np.int64)
    ext = np.where(extents > 0, extents, 0.0)
    if not (ext > 0).any():
        return (1, 1, 1)
    while int(np.prod(dims)) < n_cells:
        per_cell = np.where(ext > 0, ext / dims, -1.0)
        dims[int(np.argmax(per_cell))] += 1
    return tuple(int(d) for d in dims)


def build_aug_plan(
    rank_bounds: np.ndarray,
    rank_counts: np.ndarray,
    bytes_per_particle: float,
    target_size: int,
) -> AUGPlan:
    """Build the AUG aggregation groups.

    Matches the paper's description of Kumar et al.: the grid is sized so
    the *average* cell holds ``target_size`` bytes (uniform-density
    assumption), fit to the bounds of the ranks that have particles, and
    empty regions of the grid are discarded.
    """
    rank_bounds = np.asarray(rank_bounds, dtype=np.float64).reshape(-1, 2, 3)
    rank_counts = np.asarray(rank_counts, dtype=np.int64)
    if target_size <= 0:
        raise ValueError("target_size must be positive")

    members = np.nonzero(rank_counts > 0)[0]
    plan = AUGPlan()
    if len(members) == 0:
        return plan

    lo = rank_bounds[members, 0, :].min(axis=0)
    hi = rank_bounds[members, 1, :].max(axis=0)
    data_bounds = Box(tuple(lo.tolist()), tuple(hi.tolist()))
    total_bytes = float(rank_counts[members].sum() * bytes_per_particle)
    n_cells = max(1, int(np.ceil(total_bytes / target_size)))
    dims = np.array(_choose_grid_dims(hi - lo, n_cells), dtype=np.int64)

    # Map each member rank to the grid cell containing its center.
    centers = (rank_bounds[members, 0, :] + rank_bounds[members, 1, :]) * 0.5
    ext = np.where(hi > lo, hi - lo, 1.0)
    cell = ((centers - lo) / ext * dims).astype(np.int64)
    np.clip(cell, 0, dims - 1, out=cell)
    flat = (cell[:, 0] * dims[1] + cell[:, 1]) * dims[2] + cell[:, 2]

    leaves: list[AggLeaf] = []
    for cell_id in np.unique(flat):
        sel = members[flat == cell_id]
        count = int(rank_counts[sel].sum())
        blo = rank_bounds[sel, 0, :].min(axis=0)
        bhi = rank_bounds[sel, 1, :].max(axis=0)
        leaf = AggLeaf(
            node_id=len(leaves),
            rank_ids=np.sort(sel),
            count=count,
            nbytes=int(count * bytes_per_particle),
            bounds=Box(tuple(blo.tolist()), tuple(bhi.tolist())),
            leaf_index=len(leaves),
        )
        leaves.append(leaf)

    plan.leaves = leaves
    plan.grid_dims = tuple(int(d) for d in dims)
    plan.data_bounds = data_bounds
    return plan
