"""Baseline I/O strategies the paper compares against.

- :mod:`repro.baselines.aug` — the adjustable-uniform-grid aggregation of
  Kumar et al. (ICPP 2019), reimplemented inside this library exactly as
  the paper did for a direct algorithmic comparison;
- :mod:`repro.baselines.fpp` — file-per-process writes/reads;
- :mod:`repro.baselines.shared` — single-shared-file (MPI-IO collective)
  and HDF5-style writes/reads;
- :mod:`repro.baselines.ior` — an IOR-style synthetic benchmark facade
  producing the reference curves of Figs 5 and 7.
"""

from .aug import AUGPlan, build_aug_plan
from .fpp import FilePerProcessReader, FilePerProcessWriter
from .ior import IORResult, ior_benchmark
from .shared import SharedFileReader, SharedFileWriter

__all__ = [
    "AUGPlan",
    "build_aug_plan",
    "FilePerProcessWriter",
    "FilePerProcessReader",
    "SharedFileWriter",
    "SharedFileReader",
    "ior_benchmark",
    "IORResult",
]
