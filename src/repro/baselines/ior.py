"""IOR-style synthetic reference benchmark (Shan et al., SC'08).

The paper compares its two-phase writes against IOR runs "on an equivalent
amount of data" in file-per-process, single-shared-file (MPI-IO), and HDF5
shared modes (§VI-A1). This facade drives the same filesystem models with
IOR's access pattern — every rank reads/writes one contiguous block of the
given size — and reports bandwidth, giving the reference curves of
Figs 5 and 7 without materializing any data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machines import MachineSpec
from ..simmpi import VirtualCluster

__all__ = ["IORResult", "ior_benchmark", "IOR_MODES"]

IOR_MODES = ("fpp", "shared", "hdf5")


@dataclass(frozen=True)
class IORResult:
    """One IOR data point."""

    mode: str
    nranks: int
    block_bytes: float
    write_seconds: float
    read_seconds: float

    @property
    def total_bytes(self) -> float:
        return self.nranks * self.block_bytes

    @property
    def write_bandwidth(self) -> float:
        return self.total_bytes / self.write_seconds if self.write_seconds else 0.0

    @property
    def read_bandwidth(self) -> float:
        return self.total_bytes / self.read_seconds if self.read_seconds else 0.0


def ior_benchmark(machine: MachineSpec, nranks: int, block_bytes: float, mode: str) -> IORResult:
    """Run one IOR configuration against the machine's cost models."""
    if mode not in IOR_MODES:
        raise ValueError(f"mode must be one of {IOR_MODES}, got {mode!r}")
    if nranks <= 0 or block_bytes <= 0:
        raise ValueError("nranks and block_bytes must be positive")

    sizes = np.full(nranks, float(block_bytes))
    total = float(nranks * block_bytes)

    wc = VirtualCluster(nranks, machine)
    rc = VirtualCluster(nranks, machine)
    if mode == "fpp":
        wc.write_independent("write", sizes, creates=1)
        rc.read_independent("read", sizes, opens=1)
    else:
        meta = 2.5 if mode == "hdf5" else 1.0
        wc.write_shared("write", total, meta_factor=meta)
        rc.read_shared("read", total, meta_factor=meta)

    return IORResult(
        mode=mode,
        nranks=nranks,
        block_bytes=block_bytes,
        write_seconds=wc.elapsed,
        read_seconds=rc.elapsed,
    )
