"""File-per-process baseline.

The simplest unstructured strategy (§II-A): every rank dumps its particle
arrays into its own file, with no aggregation, no spatial organization, and
no metadata beyond the file naming convention. Performs well at small scale
and collapses under metadata pressure as the file count grows — the
reference curve of Figs 5 and 7.

Functional mode writes flat ``.npz`` files (positions plus one array per
attribute), deliberately mirroring the "flat arrays without metadata or
hierarchies" output the paper's introduction criticizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.rankdata import RankData
from ..machines import MachineSpec
from ..simmpi import VirtualCluster
from ..types import ParticleBatch

__all__ = ["FilePerProcessWriter", "FilePerProcessReader", "FPPReport"]


@dataclass
class FPPReport:
    elapsed: float
    breakdown: dict[str, float]
    total_bytes: float
    n_files: int

    @property
    def bandwidth(self) -> float:
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0


def rank_file_name(name: str, rank: int) -> str:
    return f"{name}.rank{rank:06d}.npz"


class FilePerProcessWriter:
    """Each rank writes its own flat file."""

    def __init__(self, machine: MachineSpec):
        self.machine = machine

    def write(self, data: RankData, out_dir=None, name: str = "timestep") -> FPPReport:
        cluster = VirtualCluster(data.nranks, self.machine)
        sizes = data.counts.astype(np.float64) * data.bytes_per_particle
        cluster.write_independent("write files", sizes, creates=1)

        if data.materialized and out_dir is not None:
            out_dir = Path(out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            for r, batch in enumerate(data.batches):
                if len(batch) == 0:
                    continue
                np.savez(
                    out_dir / rank_file_name(name, r),
                    positions=batch.positions,
                    **batch.attributes,
                )
        return FPPReport(
            elapsed=cluster.elapsed,
            breakdown=cluster.breakdown(),
            total_bytes=data.total_bytes,
            n_files=int((data.counts > 0).sum()),
        )


class FilePerProcessReader:
    """Restart read of file-per-process output.

    Assumes the reading job uses the same decomposition as the writer (the
    strategy's key portability weakness); rank *r* reads file
    ``(r + shift) mod R`` so benchmarks can avoid the writer's page cache,
    as the paper's methodology does.
    """

    def __init__(self, machine: MachineSpec):
        self.machine = machine

    def read(
        self, nranks: int, sizes: np.ndarray, in_dir=None, name: str = "timestep", shift: int = 0
    ) -> tuple[FPPReport, list[ParticleBatch] | None]:
        sizes = np.asarray(sizes, dtype=np.float64)
        if len(sizes) != nranks:
            raise ValueError("one size per reading rank required")
        cluster = VirtualCluster(nranks, self.machine)
        read_sizes = np.roll(sizes, -shift)
        cluster.read_independent("read files", read_sizes, opens=1)

        batches = None
        if in_dir is not None:
            in_dir = Path(in_dir)
            batches = []
            for r in range(nranks):
                src = (r + shift) % nranks
                path = in_dir / rank_file_name(name, src)
                if not path.exists():
                    batches.append(ParticleBatch.empty())
                    continue
                with np.load(path) as z:
                    attrs = {k: z[k] for k in z.files if k != "positions"}
                    batches.append(ParticleBatch(z["positions"], attrs))
        report = FPPReport(
            elapsed=cluster.elapsed,
            breakdown=cluster.breakdown(),
            total_bytes=float(read_sizes.sum()),
            n_files=int((read_sizes > 0).sum()),
        )
        return report, batches
