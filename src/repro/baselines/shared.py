"""Single-shared-file baselines (MPI-IO collective and HDF5-style).

All ranks write one file. The collective buffering / extent-lock coupling
charges a per-writer cost that grows linearly with the job, and on Lustre
the file's stripe width caps its bandwidth — the mechanisms behind the
flat shared-file curves of Figs 5 and 7. The HDF5 mode pays an extra
metadata factor for its collective metadata operations (dataset extents,
attribute tables), which is why IOR's HDF5 mode trails plain MPI-IO.

Functional mode writes one ``.npz`` with concatenated arrays plus the
per-rank offsets index — the unstructured single-file layout common in
practice (e.g. H5hut-style particle storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.rankdata import RankData
from ..machines import MachineSpec
from ..simmpi import VirtualCluster
from ..types import ParticleBatch

__all__ = ["SharedFileWriter", "SharedFileReader", "SharedReport", "HDF5_META_FACTOR"]

#: extra metadata-collective cost of the HDF5 shared mode vs plain MPI-IO
HDF5_META_FACTOR = 2.5


@dataclass
class SharedReport:
    elapsed: float
    breakdown: dict[str, float]
    total_bytes: float

    @property
    def bandwidth(self) -> float:
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0


class SharedFileWriter:
    """All ranks collectively write one shared file."""

    def __init__(self, machine: MachineSpec, hdf5: bool = False):
        self.machine = machine
        self.meta_factor = HDF5_META_FACTOR if hdf5 else 1.0

    def write(self, data: RankData, out_path=None) -> SharedReport:
        cluster = VirtualCluster(data.nranks, self.machine)
        cluster.write_shared("shared write", data.total_bytes, meta_factor=self.meta_factor)

        if data.materialized and out_path is not None:
            out_path = Path(out_path)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            whole = ParticleBatch.concatenate(data.batches)
            offsets = np.concatenate([[0], np.cumsum(data.counts)])
            np.savez(
                out_path,
                positions=whole.positions,
                rank_offsets=offsets,
                **whole.attributes,
            )
        return SharedReport(
            elapsed=cluster.elapsed,
            breakdown=cluster.breakdown(),
            total_bytes=data.total_bytes,
        )


class SharedFileReader:
    """Collective read of a shared file (each rank its slice)."""

    def __init__(self, machine: MachineSpec, hdf5: bool = False):
        self.machine = machine
        self.meta_factor = HDF5_META_FACTOR if hdf5 else 1.0

    def read(
        self, nranks: int, total_bytes: float, in_path=None, shift: int = 0
    ) -> tuple[SharedReport, list[ParticleBatch] | None]:
        cluster = VirtualCluster(nranks, self.machine)
        cluster.read_shared("shared read", total_bytes, meta_factor=self.meta_factor)

        batches = None
        if in_path is not None:
            with np.load(in_path) as z:
                offsets = z["rank_offsets"]
                pos = z["positions"]
                attrs = {k: z[k] for k in z.files if k not in ("positions", "rank_offsets")}
            writers = len(offsets) - 1
            batches = []
            for r in range(nranks):
                src = (r + shift) % writers
                sl = slice(int(offsets[src]), int(offsets[src + 1]))
                batches.append(
                    ParticleBatch(pos[sl], {k: v[sl] for k, v in attrs.items()})
                )
        report = SharedReport(
            elapsed=cluster.elapsed,
            breakdown=cluster.breakdown(),
            total_bytes=total_bytes,
        )
        return report, batches
