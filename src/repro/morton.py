"""Vectorized 3D Morton (Z-order) codes.

Positions are quantized to a ``bits``-per-axis integer grid over a bounding
box and interleaved into 3*bits-bit codes held in uint64. The default of 21
bits per axis yields 63-bit codes, the maximum that fits a uint64.

The BAT shallow-tree build (:mod:`repro.bat.build`) keys off *subprefixes*
of these codes, so the encoding must be deterministic and monotone per axis.
"""

from __future__ import annotations

import numpy as np

from .types import Box

__all__ = [
    "MAX_BITS",
    "encode_positions",
    "encode_grid",
    "decode_grid",
    "morton_cell_box",
]

MAX_BITS = 21

# Magic numbers for 21-bit "part1by2" spreading (x -> bits at positions 3i).
_MASKS = (
    np.uint64(0x1FFFFF),
    np.uint64(0x1F00000000FFFF),
    np.uint64(0x1F0000FF0000FF),
    np.uint64(0x100F00F00F00F00F),
    np.uint64(0x10C30C30C30C30C3),
    np.uint64(0x1249249249249249),
)
_SHIFTS = (32, 16, 8, 4, 2)


def _part1by2(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each uint64 so bit i lands at bit 3i."""
    v = v & _MASKS[0]
    for mask, shift in zip(_MASKS[1:], _SHIFTS):
        v = (v | (v << np.uint64(shift))) & mask
    return v


def _compact1by2(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    v = v & _MASKS[5]
    for mask, shift in zip(reversed(_MASKS[:5]), reversed(_SHIFTS)):
        v = (v | (v >> np.uint64(shift))) & mask
    return v


def encode_grid(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray, bits: int = MAX_BITS) -> np.ndarray:
    """Interleave integer grid coordinates into Morton codes.

    Coordinates must already lie in ``[0, 2**bits)``.
    """
    if not 1 <= bits <= MAX_BITS:
        raise ValueError(f"bits must be in [1, {MAX_BITS}], got {bits}")
    ix = np.asarray(ix, dtype=np.uint64)
    iy = np.asarray(iy, dtype=np.uint64)
    iz = np.asarray(iz, dtype=np.uint64)
    return (_part1by2(iz) << np.uint64(2)) | (_part1by2(iy) << np.uint64(1)) | _part1by2(ix)


def decode_grid(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover ``(ix, iy, iz)`` grid coordinates from Morton codes."""
    codes = np.asarray(codes, dtype=np.uint64)
    ix = _compact1by2(codes)
    iy = _compact1by2(codes >> np.uint64(1))
    iz = _compact1by2(codes >> np.uint64(2))
    return ix, iy, iz


def encode_positions(positions: np.ndarray, bounds: Box, bits: int = MAX_BITS) -> np.ndarray:
    """Quantize ``(N, 3)`` positions inside ``bounds`` and Morton-encode them.

    Points exactly on the upper boundary map to the last grid cell. The
    mapping is monotone per axis, so sorting by code groups spatial
    neighbours.
    """
    pts = np.asarray(positions, dtype=np.float64).reshape(-1, 3)
    if len(pts) == 0:
        return np.empty(0, dtype=np.uint64)
    if bounds.is_empty:
        raise ValueError("cannot Morton-encode against an empty bounding box")
    lo = np.asarray(bounds.lower)
    ext = bounds.extents
    # Degenerate axes (zero extent) quantize everything to cell 0.
    scale = np.where(ext > 0, (2**bits) / np.where(ext > 0, ext, 1.0), 0.0)
    cells = ((pts - lo) * scale).astype(np.int64)
    np.clip(cells, 0, 2**bits - 1, out=cells)
    return encode_grid(cells[:, 0], cells[:, 1], cells[:, 2], bits=bits)


def morton_cell_box(code_prefix: int, prefix_bits: int, bounds: Box, bits: int = MAX_BITS) -> Box:
    """Spatial box covered by all codes sharing a leading ``prefix_bits`` prefix.

    ``code_prefix`` holds the prefix in the *low* bits (i.e. the full code
    right-shifted by ``3*bits - prefix_bits``). Used to map shallow-tree
    leaves back to space. ``prefix_bits`` must be a multiple of 3.
    """
    if prefix_bits % 3 != 0:
        raise ValueError("prefix_bits must be a multiple of 3")
    levels = prefix_bits // 3
    code = np.uint64(int(code_prefix) << (3 * (bits - levels)))
    ix, iy, iz = decode_grid(np.array([code], dtype=np.uint64))
    cell = np.array([ix[0], iy[0], iz[0]], dtype=np.float64) / (2**bits)
    size = 1.0 / (2**levels) if levels > 0 else 1.0
    lo = np.asarray(bounds.lower)
    ext = np.where(bounds.extents > 0, bounds.extents, 1.0)
    lower = lo + cell * ext
    upper = lower + size * ext
    return Box(tuple(lower.tolist()), tuple(upper.tolist()))
