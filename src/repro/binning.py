"""Attribute binning schemes behind the 32-bit bitmap indices.

The paper uses equi-width bins over the aggregator-local value range and
names "more advanced binning schemes [Wu et al., 'Breaking the Curse of
Cardinality on Bitmap Indexes']" as the fix for attributes whose
distribution defeats equi-width bins (§VII). This module provides both:

- :class:`EquiWidthBinning` — 32 equal-width bins over ``[lo, hi]`` (the
  paper's default);
- :class:`EquiDepthBinning` — 32 equal-*population* bins at the value
  quantiles, so heavily skewed attributes still spread across all bits.

Both expose the same operations (bin assignment, bitmap construction,
query-bitmap computation, remapping to a global equi-width reference), so
the BAT builder and query engine are scheme-agnostic.
"""

from __future__ import annotations

import numpy as np

from .bitmaps import (
    BITMAP_BITS,
    FULL_BITMAP,
    bitmap_bins,
    bitmap_of_values,
    bitmaps_by_group,
    query_bitmap,
    remap_bitmap,
    value_bins,
)

__all__ = [
    "EquiWidthBinning",
    "EquiDepthBinning",
    "make_binning",
    "BINNING_EQUIWIDTH",
    "BINNING_EQUIDEPTH",
]

#: on-disk codes for the binning kind (BAT attribute table)
BINNING_EQUIWIDTH = 0
BINNING_EQUIDEPTH = 1


class EquiWidthBinning:
    """32 equal-width bins over ``[lo, hi]`` (paper §III-C2)."""

    kind = BINNING_EQUIWIDTH

    def __init__(self, lo: float, hi: float):
        self.lo = float(lo)
        self.hi = float(hi)

    def bins(self, values: np.ndarray) -> np.ndarray:
        return value_bins(values, self.lo, self.hi)

    def bitmap(self, values: np.ndarray) -> np.uint32:
        return bitmap_of_values(values, self.lo, self.hi)

    def group_bitmaps(self, values, group_ids, n_groups) -> np.ndarray:
        return bitmaps_by_group(values, group_ids, n_groups, self.lo, self.hi)

    def query(self, qlo: float, qhi: float) -> np.uint32:
        return query_bitmap(qlo, qhi, self.lo, self.hi)

    def remap_to_equiwidth(self, bitmap: int, glo: float, ghi: float) -> np.uint32:
        """Re-express a local bitmap against a global equi-width range."""
        return remap_bitmap(bitmap, self.lo, self.hi, glo, ghi)

    def edges(self) -> np.ndarray:
        """The 33 bin boundaries (derived, for symmetric serialization)."""
        return np.linspace(self.lo, self.hi, BITMAP_BITS + 1)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EquiWidthBinning)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EquiWidthBinning({self.lo}, {self.hi})"


class EquiDepthBinning:
    """32 equal-population bins at the value quantiles.

    Bin *i* covers ``[edges[i], edges[i+1]]``; edges are the empirical
    quantiles of the indexed values, so every bit carries information even
    for extremely skewed distributions (the failure mode of equi-width
    bins the paper's §VII flags).
    """

    kind = BINNING_EQUIDEPTH

    def __init__(self, edges: np.ndarray):
        edges = np.asarray(edges, dtype=np.float64)
        if edges.shape != (BITMAP_BITS + 1,):
            raise ValueError(f"need {BITMAP_BITS + 1} edges, got {edges.shape}")
        if (np.diff(edges) < 0).any():
            raise ValueError("edges must be non-decreasing")
        self._edges = edges
        self.lo = float(edges[0])
        self.hi = float(edges[-1])

    @staticmethod
    def fit(values: np.ndarray) -> "EquiDepthBinning":
        """Fit the bin edges to the empirical quantiles of ``values``."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit equi-depth bins to no values")
        qs = np.linspace(0.0, 1.0, BITMAP_BITS + 1)
        return EquiDepthBinning(np.quantile(values, qs))

    def edges(self) -> np.ndarray:
        return self._edges

    def bins(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        # interior edges partition the line; clamp outliers to end bins
        idx = np.searchsorted(self._edges[1:-1], values, side="right")
        return np.clip(idx, 0, BITMAP_BITS - 1)

    def bitmap(self, values: np.ndarray) -> np.uint32:
        values = np.asarray(values)
        if values.size == 0:
            return np.uint32(0)
        bins = self.bins(values)
        return np.uint32(np.bitwise_or.reduce(np.uint32(1) << bins.astype(np.uint32)))

    def group_bitmaps(self, values, group_ids, n_groups) -> np.ndarray:
        values = np.asarray(values)
        group_ids = np.asarray(group_ids, dtype=np.int64)
        out = np.zeros(n_groups, dtype=np.uint32)
        if values.size == 0:
            return out
        bins = self.bins(values)
        keys = np.unique(group_ids * BITMAP_BITS + bins)
        np.bitwise_or.at(
            out,
            (keys // BITMAP_BITS).astype(np.int64),
            np.uint32(1) << (keys % BITMAP_BITS).astype(np.uint32),
        )
        return out

    def query(self, qlo: float, qhi: float) -> np.uint32:
        if qhi < qlo or qhi < self.lo or qlo > self.hi:
            return np.uint32(0)
        first = int(self.bins(np.array([qlo]))[0])
        last = int(self.bins(np.array([qhi]))[0])
        count = last - first + 1
        if count >= BITMAP_BITS:
            return FULL_BITMAP
        return np.uint32(((1 << count) - 1) << first)

    def remap_to_equiwidth(self, bitmap: int, glo: float, ghi: float) -> np.uint32:
        """Cover each set quantile bin's value interval with global bins."""
        bitmap = int(bitmap)
        if bitmap == 0:
            return np.uint32(0)
        out = np.uint32(0)
        for b in bitmap_bins(bitmap):
            out |= query_bitmap(self._edges[b], self._edges[b + 1], glo, ghi)
        return np.uint32(out)

    def __eq__(self, other) -> bool:
        return isinstance(other, EquiDepthBinning) and np.array_equal(
            self._edges, other._edges
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EquiDepthBinning([{self.lo}..{self.hi}])"


def make_binning(kind: int, lo: float, hi: float, edges: np.ndarray | None = None):
    """Reconstruct a binning from its on-disk representation."""
    if kind == BINNING_EQUIWIDTH:
        return EquiWidthBinning(lo, hi)
    if kind == BINNING_EQUIDEPTH:
        if edges is None:
            raise ValueError("equi-depth binning requires its edge table")
        return EquiDepthBinning(edges)
    raise ValueError(f"unknown binning kind {kind}")
