"""Experiment harness regenerating every table and figure of the paper.

:mod:`repro.bench.harness` runs the sweeps (weak scaling, time series,
breakdowns, progressive reads); :mod:`repro.bench.report` renders them as
the rows/series the paper reports. The pytest-benchmark targets under
``benchmarks/`` are thin wrappers over these functions — see DESIGN.md §4
for the experiment index.
"""

from .calibration import (
    fpp_knee,
    fpp_saturation_bandwidth,
    measure_bat_build_rate,
    solve_create_rate,
)
from .harness import (
    coal_boiler_series,
    dam_break_series,
    parallel_write_query_benchmark,
    progressive_read_benchmark,
    read_path_benchmark,
    record_benchmark,
    timing_breakdown,
    two_phase_read_point,
    two_phase_write_point,
    weak_scaling,
)
from .report import format_series, format_table

__all__ = [
    "parallel_write_query_benchmark",
    "read_path_benchmark",
    "record_benchmark",
    "weak_scaling",
    "two_phase_write_point",
    "two_phase_read_point",
    "timing_breakdown",
    "coal_boiler_series",
    "dam_break_series",
    "progressive_read_benchmark",
    "format_table",
    "format_series",
    "fpp_knee",
    "fpp_saturation_bandwidth",
    "solve_create_rate",
    "measure_bat_build_rate",
]
