"""Sweep runners behind the ``benchmarks/`` targets.

Scaling and time-series experiments run counts-only on the virtual cluster
(DESIGN.md §5); the progressive-read experiments (Tables I–II) measure real
wall-clock time against real BAT files on local storage, matching the
paper's single-threaded desktop methodology.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..api import QueryRequest
from ..baselines import build_aug_plan, ior_benchmark
from ..core import AggTreeConfig, RankData, TwoPhaseReader, TwoPhaseWriter
from ..core.dataset import BATDataset
from ..machines import MachineSpec
from ..workloads import uniform_rank_data

__all__ = [
    "ScalingPoint",
    "weak_scaling",
    "two_phase_write_point",
    "two_phase_read_point",
    "timing_breakdown",
    "coal_boiler_series",
    "dam_break_series",
    "progressive_read_benchmark",
    "parallel_write_query_benchmark",
    "read_path_benchmark",
    "serve_benchmark",
    "shard_benchmark",
    "stream_benchmark",
    "fault_injection_benchmark",
    "neighbors_benchmark",
    "reorg_benchmark",
    "compression_benchmark",
    "codec_throughput_benchmark",
    "record_benchmark",
]

MB = 1 << 20

#: overfull settings used throughout the paper's evaluation (§VI-A2)
PAPER_AGG = dict(overfull_cost_ratio=4.0, overfull_factor=1.5)


def paper_agg_config(target_size: int) -> AggTreeConfig:
    return AggTreeConfig(target_size=target_size, **PAPER_AGG)


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a weak-scaling curve."""

    label: str
    nranks: int
    total_bytes: float
    write_bandwidth: float
    read_bandwidth: float


def two_phase_write_point(
    machine: MachineSpec, data: RankData, target_size: int, strategy="adaptive"
):
    """Write one timestep with the two-phase pipeline; returns the report."""
    if strategy == "adaptive":
        writer = TwoPhaseWriter(
            machine, target_size=target_size, agg_config=paper_agg_config(target_size)
        )
    elif strategy == "aug":
        writer = TwoPhaseWriter(machine, target_size=target_size, strategy=build_aug_plan)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return writer.write(data)


def two_phase_read_point(machine: MachineSpec, write_report, data: RankData, shift: int = 1):
    """Restart-read the just-written data on shifted ranks (paper §VI-A).

    Reading rank r asks for the region writing rank (r+shift) owned, so no
    rank reads what it wrote (defeats OS caching in the paper's runs; here
    it exercises the cross-rank transfer path).
    """
    read_bounds = np.roll(data.bounds, -shift, axis=0)
    reader = TwoPhaseReader(machine)
    return reader.read(write_report.metadata, read_bounds)


def weak_scaling(
    machine: MachineSpec,
    rank_counts: list[int],
    target_sizes: list[int] = (8 * MB, 64 * MB, 256 * MB),
    ior_modes: list[str] = ("fpp", "shared", "hdf5"),
    particles_per_rank: int = 32_768,
) -> list[ScalingPoint]:
    """Figs 5 and 7: uniform weak scaling of writes and reads."""
    out: list[ScalingPoint] = []
    bpp = 3 * 4 + 14 * 8
    for nranks in rank_counts:
        block = particles_per_rank * bpp
        for mode in ior_modes:
            r = ior_benchmark(machine, nranks, block, mode)
            out.append(
                ScalingPoint(
                    label=f"ior-{mode}",
                    nranks=nranks,
                    total_bytes=r.total_bytes,
                    write_bandwidth=r.write_bandwidth,
                    read_bandwidth=r.read_bandwidth,
                )
            )
        data = uniform_rank_data(nranks, particles_per_rank)
        for target in target_sizes:
            wrep = two_phase_write_point(machine, data, target)
            rrep = two_phase_read_point(machine, wrep, data)
            out.append(
                ScalingPoint(
                    label=f"two-phase-{target // MB}MB",
                    nranks=nranks,
                    total_bytes=data.total_bytes,
                    write_bandwidth=wrep.bandwidth,
                    read_bandwidth=rrep.bandwidth,
                )
            )
    return out


def timing_breakdown(
    machine: MachineSpec, rank_counts: list[int], target_size: int
) -> list[dict]:
    """Fig 6: per-phase makespan fractions of the uniform write."""
    rows = []
    for nranks in rank_counts:
        data = uniform_rank_data(nranks)
        rep = two_phase_write_point(machine, data, target_size)
        total = sum(rep.breakdown.values())
        rows.append(
            {
                "nranks": nranks,
                "elapsed": rep.elapsed,
                "phases": dict(rep.breakdown),
                "fractions": {k: v / total for k, v in rep.breakdown.items()} if total else {},
            }
        )
    return rows


def _series(machine, workload_rank_data, timesteps, target_sizes, strategies, read_shift=1):
    rows = []
    for ts in timesteps:
        data = workload_rank_data(ts)
        for target in target_sizes:
            for strategy in strategies:
                wrep = two_phase_write_point(machine, data, target, strategy)
                rrep = two_phase_read_point(machine, wrep, data, shift=read_shift)
                rows.append(
                    {
                        "timestep": ts,
                        "target_mb": target // MB,
                        "strategy": strategy,
                        "total_particles": data.total_particles,
                        "write_seconds": wrep.elapsed,
                        "write_bandwidth": wrep.bandwidth,
                        "read_seconds": rrep.elapsed,
                        "read_bandwidth": rrep.bandwidth,
                        "n_files": wrep.n_files,
                        "file_sizes": wrep.file_sizes,
                        "write_breakdown": wrep.breakdown,
                        "read_breakdown": rrep.breakdown,
                        "imbalance": wrep.imbalance,
                    }
                )
    return rows


def coal_boiler_series(
    machine: MachineSpec,
    nranks: int = 1536,
    timesteps=(501, 1501, 2501, 3501, 4501),
    target_sizes=(8 * MB, 16 * MB, 32 * MB, 64 * MB),
    strategies=("adaptive", "aug"),
    sample_size: int = 300_000,
) -> list[dict]:
    """Figs 9–10: adaptive vs AUG over the Coal Boiler time series."""
    from ..workloads import CoalBoiler

    boiler = CoalBoiler()
    return _series(
        machine,
        lambda ts: boiler.rank_data(ts, nranks, sample_size=sample_size),
        timesteps,
        target_sizes,
        strategies,
    )


def dam_break_series(
    machine: MachineSpec,
    total_particles: int = 2_000_000,
    nranks: int = 1536,
    timesteps=(0, 1001, 2001, 3001, 4001),
    target_sizes=(1 * MB, 3 * MB),
    strategies=("adaptive", "aug"),
    sample_size: int = 300_000,
) -> list[dict]:
    """Figs 11–12: adaptive vs AUG over the Dam Break time series."""
    from ..workloads import DamBreak

    dam = DamBreak(total=total_particles)
    return _series(
        machine,
        lambda ts: dam.rank_data(ts, nranks, sample_size=sample_size),
        timesteps,
        target_sizes,
        strategies,
    )


def parallel_write_query_benchmark(
    out_dir,
    executors=("serial", "thread", "process"),
    nranks: int = 32,
    particles_per_rank: int = 20_000,
    n_attributes: int = 4,
    target_size: int = 256 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
) -> dict:
    """Real wall-clock multi-aggregator write+query, one row per executor.

    One materialized workload is written through the two-phase pipeline
    and then queried (full read, box read, filtered read) once per
    executor spec. Besides the timings, every run's file hashes and query
    results are compared against the serial run — the benchmark fails
    loudly if an executor is fast but wrong. This backs the BENCH_*.json
    perf trajectory: every PR records a point via ``--record``.
    """
    from ..machines import stampede2
    from ..bat.query import AttributeFilter
    from ..types import Box

    executors = [str(s) for s in executors]
    if not executors:
        raise ValueError("at least one executor spec is required")
    machine = machine or stampede2()
    out_dir = Path(out_dir)
    data = uniform_rank_data(
        nranks, particles_per_rank, n_attributes=n_attributes,
        materialize=True, seed=seed,
    )
    filt = AttributeFilter("attr00", 0.25, 0.5)
    box = Box((0.1, 0.1, 0.1), (0.6, 0.6, 0.6))

    rows = []
    reference: dict | None = None
    for spec in executors:
        run_dir = out_dir / str(spec).replace(":", "_")
        run_dir.mkdir(parents=True, exist_ok=True)
        writer = TwoPhaseWriter(
            machine, target_size=target_size,
            agg_config=paper_agg_config(target_size), executor=spec,
        )
        t0 = time.perf_counter()
        report = writer.write(data, out_dir=run_dir, name="bench")
        write_seconds = time.perf_counter() - t0
        writer.executor.close()

        hashes = {
            p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(run_dir.glob("bench.*.bat"))
        }

        with BATDataset(report.metadata_path, executor=spec) as ds:
            t0 = time.perf_counter()
            full, _ = ds.query(QueryRequest())
            boxed, _ = ds.query(QueryRequest(box=box))
            filtered, _ = ds.query(QueryRequest(filters=(filt,)))
            query_seconds = time.perf_counter() - t0
            ds.executor.close()
        answers = (len(full), len(boxed), len(filtered))

        if reference is None:
            reference = {"hashes": hashes, "answers": answers}
        else:
            if hashes != reference["hashes"]:
                raise AssertionError(f"executor {spec!r} wrote different file bytes")
            if answers != reference["answers"]:
                raise AssertionError(f"executor {spec!r} returned different query results")

        rows.append(
            {
                "executor": str(spec),
                "write_seconds": write_seconds,
                "query_seconds": query_seconds,
                "n_files": report.n_files,
                "total_bytes": float(report.total_bytes),
                "points": (
                    {"full": answers[0], "box": answers[1], "filtered": answers[2]}
                ),
            }
        )

    serial = next((r for r in rows if r["executor"].startswith("serial")), rows[0])
    for r in rows:
        r["write_speedup_vs_serial"] = (
            serial["write_seconds"] / r["write_seconds"] if r["write_seconds"] else 0.0
        )
        r["query_speedup_vs_serial"] = (
            serial["query_seconds"] / r["query_seconds"] if r["query_seconds"] else 0.0
        )
    return {
        "benchmark": "parallel-write-query",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "n_attributes": n_attributes,
        "target_size": target_size,
        "results": rows,
    }


def read_path_benchmark(
    out_dir,
    nranks: int = 32,
    particles_per_rank: int = 20_000,
    n_attributes: int = 4,
    target_size: int = 256 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Real wall-clock read-path benchmark: planner + traversal engines.

    Writes one materialized workload once, then runs a fixed query mix —
    full read, box read, filtered read, a box+filter query selecting a
    minority of files, and a progressive refinement — once per traversal
    engine (``recursive`` is the pre-planner reference, ``frontier`` the
    vectorized walk). Timings are best-of-``repeats``; every engine's
    results are hashed and compared, so the benchmark fails loudly if an
    engine is fast but wrong. Planner effectiveness is recorded through
    the ``pruned_files`` / ``files_opened`` stats.
    """
    from ..bat.query import ENGINES, AttributeFilter
    from ..machines import stampede2
    from ..types import Box

    machine = machine or stampede2()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = uniform_rank_data(
        nranks, particles_per_rank, n_attributes=n_attributes,
        materialize=True, seed=seed,
    )
    writer = TwoPhaseWriter(
        machine, target_size=target_size, agg_config=paper_agg_config(target_size)
    )
    report = writer.write(data, out_dir=out_dir, name="readbench")

    filt = AttributeFilter("attr00", 0.25, 0.5)
    cases = [
        ("full", QueryRequest()),
        ("box", QueryRequest(box=Box((0.1, 0.1, 0.1), (0.6, 0.6, 0.6)))),
        ("filtered", QueryRequest(filters=(filt,))),
        (
            "box+filter-minority",
            QueryRequest(box=Box((0.0, 0.0, 0.0), (0.25, 0.25, 0.25)), filters=(filt,)),
        ),
        ("progressive-0.3-0.7", QueryRequest(quality=0.7, prev_quality=0.3)),
    ]

    rows = []
    reference: dict | None = None
    for engine in ENGINES[::-1]:  # reference engine first
        case_out = {}
        digests = {}
        for case_name, case_req in cases:
            best = None
            for _ in range(max(1, repeats)):
                # fresh dataset per repeat: no warm file handles or plans
                with BATDataset(report.metadata_path) as ds:
                    t0 = time.perf_counter()
                    batch, stats = ds.query(replace(case_req, engine=engine))
                    dt = time.perf_counter() - t0
                if best is None or dt < best[0]:
                    best = (dt, batch, stats)
            dt, batch, stats = best
            h = hashlib.sha256(batch.positions.tobytes())
            for name in sorted(batch.attributes):
                h.update(batch.attributes[name].tobytes())
            digests[case_name] = h.hexdigest()
            case_out[case_name] = {
                "seconds": dt,
                "points": len(batch),
                "pruned_files": stats.pruned_files,
                "files_opened": stats.files_opened,
                "nodes_visited": stats.nodes_visited,
            }
        if reference is None:
            reference = digests
        elif digests != reference:
            raise AssertionError(f"engine {engine!r} returned different query results")
        rows.append(
            {
                "engine": engine,
                "cases": case_out,
                # comparable to BENCH_pr1.json's serial query_seconds
                "query_seconds_pr1_mix": sum(
                    case_out[c]["seconds"] for c in ("full", "box", "filtered")
                ),
                "query_seconds_total": sum(c["seconds"] for c in case_out.values()),
            }
        )

    ref = next(r for r in rows if r["engine"] == "recursive")
    for r in rows:
        r["speedup_vs_recursive"] = {
            case: (ref["cases"][case]["seconds"] / c["seconds"]) if c["seconds"] else 0.0
            for case, c in r["cases"].items()
        }
    return {
        "benchmark": "read-path",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "n_attributes": n_attributes,
        "target_size": target_size,
        "n_files": report.n_files,
        "results": rows,
    }


def serve_benchmark(
    out_dir,
    nranks: int = 32,
    particles_per_rank: int = 10_000,
    n_attributes: int = 4,
    target_size: int = 256 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    capacity: int = 2,
    concurrency: int | None = None,
    sessions: int = 12,
    ops_per_session: int = 6,
    max_queued: int = 64,
) -> dict:
    """Concurrent serving benchmark: load generator vs the query service.

    Writes one materialized workload, then replays deterministic
    zoom/pan/filter session traces through a
    :class:`~repro.serve.service.QueryService` at ``concurrency`` client
    threads (default **2× the admission capacity**, so the scheduler
    queue actually builds and adaptive degradation engages). Records
    throughput, p50/p99 latency, queue-depth high-water mark, downgrade
    and engage/release counts, and every cache layer's hit rates. A
    sample of served responses is replayed against a direct
    :class:`BATDataset` and must match byte for byte — a fast-but-wrong
    serving layer fails the benchmark.
    """
    from ..serve import (
        DegradationConfig,
        QueryService,
        ServeConfig,
        make_traces,
        run_load,
        verify_identity_samples,
    )
    from ..machines import stampede2

    machine = machine or stampede2()
    if concurrency is None:
        concurrency = 2 * capacity
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = uniform_rank_data(
        nranks, particles_per_rank, n_attributes=n_attributes,
        materialize=True, seed=seed,
    )
    writer = TwoPhaseWriter(
        machine, target_size=target_size, agg_config=paper_agg_config(target_size)
    )
    report = writer.write(data, out_dir=out_dir, name="servebench")

    config = ServeConfig(
        capacity=capacity,
        max_queued=max_queued,
        degradation=DegradationConfig(),
    )
    with QueryService(report.metadata_path, config) as service:
        ds = service.dataset(0)
        traces = make_traces(
            sessions, ds.bounds, ds.attr_ranges,
            ops_per_session=ops_per_session, seed=seed,
        )
        load = run_load(service, traces, concurrency=concurrency)
        # cool-down: a few sequential requests at trivial load let the
        # degradation policy observe the drain and restore full quality
        sid = service.open_session()
        for q in (0.2, 0.4, 0.6):
            service.request(sid, QueryRequest(quality=q))
        service.close_session(sid)
        snapshot = service.snapshot()
        identity_checked = verify_identity_samples(ds, load.identity_samples)

    lat_sorted = sorted(load.latencies)
    from ..serve.metrics import percentile

    results = {
        "requests": load.requests,
        "rejected": load.rejected,
        "degraded": load.degraded,
        "cache_hits": load.cache_hits,
        "points_served": load.points,
        "bytes_served": load.nbytes,
        "elapsed_seconds": load.elapsed_seconds,
        "throughput_rps": load.throughput_rps,
        "latency_ms": {
            "p50": 1e3 * percentile(lat_sorted, 50),
            "p99": 1e3 * percentile(lat_sorted, 99),
            "max": 1e3 * max(lat_sorted) if lat_sorted else 0.0,
        },
        "identity_samples_checked": identity_checked,
        "service": snapshot,
    }
    return {
        "benchmark": "serve",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "n_attributes": n_attributes,
        "target_size": target_size,
        "n_files": report.n_files,
        "capacity": capacity,
        "concurrency": concurrency,
        "sessions": sessions,
        "ops_per_session": ops_per_session,
        "results": results,
    }


def stream_benchmark(
    out_dir,
    nranks: int = 24,
    particles_per_rank: int = 8_000,
    n_attributes: int = 4,
    target_size: int = 256 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    capacity: int = 2,
    sessions: int = 120,
    ops_per_session: int = 4,
    n_views: int = 4,
    max_queued: int | None = None,
) -> dict:
    """Streaming-serve benchmark: request collapsing under a thundering herd.

    Writes one v4 (per-column codec) workload, then replays ``sessions``
    asyncio sessions — an order of magnitude more than the thread-based
    serve suite — all walking a shared set of ``n_views`` hot views
    (:func:`~repro.serve.loadgen.make_hot_traces`), each consuming
    streamed increments. The same traces run twice against fresh
    services: once with the in-flight collapse table disabled (the PR 3
    execution model: every request decodes for itself) and once enabled.
    The decoded-column cache is off and degradation disabled in **both**
    runs, so the only difference between the variants is pre-completion
    request collapsing, and ``decoded_bytes`` (real codec decode work,
    counted at the section layer) isolates exactly what collapsing saved.

    Per variant the benchmark records throughput, p50/p99 latency,
    time-to-first-increment percentiles (the latency a progressive viewer
    perceives), shed/collapse counts, and the collapse table's own
    accounting; a sample of responses is byte-checked against direct
    dataset queries at their served coordinates. The run *fails* — like
    every suite here, wrong answers are a benchmark failure, not a data
    point — if identity checks fail, if the collapse run never collapses,
    or if it does not decode strictly fewer bytes than the baseline.
    """
    from ..bat import BATBuildConfig
    from ..machines import stampede2
    from ..serve import (
        DegradationConfig,
        QueryService,
        ServeConfig,
        make_hot_traces,
        run_load_async,
        verify_identity_samples,
    )
    from ..serve.metrics import percentile

    machine = machine or stampede2()
    if max_queued is None:
        max_queued = max(64, sessions * ops_per_session)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = uniform_rank_data(
        nranks, particles_per_rank, n_attributes=n_attributes,
        materialize=True, seed=seed,
    )
    writer = TwoPhaseWriter(
        machine,
        target_size=target_size,
        agg_config=paper_agg_config(target_size),
        bat_config=BATBuildConfig(codecs="auto"),
    )
    report = writer.write(data, out_dir=out_dir, name="streambench")

    variants = {}
    for variant, collapse in (("no-collapse", False), ("collapse", True)):
        config = ServeConfig(
            capacity=capacity,
            max_queued=max_queued,
            collapse=collapse,
            column_cache_bytes=0,
            degradation=DegradationConfig(enabled=False),
        )
        with QueryService(report.metadata_path, config) as service:
            ds = service.dataset(0)
            traces = make_hot_traces(
                sessions, ds.bounds, n_views=n_views,
                ops_per_session=ops_per_session, seed=seed,
            )
            load = run_load_async(service, traces)
            snapshot = service.snapshot()
            identity_checked = verify_identity_samples(ds, load.identity_samples)

        lat = sorted(load.latencies)
        ttfi = sorted(load.ttfi)
        variants[variant] = {
            "requests": load.requests,
            "rejected": load.rejected,
            "collapsed": load.collapsed,
            "shed": load.shed,
            "cache_hits": load.cache_hits,
            "increments": load.increments,
            "points_served": load.points,
            "bytes_served": load.nbytes,
            "elapsed_seconds": load.elapsed_seconds,
            "throughput_rps": load.throughput_rps,
            "latency_ms": {
                "p50": 1e3 * percentile(lat, 50),
                "p99": 1e3 * percentile(lat, 99),
                "max": 1e3 * max(lat) if lat else 0.0,
            },
            "ttfi_ms": {
                "p50": 1e3 * percentile(ttfi, 50),
                "p99": 1e3 * percentile(ttfi, 99),
            },
            "decoded_bytes": snapshot["caches"]["files"]["decoded_bytes"],
            "collapse": snapshot["caches"]["collapse"],
            "identity_samples_checked": identity_checked,
        }
        if not identity_checked:
            raise AssertionError(f"{variant}: no identity samples were checked")

    base, coll = variants["no-collapse"], variants["collapse"]
    if coll["collapse"]["collapsed_hits"] + coll["collapse"]["derived_hits"] == 0:
        raise AssertionError("collapse run never collapsed a request")
    if coll["decoded_bytes"] >= base["decoded_bytes"]:
        raise AssertionError(
            f"collapsing did not reduce decode work: "
            f"{coll['decoded_bytes']} >= {base['decoded_bytes']}"
        )
    results = {
        "variants": variants,
        "collapse_hit_rate": coll["collapse"]["hit_rate"],
        "decoded_bytes_saved": base["decoded_bytes"] - coll["decoded_bytes"],
        "decoded_bytes_saved_frac": (
            1.0 - coll["decoded_bytes"] / base["decoded_bytes"]
        ),
        "byte_identity_ok": True,
    }
    return {
        "benchmark": "stream",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "n_attributes": n_attributes,
        "target_size": target_size,
        "n_files": report.n_files,
        "capacity": capacity,
        "sessions": sessions,
        "ops_per_session": ops_per_session,
        "n_views": n_views,
        "results": results,
    }


def shard_benchmark(
    out_dir,
    nranks: int = 24,
    particles_per_rank: int = 8_000,
    n_attributes: int = 4,
    target_size: int = 256 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    capacity: int = 2,
    concurrency: int | None = None,
    sessions: int = 480,
    ops_per_session: int = 3,
    n_views: int = 6,
    n_shards: int = 2,
    n_jobs: int = 48,
) -> dict:
    """Sharded-serve benchmark: scatter-gather vs one process, plus resume.

    Writes one v4 workload, builds a shared hot-view trace set at a high
    session count, and replays it twice with identical service tuning:
    once through a single-process :class:`~repro.serve.QueryService` and
    once through a :class:`~repro.serve.ShardedQueryService` routing to
    ``n_shards`` worker processes. Collapse and degradation are off in
    both runs, so the only difference is the scatter-gather hop — the
    recorded ``scatter_gather_overhead_x`` (sharded p50 / single p50) is
    the price of crossing process boundaries, and the per-shard latency
    percentiles (from each worker's own metrics window) show how evenly
    the consistent-hash ring spread the load.

    The second leg is the durability drill: an ``n_jobs``-query sweep is
    submitted to a SQLite job store and drained through the sharded
    router's bulk path; a third of the way in the runner stops the way a
    SIGKILL would (leases left in hand) **and** shard 0's worker process
    is killed outright. A fresh runner on the same store must then finish
    the sweep — every task exactly once in the completion log, zero
    dead-letters, and every digest byte-identical to a direct
    single-process query. Identity or resume failures raise: wrong
    answers are a benchmark failure, not a data point.
    """
    from ..bat import BATBuildConfig
    from ..machines import stampede2
    from ..serve import (
        DegradationConfig,
        JobConfig,
        JobRunner,
        JobStore,
        QueryService,
        ServeConfig,
        ShardedQueryService,
        make_hot_traces,
        make_sweep,
        run_load,
        verify_identity_samples,
    )
    from ..serve.loadgen import _digest
    from ..serve.metrics import percentile

    machine = machine or stampede2()
    if concurrency is None:
        concurrency = 4 * capacity
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = uniform_rank_data(
        nranks, particles_per_rank, n_attributes=n_attributes,
        materialize=True, seed=seed,
    )
    writer = TwoPhaseWriter(
        machine,
        target_size=target_size,
        agg_config=paper_agg_config(target_size),
        bat_config=BATBuildConfig(codecs="auto"),
    )
    report = writer.write(data, out_dir=out_dir, name="shardbench")

    config = ServeConfig(
        capacity=capacity,
        max_queued=max(64, sessions * ops_per_session),
        collapse=False,
        degradation=DegradationConfig(enabled=False),
    )
    with BATDataset(report.metadata_path) as ds:
        traces = make_hot_traces(
            sessions, ds.bounds, n_views=n_views,
            ops_per_session=ops_per_session, seed=seed,
        )

        variants = {}
        per_shard = []
        restarts_during_load = 0
        for variant in ("single", "sharded"):
            if variant == "single":
                service = QueryService(report.metadata_path, config)
            else:
                service = ShardedQueryService(
                    report.metadata_path, config, n_shards=n_shards
                )
            with service:
                # steady state, not spawn cost: one bulk window warms every
                # worker's lazily opened dataset before the clock starts
                service.execute(QueryRequest(quality=0.2))
                load = run_load(
                    service, traces, concurrency=concurrency,
                    identity_sample_every=11,
                )
                snapshot = service.snapshot()
                identity_checked = verify_identity_samples(
                    ds, load.identity_samples
                )
            if not identity_checked:
                raise AssertionError(f"{variant}: no identity samples checked")
            lat = sorted(load.latencies)
            variants[variant] = {
                "requests": load.requests,
                "rejected": load.rejected,
                "cache_hits": load.cache_hits,
                "points_served": load.points,
                "bytes_served": load.nbytes,
                "elapsed_seconds": load.elapsed_seconds,
                "throughput_rps": load.throughput_rps,
                "latency_ms": {
                    "p50": 1e3 * percentile(lat, 50),
                    "p99": 1e3 * percentile(lat, 99),
                    "max": 1e3 * max(lat) if lat else 0.0,
                },
                "identity_samples_checked": identity_checked,
            }
            if variant == "sharded":
                variants[variant]["fanout"] = {
                    k: snapshot["shards"][k]
                    for k in ("fanout_single", "fanout_multi", "fanout_mean")
                }
                restarts_during_load = snapshot["shards"]["restarts"]
                for w in snapshot["shards"]["workers"]:
                    per_shard.append({
                        "shard": w["shard"],
                        "completed": w["requests"]["completed"],
                        "owned_leaves": sum(w["owned_leaves"].values()),
                        "latency_ms": {
                            "p50": w["latency_ms"]["p50"],
                            "p99": w["latency_ms"]["p99"],
                        },
                    })

        # -- durability drill: kill runner and worker mid-sweep, resume ----
        sweep = make_sweep(ds.bounds, n_jobs, seed=seed)
        job_cfg = JobConfig(lease_seconds=0.5, batch_size=4)
        store = JobStore(out_dir / "shardbench-jobs.db")
        try:
            store.submit("shardbench", sweep, source=str(report.metadata_path))
            with ShardedQueryService(
                report.metadata_path, config, n_shards=n_shards
            ) as svc:
                # first runner dies the SIGKILL way: leases stay in hand
                JobRunner(
                    store, svc, "shardbench", worker="bench-r0", config=job_cfg,
                ).run(max_tasks=n_jobs // 3, clean_stop=False)
                svc._shards[0].process.kill()  # and a shard dies with it
                time.sleep(job_cfg.lease_seconds + 0.1)  # leases expire
                counts = JobRunner(
                    store, svc, "shardbench", worker="bench-r1", config=job_cfg,
                ).run()
                job_restarts = sum(c.restarts for c in svc._shards)
            resume_ok = (
                counts["done"] == n_jobs
                and counts["dead"] == 0
                and counts["completions"] == n_jobs
            )
            if not resume_ok:
                raise AssertionError(f"sweep did not resume cleanly: {counts}")
            for idx, digest, _points, _dups in store.completions("shardbench"):
                batch, _ = ds.query(sweep[idx])
                if _digest(batch) != digest:
                    raise AssertionError(
                        f"task {idx}: digest diverged after crash-resume"
                    )
        finally:
            store.close()

    single, sharded = variants["single"], variants["sharded"]
    results = {
        "variants": variants,
        "per_shard": per_shard,
        "scatter_gather_overhead_x": (
            sharded["latency_ms"]["p50"] / single["latency_ms"]["p50"]
            if single["latency_ms"]["p50"] else 0.0
        ),
        "restarts_during_load": restarts_during_load,
        "job": {
            "tasks": n_jobs,
            "counts": counts,
            "worker_restarts": job_restarts,
            "resume_correctness_ok": True,
        },
        "byte_identity_ok": True,
    }
    return {
        "benchmark": "shard",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "n_attributes": n_attributes,
        "target_size": target_size,
        "n_files": report.n_files,
        "capacity": capacity,
        "concurrency": concurrency,
        "sessions": sessions,
        "ops_per_session": ops_per_session,
        "n_views": n_views,
        "n_shards": n_shards,
        "results": results,
    }


def fault_injection_benchmark(
    out_dir,
    nranks: int = 16,
    particles_per_rank: int = 10_000,
    n_attributes: int = 2,
    target_size: int = 128 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    fault_seed: int = 0,
) -> dict:
    """End-to-end write-path integrity under injected faults.

    Proves the recovery story, not just the injection: a faulted write
    (torn writes, bit flips, dropped/duplicated aggregator messages,
    aggregator death) must publish files **byte-identical** to a
    fault-free reference run, ``repro scrub`` must pass afterwards, and a
    byte deliberately flipped in one leaf must then be localized to its
    exact section by the scrubber while the query service degrades to a
    partial result instead of failing the request.
    """
    from ..bat.format import HEADER_SIZE, Header
    from ..bat.integrity import scrub_dataset, scrub_file
    from ..iosim import FaultConfig
    from ..machines import stampede2
    from ..serve import QueryService

    machine = machine or stampede2()
    out_dir = Path(out_dir)

    def write(tag, faults):
        run_dir = out_dir / tag
        run_dir.mkdir(parents=True, exist_ok=True)
        data = uniform_rank_data(
            nranks, particles_per_rank, n_attributes=n_attributes,
            materialize=True, seed=seed,
        )
        writer = TwoPhaseWriter(
            machine, target_size=target_size,
            agg_config=paper_agg_config(target_size), faults=faults,
        )
        t0 = time.perf_counter()
        report = writer.write(data, out_dir=run_dir, name="faultbench")
        seconds = time.perf_counter() - t0
        hashes = {
            p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(run_dir.glob("faultbench.*.bat"))
        }
        leftovers = [p.name for p in run_dir.iterdir() if ".tmp" in p.name]
        if leftovers:
            raise AssertionError(f"partially visible files left behind: {leftovers}")
        return report, hashes, seconds, run_dir

    reference, ref_hashes, ref_seconds, _ = write("reference", None)
    faults = FaultConfig(
        seed=fault_seed,
        torn_write=0.4,
        bit_flip=0.3,
        drop_message=0.2,
        duplicate_message=0.1,
        aggregator_death=0.25,
    )
    faulted, fault_hashes, fault_seconds, run_dir = write("faulted", faults)
    injected = faulted.faults.to_doc()
    if faulted.faults.total_injected == 0:
        raise AssertionError("fault config injected nothing; benchmark proves nothing")
    if faulted.faults.retried_writes == 0:
        raise AssertionError("no write was retried; recovery path not exercised")
    if fault_hashes != ref_hashes:
        raise AssertionError("faulted run published different bytes than fault-free run")

    scrub_clean = scrub_dataset(str(run_dir / "faultbench.meta.json"))
    if not scrub_clean.ok:
        raise AssertionError(f"scrub failed after faulted write:\n{scrub_clean.summary()}")

    # now corrupt one published leaf for real and prove detection +
    # degraded serving: flip a byte in the bitmap dictionary section
    victim = sorted(run_dir.glob("faultbench.*.bat"))[1]
    raw = bytearray(victim.read_bytes())
    header = Header.unpack(bytes(raw[:HEADER_SIZE]))
    dict_off, dict_len = header.section_extents()["dictionary"]
    raw[dict_off + dict_len // 2] ^= 0xFF
    victim.write_bytes(bytes(raw))

    flagged = scrub_file(victim)
    if flagged.ok or flagged.bad_sections != ["dictionary"]:
        raise AssertionError(
            f"scrub did not localize the flipped byte: {flagged.summary()}"
        )
    scrub_after = scrub_dataset(str(run_dir / "faultbench.meta.json"))
    if scrub_after.ok or scrub_after.counts.get("corrupt", 0) != 1:
        raise AssertionError("dataset scrub missed the corrupted leaf")

    with QueryService(run_dir / "faultbench.meta.json") as service:
        sid = service.open_session()
        response = service.request(sid, QueryRequest())
        snapshot = service.snapshot()
    if not response.partial or response.quarantined_files != 1:
        raise AssertionError("service did not degrade to a partial result")
    if len(response) == 0:
        raise AssertionError("degraded response is empty; surviving leaves not served")
    if snapshot["integrity"]["quarantined_leaves"] != 1:
        raise AssertionError("quarantine counter missing from metrics snapshot")

    return {
        "benchmark": "fault-injection",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "n_attributes": n_attributes,
        "target_size": target_size,
        "n_files": reference.n_files,
        "fault_config": {
            "seed": faults.seed,
            "torn_write": faults.torn_write,
            "bit_flip": faults.bit_flip,
            "drop_message": faults.drop_message,
            "duplicate_message": faults.duplicate_message,
            "aggregator_death": faults.aggregator_death,
            "max_write_attempts": faults.max_write_attempts,
        },
        "results": {
            "injected": injected,
            "reference_write_seconds": ref_seconds,
            "faulted_write_seconds": fault_seconds,
            "files_byte_identical": True,
            "scrub_after_faulted_write": scrub_clean.counts,
            "scrub_after_corruption": scrub_after.counts,
            "flagged_sections": flagged.bad_sections,
            "degraded_response": {
                "partial": response.partial,
                "quarantined_files": response.quarantined_files,
                "points": len(response),
            },
            "integrity_snapshot": snapshot["integrity"],
        },
    }


def codec_throughput_benchmark(
    n: int = 1 << 18, repeats: int = 3, seed: int = 0
) -> dict:
    """Measured (not declared) encode/decode MB/s per codec.

    Times each registered codec family on a representative synthetic
    column — monotone int64 ids for the integer codecs, smooth float64
    temperatures for the float codecs — and reports best-of-``repeats``
    throughput in MB/s of *raw* column bytes. These numbers feed the
    compression report so codec-selection floors can be sanity-checked
    against what the kernels actually deliver on this machine.
    """
    from ..bat.codecs import get_codec

    rng = np.random.default_rng(seed)
    ids = np.cumsum(rng.integers(1, 9, size=n).astype(np.int64))
    temps = 300.0 + 8.0 * rng.standard_normal(n)
    cases = {
        "raw": temps,
        "zlib": ids,
        "delta": ids,
        "quantize12": temps,
        "qauto": temps,
    }
    out = {}
    for name, col in cases.items():
        codec = get_codec(name)
        raw_mb = col.nbytes / MB
        payload = b""
        best_enc = best_dec = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            payload, p0, p1 = codec.encode(col)
            enc_dt = time.perf_counter() - t0
            t0 = time.perf_counter()
            codec.decode(payload, col.dtype, col.size, p0, p1)
            dec_dt = time.perf_counter() - t0
            if best_enc is None or enc_dt < best_enc:
                best_enc = enc_dt
            if best_dec is None or dec_dt < best_dec:
                best_dec = dec_dt
        out[name] = {
            "column_mb": raw_mb,
            "encode_mb_per_s": raw_mb / best_enc if best_enc else 0.0,
            "decode_mb_per_s": raw_mb / best_dec if best_dec else 0.0,
            "encoded_fraction": len(payload) / col.nbytes,
        }
    return out


def compression_benchmark(
    out_dir,
    nranks: int = 16,
    particles_per_rank: int = 16_384,
    target_size: int = 256 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    lossy_bits: int | None = None,
) -> dict:
    """BAT v4 column codecs vs the uncompressed v3 baseline.

    Writes one structured, realistically compressible workload twice —
    once as plain v3, once as v4 with ``codecs="auto"`` — and measures
    the on-disk reduction, per-column codec choices, full-read time, and
    the lazy-decode savings of a single-column read. Correctness is part
    of the benchmark: every v4 query must return byte-identical data to
    the v3 build, v2/v3 single files built from the same particles must
    still open and query byte-identically, and (when ``lossy_bits`` is
    set) quantized columns must stay within their recorded error bound.
    """
    from ..api import open_dataset
    from ..bat import build_bat
    from ..bat.builder import BATBuildConfig
    from ..bat.file import BATFile
    from ..bat.query import AttributeFilter, query_file
    from ..machines import stampede2
    from ..types import Box
    from ..workloads import compressible_rank_data

    machine = machine or stampede2()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = compressible_rank_data(nranks, particles_per_rank, seed=seed)

    def digest(batch) -> str:
        h = hashlib.sha256(batch.positions.tobytes())
        for name in sorted(batch.attributes):
            h.update(batch.attributes[name].tobytes())
        return h.hexdigest()

    requests = {
        "full": QueryRequest(),
        "box": QueryRequest(box=Box((0.1, 0.1, 0.1), (0.6, 0.6, 0.6))),
        "filtered": QueryRequest(filters=(AttributeFilter("temp", 290.0, 330.0),)),
        "progressive-0.3-0.7": QueryRequest(quality=0.7, prev_quality=0.3),
    }

    variants = {
        "v3": BATBuildConfig(),
        "v4-auto": BATBuildConfig(codecs="auto"),
    }
    rows = {}
    digests = {}
    for label, cfg in variants.items():
        run_dir = out_dir / label
        run_dir.mkdir(parents=True, exist_ok=True)
        writer = TwoPhaseWriter(
            machine, target_size=target_size,
            agg_config=paper_agg_config(target_size), bat_config=cfg,
        )
        t0 = time.perf_counter()
        report = writer.write(data, out_dir=run_dir, name="compbench")
        write_seconds = time.perf_counter() - t0
        disk_bytes = sum(p.stat().st_size for p in run_dir.glob("compbench.*.bat"))
        with open_dataset(report.metadata_path) as ds:
            t0 = time.perf_counter()
            answers = {name: ds.query(req) for name, req in requests.items()}
            query_seconds = time.perf_counter() - t0
            digests[label] = {n: digest(r.batch) for n, r in answers.items()}
            # one-column read on a fresh handle set: how many column bytes
            # does lazy decode actually materialize? (the counter survives
            # close(), so measure the delta)
            ds.file_cache.close()
            decoded_before = ds.file_cache.stats()["decoded_bytes"]
            ds.query(QueryRequest(columns=("temp",)))
            decoded_one_column = (
                ds.file_cache.stats()["decoded_bytes"] - decoded_before
            )
        rows[label] = {
            "file_version": 4 if cfg.codecs is not None else 3,
            "disk_bytes": disk_bytes,
            "payload_raw_bytes": report.payload_raw_bytes,
            "payload_encoded_bytes": report.payload_encoded_bytes,
            "write_seconds": write_seconds,
            "query_seconds": query_seconds,
            "decoded_bytes_one_column": int(decoded_one_column),
            "codec_table": dict(report.codec_table),
            "points": {n: len(r.batch) for n, r in answers.items()},
        }

    if digests["v4-auto"] != digests["v3"]:
        raise AssertionError("v4 lossless queries diverged from the v3 baseline")
    ratio = rows["v3"]["disk_bytes"] / rows["v4-auto"]["disk_bytes"]
    if ratio < 2.0:
        raise AssertionError(
            f"lossless codecs reached only {ratio:.2f}x on-disk reduction (< 2x)"
        )
    full_decoded = rows["v3"]["payload_raw_bytes"]
    if not 0 < rows["v4-auto"]["decoded_bytes_one_column"] < full_decoded:
        raise AssertionError("lazy decode materialized as much as a full read")

    # format-compatibility sweep: the same particles as one v2, v3, and v4
    # file must answer every request byte-identically
    first = data.batches[0]
    compat_digests = {}
    for label, cfg in (
        ("v2", BATBuildConfig(checksums=False)),
        ("v3", BATBuildConfig()),
        ("v4", BATBuildConfig(codecs="auto")),
    ):
        path = out_dir / f"compat-{label}.bat"
        path.write_bytes(build_bat(first, cfg).data)
        with BATFile(path) as f:
            batch, _ = query_file(f, quality=1.0)
            box_batch, _ = query_file(f, quality=1.0, box=requests["box"].box)
            compat_digests[label] = (digest(batch), digest(box_batch))
    if len(set(compat_digests.values())) != 1:
        raise AssertionError(f"v2/v3/v4 compat sweep diverged: {compat_digests}")

    results = {
        "variants": rows,
        "disk_reduction_x": ratio,
        "queries_byte_identical": True,
        "compat_v2_v3_v4_identical": True,
        "lazy_decode_fraction": (
            rows["v4-auto"]["decoded_bytes_one_column"] / full_decoded
            if full_decoded else 0.0
        ),
        "codec_throughput_mb_per_s": codec_throughput_benchmark(seed=seed),
    }

    if lossy_bits is not None:
        lossy_cfg = BATBuildConfig(
            codecs={"*": "auto", "temp": f"quantize{lossy_bits}"}
        )
        path = out_dir / "lossy.bat"
        path.write_bytes(build_bat(first, lossy_cfg).data)
        with BATFile(path) as f:
            summary = f.column_summary()
            bound = summary["temp"]["error_bound"]
            got, _ = query_file(f, quality=1.0)
        ref_cfg = BATBuildConfig()
        ref_path = out_dir / "lossy-ref.bat"
        ref_path.write_bytes(build_bat(first, ref_cfg).data)
        with BATFile(ref_path) as f:
            ref, _ = query_file(f, quality=1.0)
        err = float(np.max(np.abs(
            got.attributes["temp"].astype(np.float64)
            - ref.attributes["temp"].astype(np.float64)
        )))
        if err > bound:
            raise AssertionError(
                f"quantize{lossy_bits} error {err:g} exceeds recorded bound {bound:g}"
            )
        results["lossy"] = {
            "codec": f"quantize{lossy_bits}",
            "recorded_error_bound": float(bound),
            "max_observed_error": err,
            "temp_enc_nbytes": int(summary["temp"]["enc_nbytes"]),
            "temp_raw_nbytes": int(summary["temp"]["raw_nbytes"]),
        }

    return {
        "benchmark": "compression",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "target_size": target_size,
        "results": results,
    }


def reorg_benchmark(
    out_dir,
    nranks: int = 32,
    particles_per_rank: int = 10_000,
    target_size: int = 128 * 1024,
    machine: MachineSpec | None = None,
    seed: int = 0,
    rounds: int = 40,
    identity_samples: int = 8,
) -> dict:
    """Replay a hot-view trace before and after online reorganization.

    Writes one v4 workload (the structured
    :func:`~repro.workloads.compressible_rank_data`, so per-column codec
    choice matters), replays a deterministic trace (three recurring hot
    views plus an occasional full sweep) through a fresh
    :class:`~repro.serve.service.QueryService`, reorganizes the layout
    from the telemetry that replay produced, then replays the identical
    trace through a second, identically configured service. Reported per
    phase: total planned file opens (from access telemetry), codec decode
    work (file-cache ``decoded_bytes``), and latency percentiles. A sample
    of responses from each phase is re-run directly against the manifest
    generation that phase observed and must match byte for byte.

    Both phases run with a 1-entry result cache and the decoded-column
    cache off, so recurring hot views actually reach the I/O layer and
    every request pays the decode work its layout induces (the point of
    the benchmark) — the configuration is identical on both sides, so
    the comparison isolates the layout change.
    """
    from ..bat.builder import BATBuildConfig
    from ..reorg import ReorgConfig, reorganize
    from ..serve import QueryService, ServeConfig
    from ..serve.metrics import percentile
    from ..machines import stampede2
    from ..types import Box
    from ..workloads import compressible_rank_data

    machine = machine or stampede2()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    data = compressible_rank_data(nranks, particles_per_rank, seed=seed)
    writer = TwoPhaseWriter(
        machine, target_size=target_size,
        agg_config=paper_agg_config(target_size),
        bat_config=BATBuildConfig(codecs="auto"),
    )
    report = writer.write(data, out_dir=out_dir, name="reorgbench")
    manifest = report.metadata_path

    from ..core.metadata import DatasetMetadata

    md = DatasetMetadata.load(manifest)
    lo = np.array(md.bounds.lower)
    hi = np.array(md.bounds.upper)
    ext = hi - lo
    attr = sorted(md.attr_dtypes)[0] if md.attr_dtypes else None

    def _view(frac_lo, frac_hi):
        return Box(tuple(lo + frac_lo * ext), tuple(lo + frac_hi * ext))

    # one shared dashboard view plus two zoom-ins nested inside it — the
    # recurring-exact-box pattern the serve telemetry's box census is
    # built to recognize
    hot_views = [
        _view(np.array([0.30, 0.30, 0.30]), np.array([0.58, 0.58, 0.58])),
        _view(np.array([0.34, 0.34, 0.34]), np.array([0.52, 0.52, 0.52])),
        _view(np.array([0.38, 0.36, 0.35]), np.array([0.50, 0.48, 0.47])),
    ]
    # hot views only: the trace is the access pattern reorganization
    # optimizes for. Decode work is memoized per open handle, so a full
    # sweep would add a large identical unique-bytes constant to both
    # phases and drown the hot-path signal in the reduction metrics.
    trace: list[QueryRequest] = []
    for _ in range(rounds):
        for box in hot_views:
            cols = ("positions", attr) if attr else None
            trace.append(QueryRequest(box=box, quality=1.0, columns=cols))

    config = ServeConfig(
        capacity=1, result_cache_entries=1, collapse=False,
        column_cache_bytes=0,
    )

    def _phase(label: str) -> dict:
        latencies = []
        samples = []
        with QueryService(manifest, config) as service:
            generation = service.generation(0)
            every = max(1, len(trace) // identity_samples)
            for i, req in enumerate(trace):
                t0 = time.perf_counter()
                resp = service.execute(req)
                latencies.append(time.perf_counter() - t0)
                if i % every == 0:
                    samples.append((req, resp.batch))
            tele = service.telemetry.snapshot()
            cache_stats = service.dataset(0).file_cache.stats()
            opens = service.telemetry.files_opened(0)
        # identity: every sampled response must equal a direct query
        # against the same manifest generation the service observed
        checked = 0
        with BATDataset(manifest) as ds:
            if ds.metadata.generation != generation:
                raise RuntimeError(
                    f"{label}: manifest generation moved mid-phase"
                )
            for req, batch in samples:
                direct = ds.query(req)
                if direct.batch.positions.tobytes() != batch.positions.tobytes():
                    raise RuntimeError(f"{label}: positions differ from direct")
                for k, v in batch.attributes.items():
                    if direct.batch.attributes[k].tobytes() != v.tobytes():
                        raise RuntimeError(f"{label}: column {k} differs")
                checked += 1
        lat = sorted(latencies)
        decoded = sum(
            t["decoded_bytes"]
            for t in tele["steps"].get("0", {}).get("leaves", {}).values()
        )
        return {
            "generation": generation,
            "requests": len(trace),
            "files_opened": opens,
            "decoded_bytes": decoded,
            "column_cache": cache_stats.get("column_cache", {}),
            "latency_ms": {
                "p50": 1e3 * percentile(lat, 50),
                "p99": 1e3 * percentile(lat, 99),
            },
            "identity_samples_checked": checked,
            "telemetry": tele,
        }

    before = _phase("before")
    reorg_report = reorganize(
        manifest,
        before.pop("telemetry"),
        step=0,
        config=ReorgConfig(min_queries=8, min_box_queries=4),
    )
    after = _phase("after")
    after.pop("telemetry")

    def _reduction(metric: str) -> float:
        b = before[metric]
        return (b - after[metric]) / b if b else 0.0

    results = {
        "before": before,
        "after": after,
        "reorg": reorg_report.to_doc(),
        "files_opened_reduction": _reduction("files_opened"),
        "decoded_bytes_reduction": _reduction("decoded_bytes"),
        "p99_ratio": (
            after["latency_ms"]["p99"] / before["latency_ms"]["p99"]
            if before["latency_ms"]["p99"]
            else 1.0
        ),
    }
    return {
        "benchmark": "reorg",
        "nranks": nranks,
        "particles_per_rank": particles_per_rank,
        "target_size": target_size,
        "n_files": report.n_files,
        "rounds": rounds,
        "results": results,
    }


def neighbors_benchmark(
    out_dir,
    nranks: int = 128,
    scale: float = 0.015,
    target_size: int = 8 * 1024,
    timestep: int = 600,
    knn_centers: int = 24,
    k: int = 16,
    sph_h: float = 0.05,
    fof_link: float = 0.015,
    seed: int = 0,
) -> dict:
    """Neighbor queries on the dam-break workload: tree vs brute oracle.

    Writes one dam-break timestep as a v4 multi-file dataset, then runs
    three neighbor workloads with both engines:

    - **knn** — k-NN lists at point centers clustered inside one
      interior leaf (the zoom-in analysis pattern);
    - **sph** — fixed-radius lists (SPH cubic-spline smoothing of the
      pressure field) over a slab hugging one leaf's bounds, so every
      boundary ball needs ghost strips from the adjacent files;
    - **fof** — a friends-of-friends pass over the same slab.

    For every workload the tree engine's lists must be byte-identical to
    the brute-force reference; reported alongside the timings are the
    files each engine opened (brute == the naive halo-full-read plan:
    every candidate file, read fully) and the ghost-exchange volume, the
    quantities the regression gate thresholds.
    """
    from ..analysis import cubic_spline_kernel
    from ..api import NeighborRequest
    from ..bat.builder import BATBuildConfig
    from ..machines import testing_machine
    from ..types import Box
    from ..workloads import DamBreak

    out_dir = Path(out_dir)
    dam = DamBreak(seed=seed)
    data = dam.rank_data(timestep, nranks, scale=scale, materialize=True)
    writer = TwoPhaseWriter(
        testing_machine(),
        target_size=target_size,
        bat_config=BATBuildConfig(quantize_positions=True, compress=True),
    )
    writer.write(data, out_dir=out_dir, name="neigh")

    rng = np.random.default_rng(seed)
    results: dict = {}
    identity_ok = True

    with BATDataset(out_dir / "neigh.meta.json") as ds:
        n_files = ds.metadata.n_files
        leaves = sorted(ds.metadata.leaves, key=lambda l: l.count)
        mid = leaves[len(leaves) // 2].bounds
        eps = 1e-4
        slab = Box(
            tuple(v + eps for v in mid.lower),
            tuple(v - eps for v in mid.upper),
        )
        lo = np.asarray(mid.lower)
        hi = np.asarray(mid.upper)
        pts = tuple(
            tuple(float(v) for v in p)
            for p in lo + rng.random((knn_centers, 3)) * (hi - lo)
        )

        workloads = {
            "knn": NeighborRequest(points=pts, k=k),
            "sph": NeighborRequest(center_box=slab, radius=sph_h),
            "fof": NeighborRequest(center_box=slab, radius=fof_link, columns=()),
        }
        for name, req in workloads.items():
            row: dict = {}
            for engine in ("tree", "brute"):
                t0 = time.perf_counter()
                res = ds.neighbors(replace(req, engine=engine))
                seconds = time.perf_counter() - t0
                s = res.stats
                row[engine] = {
                    "seconds": seconds,
                    "files_opened": s.files_opened,
                    "ghost_files_opened": s.ghost_files_opened,
                    "ghost_points": s.ghost_points,
                    "pruned_files": s.pruned_files,
                    "pairs_tested": s.pairs_tested,
                    "points_returned": s.points_returned,
                    "decoded_bytes": s.decoded_bytes,
                }
                row.setdefault("_res", {})[engine] = res
            a, b = row["_res"]["tree"], row["_res"]["brute"]
            if a.batch.positions is None or b.batch.positions is None:
                pos_same = a.batch.positions is None and b.batch.positions is None
            else:
                pos_same = a.batch.positions.tobytes() == b.batch.positions.tobytes()
            same = (
                np.array_equal(a.offsets, b.offsets)
                and np.array_equal(a.keys, b.keys)
                and np.array_equal(a.distances, b.distances)
                and pos_same
                and sorted(a.batch.attributes) == sorted(b.batch.attributes)
                and all(
                    a.batch.attributes[n2].tobytes() == b.batch.attributes[n2].tobytes()
                    for n2 in a.batch.attributes
                )
            )
            row["identical"] = bool(same)
            identity_ok = identity_ok and bool(same)
            row["n_centers"] = a.n_centers
            row["n_neighbors"] = len(a)
            del row["_res"]
            results[name] = row

        # the SPH smoothing consumes the fixed-radius lists end to end
        sph = ds.neighbors(
            NeighborRequest(center_box=slab, radius=sph_h, columns=("pressure",))
        )
        w = cubic_spline_kernel(sph.distances, sph_h)
        c = np.concatenate([[0.0], np.cumsum(w, dtype=np.float64)])
        den = c[sph.offsets[1:]] - c[sph.offsets[:-1]]
        results["sph"]["kernel_pairs"] = int(len(w))
        results["sph"]["covered_centers"] = int((den > 0).sum())

        # naive halo-full-read volume: every file the halo touches, in full
        halo = Box(
            tuple(v - sph_h for v in slab.lower),
            tuple(v + sph_h for v in slab.upper),
        )
        naive_points = sum(
            l.count for l in ds.metadata.leaves if l.bounds.intersects(halo)
        )
        total_particles = ds.total_particles

    tree_files = sum(r["tree"]["files_opened"] for r in results.values())
    brute_files = sum(r["brute"]["files_opened"] for r in results.values())
    tree_seconds = sum(r["tree"]["seconds"] for r in results.values())
    brute_seconds = sum(r["brute"]["seconds"] for r in results.values())
    ghost_points = results["sph"]["tree"]["ghost_points"]
    return {
        "benchmark": "neighbors",
        "config": {
            "nranks": nranks,
            "scale": scale,
            "target_size": target_size,
            "timestep": timestep,
            "knn_centers": knn_centers,
            "k": k,
            "sph_h": sph_h,
            "fof_link": fof_link,
            "seed": seed,
        },
        "n_files": n_files,
        "total_particles": int(total_particles),
        "results": results,
        "summary": {
            "byte_identity_ok": bool(identity_ok),
            "tree_files_opened": int(tree_files),
            "brute_files_opened": int(brute_files),
            #: the headline: how many fewer file opens than the naive
            #: open-everything baseline across the whole workload mix
            "files_opened_ratio": (
                brute_files / tree_files if tree_files else float("inf")
            ),
            "tree_seconds": tree_seconds,
            "brute_seconds": brute_seconds,
            "speedup_vs_brute": (
                brute_seconds / tree_seconds if tree_seconds else float("inf")
            ),
            "ghost_points": int(ghost_points),
            #: points a halo-full-read plan would decode for the SPH slab
            "naive_halo_points": int(naive_points),
        },
    }


def record_benchmark(path, payload: dict) -> dict:
    """Write one BENCH_*.json perf data point with environment context.

    The JSON is self-describing (core count, versions, platform) so later
    PRs can compare points across machines honestly.
    """
    doc = {
        "schema": "repro-bench/1",
        "recorded_unix": time.time(),
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        **payload,
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return doc


def progressive_read_benchmark(
    metadata_path, steps: int = 10, start_quality: float = 0.1
) -> dict:
    """Tables I–II: real single-threaded progressive read timing.

    Starting at ``start_quality``, requests successively higher quality in
    equal increments until the full data set is loaded, timing traversal
    plus per-point processing — the paper's desktop methodology.
    """
    with BATDataset(metadata_path) as ds:
        qualities = np.linspace(start_quality, 1.0, steps)
        prev = 0.0
        times = []
        points = []
        for q in qualities:
            t0 = time.perf_counter()
            batch, _ = ds.query(QueryRequest(quality=float(q), prev_quality=prev))
            dt = time.perf_counter() - t0
            times.append(dt)
            points.append(len(batch))
            prev = float(q)
        total_pts = int(np.sum(points))
        total_time = float(np.sum(times))
        return {
            "avg_read_ms": 1e3 * total_time / len(times),
            "throughput_pts_per_ms": total_pts / (1e3 * total_time) if total_time else 0.0,
            "total_points": total_pts,
            "per_step_ms": [1e3 * t for t in times],
            "per_step_points": points,
        }
