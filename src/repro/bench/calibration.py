"""Calibration of the machine models against observed behaviour.

The virtual machines in :mod:`repro.machines` are calibrated so the
paper's crossovers land near the observed rank counts (DESIGN.md §2).
This module makes that calibration *programmatic* and checkable:

- :func:`fpp_knee` scans the modeled file-per-process weak-scaling curve
  and returns the rank count where bandwidth stops growing — the knee the
  paper reports at 1536 ranks (Stampede2) / 672 (Summit);
- :func:`fpp_saturation_bandwidth` gives the closed-form plateau the FPP
  curve saturates at, and :func:`solve_create_rate` inverts it — given a
  desired plateau, what metadata create rate produces it;
- :func:`measure_bat_build_rate` measures this host's real BAT build
  throughput (particles/second), the quantity the paper's Fig 6 discussion
  compares across CPUs — useful when retargeting the compute model at a
  different machine.

Keeping calibration executable means the presets cannot silently drift
from their rationale.
"""

from __future__ import annotations

import time

import numpy as np

from ..machines import MachineSpec

__all__ = [
    "fpp_knee",
    "fpp_saturation_bandwidth",
    "solve_create_rate",
    "measure_bat_build_rate",
]


def fpp_bandwidth(machine: MachineSpec, nranks: int, bytes_per_rank: float = 4.06e6) -> float:
    """Modeled file-per-process write bandwidth at one rank count."""
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    fs = machine.fs_model()
    t = float(fs.independent_write(np.full(nranks, bytes_per_rank)).max())
    return nranks * bytes_per_rank / t if t > 0 else 0.0


def fpp_knee(
    machine: MachineSpec,
    bytes_per_rank: float = 4.06e6,
    rank_range: tuple[int, int] = (16, 1 << 20),
    growth_threshold: float = 1.10,
) -> int:
    """Rank count where FPP bandwidth stops growing.

    Scans doublings of the rank count and returns the first P whose
    bandwidth is within ``growth_threshold`` of the bandwidth at 2P — i.e.
    a further doubling buys less than ~10 %.
    """
    p = rank_range[0]
    bw = fpp_bandwidth(machine, p, bytes_per_rank)
    while p <= rank_range[1]:
        bw_next = fpp_bandwidth(machine, 2 * p, bytes_per_rank)
        if bw_next < growth_threshold * bw:
            return p
        p *= 2
        bw = bw_next
    return rank_range[1]


def fpp_saturation_bandwidth(machine: MachineSpec, bytes_per_rank: float = 4.06e6) -> float:
    """Closed-form FPP plateau.

    At scale both the create storm and the payload write grow linearly in
    P, so bandwidth saturates at ``1 / (1/(create_rate·b) + 1/peak)`` —
    the harmonic combination of the metadata-limited and bandwidth-limited
    ceilings.
    """
    spec = machine.filesystem
    meta_ceiling = spec.create_rate * bytes_per_rank
    return 1.0 / (1.0 / meta_ceiling + 1.0 / spec.peak_write_bw)


def solve_create_rate(
    machine: MachineSpec, target_plateau_bw: float, bytes_per_rank: float = 4.06e6
) -> float:
    """Create rate whose FPP plateau equals ``target_plateau_bw``.

    Inverts :func:`fpp_saturation_bandwidth`. The target must lie below
    the filesystem's peak bandwidth (the plateau can never exceed it).
    """
    peak = machine.filesystem.peak_write_bw
    if not 0 < target_plateau_bw < peak:
        raise ValueError("target plateau must be in (0, peak_write_bw)")
    meta_ceiling = 1.0 / (1.0 / target_plateau_bw - 1.0 / peak)
    return meta_ceiling / bytes_per_rank


def measure_bat_build_rate(n_particles: int = 200_000, n_attrs: int = 7, seed: int = 0) -> float:
    """Measured BAT build throughput on this host, in particles/second.

    Builds a real BAT over synthetic data and times it — the constant that
    would replace ``MachineSpec.bat_build_rate`` when modeling this host.
    """
    from ..bat import build_bat
    from ..types import ParticleBatch

    rng = np.random.default_rng(seed)
    batch = ParticleBatch(
        rng.random((n_particles, 3)).astype(np.float32),
        {f"a{i}": rng.random(n_particles) for i in range(n_attrs)},
    )
    t0 = time.perf_counter()
    build_bat(batch)
    dt = time.perf_counter() - t0
    return n_particles / dt
