"""Plain-text renderers for benchmark results.

The paper's figures are bandwidth-vs-scale curves and stacked breakdowns;
these helpers print them as aligned text tables so ``pytest benchmarks/``
output is directly comparable against the published plots.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series", "gb"]


def gb(x: float) -> str:
    """Bytes/s rendered as GB/s with sensible precision."""
    return f"{x / 1e9:.2f}"


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    points,
    x_key: str,
    y_key: str,
    label_key: str = "label",
    title: str | None = None,
    y_format=gb,
) -> str:
    """Pivot a list of records into one column per series label.

    ``points`` may be dataclass instances or dicts.
    """

    def get(p, key):
        return p[key] if isinstance(p, dict) else getattr(p, key)

    labels = []
    xs = []
    for p in points:
        l = get(p, label_key)
        x = get(p, x_key)
        if l not in labels:
            labels.append(l)
        if x not in xs:
            xs.append(x)
    table = {(get(p, x_key), get(p, label_key)): get(p, y_key) for p in points}
    headers = [x_key] + [str(l) for l in labels]
    rows = []
    for x in xs:
        row = [x]
        for l in labels:
            v = table.get((x, l))
            row.append(y_format(v) if v is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
