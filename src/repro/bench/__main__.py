"""Benchmark entry point recording BENCH_*.json perf data points.

Usage::

    python -m repro.bench --record BENCH_ci.json
    python -m repro.bench --executors serial,process:4 --ranks 64 \
        --particles 50000 --record BENCH_pr1.json
    python -m repro.bench --suite read --record BENCH_pr2.json
    python -m repro.bench --suite serve --capacity 2 --record BENCH_pr3.json

``--suite write`` (default) runs the real wall-clock multi-aggregator
write+query benchmark once per executor, cross-checking that every
executor produced byte-identical files and identical query answers.
``--suite read`` runs the read-path benchmark: the same workload queried
through each traversal engine (recursive reference vs vectorized
frontier) behind the metadata query planner, cross-checking that every
engine returns identical results. ``--suite serve`` replays concurrent
zoom/pan/filter session traces through the admission-controlled query
service at 2× capacity (by default), reporting throughput, p50/p99
latency, queue depth, degradation activity, and cache hit rates, with a
sample of served responses byte-checked against direct dataset queries.
``--suite stream`` replays an asyncio thundering herd — an order of
magnitude more sessions than ``serve``, all piling onto a few shared hot
views and consuming streamed increments — twice, with the in-flight
request-collapse table off and on, reporting collapse hit rate, decode
work saved, time-to-first-increment, and p50/p99 latency, with responses
byte-checked against direct queries in both runs.
``--suite faults`` repeats the write under injected faults (torn writes,
bit flips, dropped/duplicated aggregator messages, aggregator death) and
proves recovery: the faulted run must publish byte-identical files to a
fault-free run, scrub clean, and — after a deliberate post-hoc
corruption — localize the damage to the exact section and serve a
degraded partial response. ``--suite compress`` writes one structured
workload as plain v3 and as v4 with automatic per-column codecs,
reporting the on-disk reduction, per-column codec choices, and the
lazy-decode savings of single-column reads, with every v4 query
byte-checked against the v3 baseline and a v2/v3/v4 single-file compat
sweep. Either way, ``--record`` writes the JSON data point every PR is
expected to leave behind.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from .harness import (
    compression_benchmark,
    fault_injection_benchmark,
    neighbors_benchmark,
    parallel_write_query_benchmark,
    read_path_benchmark,
    record_benchmark,
    reorg_benchmark,
    serve_benchmark,
    shard_benchmark,
    stream_benchmark,
)


def _run_write(args) -> dict:
    executors = [s.strip() for s in args.executors.split(",") if s.strip()]

    def run(out_dir):
        return parallel_write_query_benchmark(
            out_dir,
            executors=executors,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            n_attributes=args.attributes,
            target_size=args.target_kb * 1024,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    rows = payload["results"]
    print(
        f"parallel write+query: {args.ranks} ranks x {args.particles} particles, "
        f"{rows[0]['n_files']} files"
    )
    for r in rows:
        print(
            f"  {r['executor']:<12} write {r['write_seconds']:7.3f}s "
            f"({r['write_speedup_vs_serial']:4.2f}x)   "
            f"query {r['query_seconds']:7.3f}s ({r['query_speedup_vs_serial']:4.2f}x)"
        )
    print("  all executors byte-identical: ok")
    return payload


def _run_read(args) -> dict:
    def run(out_dir):
        return read_path_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            n_attributes=args.attributes,
            target_size=args.target_kb * 1024,
            repeats=args.repeats,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    print(
        f"read path: {args.ranks} ranks x {args.particles} particles, "
        f"{payload['n_files']} files"
    )
    for r in payload["results"]:
        print(f"  engine {r['engine']}")
        for case, c in r["cases"].items():
            speed = r["speedup_vs_recursive"][case]
            print(
                f"    {case:<22} {1e3 * c['seconds']:8.2f} ms ({speed:4.2f}x)  "
                f"points {c['points']:>8}  pruned_files {c['pruned_files']:>3}  "
                f"opened {c['files_opened']:>3}"
            )
    print("  all engines identical results: ok")
    return payload


def _run_serve(args) -> dict:
    def run(out_dir):
        return serve_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            n_attributes=args.attributes,
            target_size=args.target_kb * 1024,
            capacity=args.capacity,
            concurrency=args.concurrency,
            sessions=args.sessions,
            ops_per_session=args.ops,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    r = payload["results"]
    sched = r["service"]["scheduler"]
    degr = r["service"]["degradation"]
    caches = r["service"]["caches"]
    print(
        f"serve: {payload['sessions']} sessions x {payload['ops_per_session']} ops, "
        f"{payload['concurrency']} clients over capacity {payload['capacity']} "
        f"({payload['n_files']} files)"
    )
    print(
        f"  throughput {r['throughput_rps']:7.1f} req/s   "
        f"p50 {r['latency_ms']['p50']:7.2f} ms   p99 {r['latency_ms']['p99']:7.2f} ms"
    )
    print(
        f"  queue depth max {sched['max_queue_depth']} (bound {sched['max_queued']})   "
        f"rejected {r['rejected']}   in-flight cap {sched['capacity']}"
    )
    print(
        f"  degradation: {degr['downgrades']} downgrades, "
        f"{degr['engagements']} engagements, {degr['releases']} releases "
        f"(cap now {degr['cap']:.2f})"
    )
    print(
        f"  caches: results {caches['results']['hit_rate']:.0%} hit, "
        f"plans {caches['plans']['hits']}/{caches['plans']['hits'] + caches['plans']['misses']} hit, "
        f"files {caches['files']['hit_rate']:.0%} hit"
    )
    print(f"  identity samples byte-checked vs direct queries: {r['identity_samples_checked']} ok")
    return payload


def _run_stream(args) -> dict:
    def run(out_dir):
        return stream_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            n_attributes=args.attributes,
            target_size=args.target_kb * 1024,
            capacity=args.capacity,
            sessions=args.sessions,
            ops_per_session=args.ops,
            n_views=args.views,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    r = payload["results"]
    base, coll = r["variants"]["no-collapse"], r["variants"]["collapse"]
    print(
        f"stream: {payload['sessions']} asyncio sessions x "
        f"{payload['ops_per_session']} ops over {payload['n_views']} hot views, "
        f"capacity {payload['capacity']} ({payload['n_files']} files)"
    )
    for name, v in r["variants"].items():
        print(
            f"  {name:<12} p50 {v['latency_ms']['p50']:8.2f} ms   "
            f"p99 {v['latency_ms']['p99']:8.2f} ms   "
            f"ttfi p50 {v['ttfi_ms']['p50']:7.2f} ms   "
            f"decoded {v['decoded_bytes'] / 1e6:7.2f} MB   "
            f"collapsed {v['collapsed']:>4}   shed {v['shed']:>3}"
        )
    print(
        f"  collapse hit rate {r['collapse_hit_rate']:.1%}; decode work saved "
        f"{r['decoded_bytes_saved'] / 1e6:.2f} MB "
        f"({r['decoded_bytes_saved_frac']:.1%} of baseline)"
    )
    print(
        f"  identity samples byte-checked vs direct queries: "
        f"{base['identity_samples_checked']} + {coll['identity_samples_checked']} ok"
    )
    return payload


def _run_shard(args) -> dict:
    def run(out_dir):
        return shard_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            n_attributes=args.attributes,
            target_size=args.target_kb * 1024,
            capacity=args.capacity,
            concurrency=args.concurrency,
            sessions=args.sessions,
            ops_per_session=args.ops,
            n_views=args.views,
            n_shards=args.shards,
            n_jobs=args.jobs,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    r = payload["results"]
    print(
        f"shard: {payload['sessions']} sessions x {payload['ops_per_session']} ops "
        f"over {payload['n_views']} hot views, {payload['n_shards']} shard "
        f"processes vs one ({payload['n_files']} files, capacity "
        f"{payload['capacity']})"
    )
    for name, v in r["variants"].items():
        print(
            f"  {name:<8} {v['throughput_rps']:7.1f} req/s   "
            f"p50 {v['latency_ms']['p50']:8.2f} ms   "
            f"p99 {v['latency_ms']['p99']:8.2f} ms   "
            f"rejected {v['rejected']:>4}"
        )
    for w in r["per_shard"]:
        print(
            f"    shard {w['shard']}: {w['completed']} scattered windows over "
            f"{w['owned_leaves']} owned leaves, "
            f"p50 {w['latency_ms']['p50']:.2f} ms, p99 {w['latency_ms']['p99']:.2f} ms"
        )
    fan = r["variants"]["sharded"]["fanout"]
    job = r["job"]
    print(
        f"  scatter-gather overhead {r['scatter_gather_overhead_x']:.2f}x p50; "
        f"fanout mean {fan['fanout_mean']:.2f} "
        f"({fan['fanout_multi']} multi-shard scatters)"
    )
    print(
        f"  job drill: {job['counts']['done']}/{job['tasks']} done after "
        f"runner+worker kill, {job['counts']['duplicate_acks']} duplicate acks, "
        f"{job['worker_restarts']} worker restarts, resume correctness ok"
    )
    print("  identity samples byte-checked vs direct queries: "
          f"{r['variants']['single']['identity_samples_checked']} + "
          f"{r['variants']['sharded']['identity_samples_checked']} ok")
    return payload


def _run_faults(args) -> dict:
    def run(out_dir):
        return fault_injection_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            n_attributes=args.attributes,
            target_size=args.target_kb * 1024,
            fault_seed=args.fault_seed,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    r = payload["results"]
    inj = r["injected"]
    print(
        f"fault injection: {args.ranks} ranks x {args.particles} particles, "
        f"{payload['n_files']} files"
    )
    print(
        f"  injected: {inj['injected_torn']} torn, {inj['injected_bit_flips']} bit flips, "
        f"{inj['dropped_messages']} dropped, {inj['duplicated_messages']} duplicated msgs, "
        f"{len(inj['dead_aggregators'])} dead aggregators "
        f"({inj['reassigned_leaves']} leaves reassigned)"
    )
    print(
        f"  recovery: {inj['retried_writes']} writes retried "
        f"({inj['write_attempts']} attempts total); files byte-identical to "
        f"fault-free run: ok; scrub clean: ok"
    )
    print(
        f"  deliberate corruption localized to section(s) {r['flagged_sections']}; "
        f"service degraded to {r['degraded_response']['points']} points "
        f"({r['degraded_response']['quarantined_files']} leaf quarantined)"
    )
    return payload


def _run_neighbors(args) -> dict:
    def run(out_dir):
        return neighbors_benchmark(out_dir)

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    s = payload["summary"]
    print(
        f"neighbors: {payload['total_particles']:,} particles in "
        f"{payload['n_files']} files; knn + sph + fof workloads"
    )
    for name, row in payload["results"].items():
        t, b = row["tree"], row["brute"]
        print(
            f"  {name}: {row['n_centers']} centers, {row['n_neighbors']:,} "
            f"neighbors; tree {t['seconds']:.3f}s/{t['files_opened']} files "
            f"({t['ghost_files_opened']} ghost) vs brute "
            f"{b['seconds']:.3f}s/{b['files_opened']} files; "
            f"identical: {'ok' if row['identical'] else 'MISMATCH'}"
        )
    print(
        f"  files opened: {s['tree_files_opened']} vs {s['brute_files_opened']} "
        f"naive ({s['files_opened_ratio']:.1f}x fewer), "
        f"{s['ghost_points']:,} ghost candidates exchanged "
        f"(naive halo read: {s['naive_halo_points']:,} points); "
        f"byte identity: {'ok' if s['byte_identity_ok'] else 'FAILED'}"
    )
    return payload


def _run_reorg(args) -> dict:
    def run(out_dir):
        return reorg_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            target_size=args.target_kb * 1024,
            rounds=args.rounds,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    r = payload["results"]
    b, a = r["before"], r["after"]
    print(
        f"reorg: {args.ranks} ranks x {args.particles} particles, "
        f"{payload['n_files']} files, {b['requests']} requests per phase"
    )
    print(
        f"  generation {b['generation']} -> {a['generation']}: "
        f"{r['reorg']['leaves_before']} -> {r['reorg']['leaves_after']} leaves "
        f"({len(r['reorg']['files_written'])} files rewritten, "
        f"{r['reorg']['verified_points']} points verified)"
    )
    print(
        f"  files opened: {b['files_opened']} -> {a['files_opened']} "
        f"({100 * r['files_opened_reduction']:.1f}% fewer)"
    )
    print(
        f"  decoded bytes: {b['decoded_bytes']} -> {a['decoded_bytes']} "
        f"({100 * r['decoded_bytes_reduction']:.1f}% fewer)"
    )
    print(
        f"  p99 latency: {b['latency_ms']['p99']:.2f} -> "
        f"{a['latency_ms']['p99']:.2f} ms (ratio {r['p99_ratio']:.2f}); "
        f"identity samples checked: {b['identity_samples_checked']}"
        f" + {a['identity_samples_checked']}"
    )
    return payload


def _run_compress(args) -> dict:
    def run(out_dir):
        return compression_benchmark(
            out_dir,
            nranks=args.ranks,
            particles_per_rank=args.particles,
            target_size=args.target_kb * 1024,
            lossy_bits=args.lossy_bits,
        )

    if args.out_dir is not None:
        payload = run(args.out_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            payload = run(tmp)

    r = payload["results"]
    v3, v4 = r["variants"]["v3"], r["variants"]["v4-auto"]
    print(
        f"compression: {payload['nranks']} ranks x {payload['particles_per_rank']} "
        f"particles"
    )
    print(
        f"  on disk: v3 {v3['disk_bytes'] / 1e6:7.2f} MB -> "
        f"v4 {v4['disk_bytes'] / 1e6:7.2f} MB  ({r['disk_reduction_x']:.2f}x smaller)"
    )
    for col, codec in sorted(v4["codec_table"].items()):
        print(f"    column {col:<10} codec {codec}")
    print(
        f"  full read: v3 {v3['query_seconds']:6.3f}s   v4 {v4['query_seconds']:6.3f}s"
    )
    print(
        f"  one-column read decoded {r['lazy_decode_fraction']:.1%} of the payload "
        f"({v4['decoded_bytes_one_column']:,} B)"
    )
    if "lossy" in r:
        lossy = r["lossy"]
        print(
            f"  lossy {lossy['codec']}: temp {lossy['temp_raw_nbytes']:,} -> "
            f"{lossy['temp_enc_nbytes']:,} B, max error "
            f"{lossy['max_observed_error']:g} <= bound {lossy['recorded_error_bound']:g}"
        )
    print("  codec kernels (measured, best-of-3):")
    for name, t in r["codec_throughput_mb_per_s"].items():
        print(
            f"    {name:<12} encode {t['encode_mb_per_s']:8.1f} MB/s   "
            f"decode {t['decode_mb_per_s']:8.1f} MB/s"
        )
    print("  v4 queries byte-identical to v3; v2/v3/v4 compat sweep identical: ok")
    return payload


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--suite",
        choices=("write", "parallel", "read", "serve", "stream", "shard",
                 "faults", "compress", "reorg", "neighbors"),
        default="write",
        help="write (alias: parallel): multi-executor write+query; read: "
             "planner + engine comparison; serve: concurrent service under "
             "load; stream: asyncio streaming herd, collapse on vs off; "
             "shard: N worker processes vs one, plus the job-queue "
             "crash-resume drill; faults: write under injected faults, "
             "prove recovery + degraded reads; compress: v4 column codecs "
             "vs the v3 baseline; reorg: hot-view trace before vs after "
             "telemetry-driven layout reorganization; neighbors: k-NN and "
             "fixed-radius neighbor lists, tree engine vs brute-force "
             "oracle with ghost-region exchange",
    )
    p.add_argument(
        "--executors",
        default="serial,thread,process",
        help="comma-separated executor specs (see repro.parallel; write suite)",
    )
    p.add_argument("--ranks", type=int, default=32, help="writing ranks")
    p.add_argument("--particles", type=int, default=20_000, help="particles per rank")
    p.add_argument("--attributes", type=int, default=4, help="attributes per particle")
    p.add_argument(
        "--target-kb", type=int, default=256, help="aggregation target size (KiB)"
    )
    p.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (read suite)"
    )
    p.add_argument(
        "--capacity", type=int, default=2,
        help="serve suite: concurrent in-flight query limit (worker threads)",
    )
    p.add_argument(
        "--concurrency", type=int, default=None,
        help="serve suite: load-generator client threads (default 2x capacity)",
    )
    p.add_argument(
        "--sessions", type=int, default=None,
        help="serve/stream suites: session traces to replay "
             "(default 12 for serve, 120 for stream)",
    )
    p.add_argument(
        "--views", type=int, default=4,
        help="stream suite: shared hot views the sessions pile onto",
    )
    p.add_argument(
        "--shards", type=int, default=2,
        help="shard suite: worker processes behind the router",
    )
    p.add_argument(
        "--jobs", type=int, default=48,
        help="shard suite: sweep size of the job-queue crash-resume drill",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="faults suite: RNG seed of the injected fault plan",
    )
    p.add_argument(
        "--ops", type=int, default=6, help="serve suite: requests per session trace"
    )
    p.add_argument(
        "--rounds", type=int, default=40,
        help="reorg suite: hot-view trace rounds replayed per phase",
    )
    p.add_argument(
        "--lossy-bits", type=int, default=12,
        help="compress suite: also demonstrate quantize<N> on one column "
             "(0 disables the lossy leg)",
    )
    p.add_argument("--out-dir", default=None, help="keep written files here (default: temp)")
    p.add_argument("--record", default=None, help="write the BENCH_<tag>.json data point here")
    args = p.parse_args(argv)

    if args.sessions is None:
        if args.suite == "stream":
            args.sessions = 120
        elif args.suite == "shard":
            args.sessions = 480
        else:
            args.sessions = 12

    if args.suite == "read":
        payload = _run_read(args)
    elif args.suite == "serve":
        payload = _run_serve(args)
    elif args.suite == "stream":
        payload = _run_stream(args)
    elif args.suite == "shard":
        payload = _run_shard(args)
    elif args.suite == "faults":
        payload = _run_faults(args)
    elif args.suite == "compress":
        if args.lossy_bits == 0:
            args.lossy_bits = None
        payload = _run_compress(args)
    elif args.suite == "reorg":
        payload = _run_reorg(args)
    elif args.suite == "neighbors":
        payload = _run_neighbors(args)
    else:
        payload = _run_write(args)

    if args.record:
        doc = record_benchmark(args.record, payload)
        print(f"recorded {args.record} (cores={doc['environment']['cpu_count']})")
    else:
        json.dump(payload, sys.stdout, indent=1)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
