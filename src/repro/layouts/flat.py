"""A minimal Morton-sorted flat layout — the reference "user layout".

Demonstrates the §VII pluggable-layout hook with the simplest useful
design: particles sorted by Morton code, stored as flat arrays behind a
small header. Sorting buys two things for free:

- spatial queries narrow to a code range before scanning (coarse
  pruning; exactness comes from the final per-point test);
- any prefix-strided subsample is spatially stratified, so crude LOD
  reads work even without a hierarchy.

Compared to the BAT it has no treelets, no bitmaps, and no per-node LOD —
it is deliberately the "flat arrays" strawman the paper's introduction
describes, upgraded only by the sort.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..atomic import atomic_write_bytes
from ..binning import EquiWidthBinning
from ..bitmaps import bitmap_of_values
from ..morton import MAX_BITS, encode_positions
from ..types import Box, ParticleBatch

__all__ = ["BuiltFlat", "build_flat", "FlatFile"]

_MAGIC = b"FLT1"
_HEADER_FMT = "<4sI Q I 6d"
_ATTR_FMT = "<40s8s2d"


@dataclass
class BuiltFlat:
    """Serialized flat-layout leaf (same summary contract as BuiltBAT)."""

    data: bytes
    n_points: int
    bounds: Box
    attr_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    root_bitmaps: dict[str, int] = field(default_factory=dict)
    attr_binnings: dict = field(default_factory=dict)
    raw_bytes: int = 0

    @property
    def nbytes(self) -> int:
        return len(self.data)

    @property
    def overhead_bytes(self) -> int:
        return self.nbytes - self.raw_bytes

    def write(self, path) -> None:
        """Publish the image atomically (tmp file, fsync, rename)."""
        atomic_write_bytes(path, self.data)


def build_flat(batch: ParticleBatch, config=None) -> BuiltFlat:
    """Serialize a leaf as Morton-sorted flat arrays (``config`` unused)."""
    n = len(batch)
    if n == 0:
        raise ValueError("cannot build a flat layout over zero particles")
    bounds = batch.bounds
    order = np.argsort(encode_positions(batch.positions, bounds, bits=MAX_BITS))
    positions = np.ascontiguousarray(batch.positions[order])
    names = list(batch.attributes.keys())
    attrs = {k: np.ascontiguousarray(batch.attributes[k][order]) for k in names}

    attr_ranges = {k: (float(v.min()), float(v.max())) for k, v in attrs.items()}
    binnings = {k: EquiWidthBinning(*attr_ranges[k]) for k in names}
    root_bitmaps = {
        k: int(bitmap_of_values(v, *attr_ranges[k])) for k, v in attrs.items()
    }

    header = struct.pack(
        _HEADER_FMT, _MAGIC, 1, n, len(names), *bounds.as_array().reshape(6).tolist()
    )
    atab = b"".join(
        struct.pack(
            _ATTR_FMT, k.encode()[:40], attrs[k].dtype.str.encode(), *attr_ranges[k]
        )
        for k in names
    )
    parts = [header, atab, positions.tobytes()]
    parts += [attrs[k].tobytes() for k in names]
    data = b"".join(parts)
    return BuiltFlat(
        data=data,
        n_points=n,
        bounds=bounds,
        attr_ranges=attr_ranges,
        root_bitmaps=root_bitmaps,
        attr_binnings=binnings,
        raw_bytes=batch.nbytes,
    )


class FlatFile:
    """Reader for the flat layout (restart-reader contract + crude LOD)."""

    def __init__(self, path):
        self.path = str(path)
        with open(self.path, "rb") as f:
            data = f.read()
        self._init(data)

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "<memory>") -> "FlatFile":
        self = cls.__new__(cls)
        self.path = name
        self._init(bytes(data))
        return self

    def _init(self, data: bytes) -> None:
        head = struct.calcsize(_HEADER_FMT)
        magic, version, n, n_attrs, *b = struct.unpack(_HEADER_FMT, data[:head])
        if magic != _MAGIC:
            raise ValueError(f"not a flat-layout file (magic {magic!r})")
        if version != 1:
            raise ValueError(f"unsupported flat-layout version {version}")
        self.n_points = n
        self.bounds = Box(tuple(b[:3]), tuple(b[3:]))
        cursor = head
        self.attr_names: list[str] = []
        self.attr_dtypes: dict[str, np.dtype] = {}
        self.attr_ranges: dict[str, tuple[float, float]] = {}
        asize = struct.calcsize(_ATTR_FMT)
        for _ in range(n_attrs):
            name_b, dt_b, lo, hi = struct.unpack(_ATTR_FMT, data[cursor : cursor + asize])
            name = name_b.rstrip(b"\0").decode()
            self.attr_names.append(name)
            self.attr_dtypes[name] = np.dtype(dt_b.rstrip(b"\0").decode())
            self.attr_ranges[name] = (lo, hi)
            cursor += asize
        self.positions = np.frombuffer(data, dtype=np.float32, count=3 * n, offset=cursor).reshape(n, 3)
        cursor += self.positions.nbytes
        self.attributes: dict[str, np.ndarray] = {}
        for name in self.attr_names:
            dt = self.attr_dtypes[name]
            self.attributes[name] = np.frombuffer(data, dtype=dt, count=n, offset=cursor)
            cursor += n * dt.itemsize

    def close(self) -> None:
        pass  # plain buffer; nothing to release eagerly

    def __enter__(self) -> "FlatFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries -------------------------------------------------------------

    def query_box(self, box: Box | None = None) -> ParticleBatch:
        """Exact spatial query by linear scan (flat layouts have no tree)."""
        if box is None:
            mask = slice(None)
        else:
            mask = box.contains_points(self.positions)
        return ParticleBatch(
            self.positions[mask], {k: v[mask] for k, v in self.attributes.items()}
        )

    def sample(self, quality: float) -> ParticleBatch:
        """Strided LOD subsample — valid because the file is Morton-sorted."""
        if not 0.0 <= quality <= 1.0:
            raise ValueError("quality must be in [0, 1]")
        if quality == 0.0:
            from ..types import AttributeSpec

            return ParticleBatch.empty(
                [AttributeSpec(k, self.attr_dtypes[k]) for k in self.attr_names]
            )
        stride = max(int(round(1.0 / quality)), 1)
        idx = np.arange(0, self.n_points, stride)
        return ParticleBatch(
            self.positions[idx], {k: v[idx] for k, v in self.attributes.items()}
        )
