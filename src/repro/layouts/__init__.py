"""Pluggable aggregator layouts (paper §VII future work).

§VII: "Allowing users to build their own data layout would ease adoption
of our method for simulation-analysis pipelines that already use a
specific layout. The layout would also be available in situ..." — the
two-phase pipeline's load balancing only depends on input sizes, so any
layout can ride on it.

A layout is registered under a name and provides:

``build(batch, config=None) -> built``
    Serialize one aggregation leaf. The result must expose ``data``
    (bytes), ``nbytes``, ``attr_ranges``, ``root_bitmaps``,
    ``attr_binnings`` (may be empty), and ``write(path)``.
``open(path) -> reader``
    Open a written leaf; the reader must expose
    ``query_box(box) -> ParticleBatch`` and ``close()`` (what the restart
    reader needs).
``extension``
    File-name suffix for leaf files.

The BAT layout is the default; :mod:`repro.layouts.flat` registers a
minimal Morton-sorted flat layout as the reference second implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayoutSpec", "register_layout", "get_layout", "available_layouts"]


@dataclass(frozen=True)
class LayoutSpec:
    """One registered layout (see module docstring for the contracts)."""

    name: str
    build: object
    open: object
    extension: str


_REGISTRY: dict[str, LayoutSpec] = {}


def register_layout(spec: LayoutSpec) -> None:
    """Register (or replace) a layout under its name."""
    _REGISTRY[spec.name] = spec


def get_layout(name: str) -> LayoutSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown layout {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_layouts() -> list[str]:
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from ..bat.builder import build_bat
    from ..bat.file import BATFile
    from ..bat.query import query_file

    class _BATReader:
        """Adapter giving BATFile the restart-reader contract."""

        def __init__(self, path):
            self._f = BATFile(path)

        def query_box(self, box):
            batch, _ = query_file(self._f, box=box)
            return batch

        def close(self):
            self._f.close()

    register_layout(
        LayoutSpec(name="bat", build=build_bat, open=_BATReader, extension=".bat")
    )

    from .flat import FlatFile, build_flat

    register_layout(
        LayoutSpec(name="flat", build=build_flat, open=FlatFile, extension=".flat")
    )


_register_builtins()
