"""Level-of-detail presentation policy (paper §VI-B1, Fig 13).

At coarse quality levels only a subset of particles is loaded; rendering
them at their native radius would leave holes. The paper's example policy
increases the radius so the displayed set still covers roughly the same
volume: if a fraction *f* of particles is shown, each is drawn with radius
``r / f^(1/3)`` (volume conservation in 3D).
"""

from __future__ import annotations

from ..api import QueryRequest

__all__ = ["lod_radius", "quality_progression"]


def lod_radius(base_radius: float, shown_fraction: float) -> float:
    """Radius that preserves covered volume when showing a fraction of points."""
    if not 0.0 < shown_fraction <= 1.0:
        raise ValueError("shown_fraction must be in (0, 1]")
    if base_radius <= 0:
        raise ValueError("base_radius must be positive")
    return float(base_radius / shown_fraction ** (1.0 / 3.0))


def quality_progression(dataset, qualities=(0.2, 0.4, 0.8), base_radius: float = 1.0):
    """Point counts and LOD radii over a quality sweep (Fig 13's data).

    ``dataset`` is a :class:`~repro.core.dataset.BATDataset`. Returns one
    dict per quality with the loaded point count, shown fraction, and the
    radius the example policy would render with.
    """
    total = dataset.total_particles
    out = []
    for q in qualities:
        batch, stats = dataset.query(QueryRequest(quality=q))
        n = len(batch)
        frac = n / total if total else 0.0
        out.append(
            {
                "quality": float(q),
                "points": n,
                "fraction": frac,
                "radius": lod_radius(base_radius, max(frac, 1e-9)),
                "points_tested": stats.points_tested,
            }
        )
    return out
