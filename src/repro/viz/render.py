"""Density projections: text-mode stand-ins for the paper's renders.

Figs 8 and 13 are particle renders; in a text environment the comparable
artifact is a 2D density projection — rasterize particles along one axis
and show the mass distribution. The projection is also the right tool for
*testing* LOD fidelity: a good coarse level has a projection close to the
full data's (which is exactly what "preserve the overall shape of the
object" means, §VI-B1).
"""

from __future__ import annotations

import numpy as np

from ..types import Box

__all__ = ["density_projection", "ascii_render", "projection_similarity"]

_RAMP = " .:-=+*#%@"


def density_projection(
    positions: np.ndarray,
    axis: int = 1,
    shape: tuple[int, int] = (48, 24),
    bounds: Box | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Project particles along ``axis`` onto a 2D count grid.

    The remaining two axes map to (columns, rows); rows are returned
    bottom-up (row 0 = lowest coordinate) so callers can flip for display.
    """
    pts = np.asarray(positions, dtype=np.float64).reshape(-1, 3)
    if axis not in (0, 1, 2):
        raise ValueError("axis must be 0, 1, or 2")
    cols_axis, rows_axis = [a for a in (0, 1, 2) if a != axis]
    nx, ny = shape
    if nx < 1 or ny < 1:
        raise ValueError("shape must be positive")
    box = bounds if bounds is not None else Box.of_points(pts)
    if box.is_empty:
        return np.zeros((ny, nx))
    lo = np.asarray(box.lower)
    ext = np.where(box.extents > 0, box.extents, 1.0)

    u = np.clip(((pts[:, cols_axis] - lo[cols_axis]) / ext[cols_axis] * nx), 0, nx - 1e-9)
    v = np.clip(((pts[:, rows_axis] - lo[rows_axis]) / ext[rows_axis] * ny), 0, ny - 1e-9)
    grid = np.zeros((ny, nx))
    np.add.at(grid, (v.astype(np.int64), u.astype(np.int64)),
              1.0 if weights is None else np.asarray(weights, dtype=np.float64))
    return grid


def ascii_render(grid: np.ndarray, log_scale: bool = True) -> str:
    """Render a density grid as ASCII art (top row = highest coordinate)."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError("grid must be 2D")
    vals = np.log1p(grid) if log_scale else grid
    peak = vals.max()
    if peak <= 0:
        return "\n".join(" " * grid.shape[1] for _ in range(grid.shape[0]))
    idx = np.clip((vals / peak * (len(_RAMP) - 1)).astype(int), 0, len(_RAMP) - 1)
    rows = ["".join(_RAMP[i] for i in row) for row in idx[::-1]]
    return "\n".join(rows)


def projection_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity of two density projections in [0, 1].

    One minus half the L1 distance between the normalized grids — 1.0 for
    identical shapes, 0.0 for disjoint mass. Used to score how well a
    coarse LOD level preserves the full data's shape.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("projections must have the same shape")
    sa, sb = a.sum(), b.sum()
    if sa <= 0 or sb <= 0:
        return 0.0
    return float(1.0 - 0.5 * np.abs(a / sa - b / sb).sum())
