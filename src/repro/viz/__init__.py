"""Visualization utilities: LOD presentation and progressive streaming.

The BAT layout "does not impose a specific visual representation" (§VI-B);
:mod:`repro.viz.lod` provides the paper's example policy — coarser quality
levels rendered with inflated particle radii to preserve overall shape —
and :mod:`repro.viz.server` reproduces the Fig 4 prototype: a server that
progressively streams increments of a BAT data set to clients with spatial
and attribute filtering.
"""

from .lod import lod_radius, quality_progression
from .render import ascii_render, density_projection, projection_similarity
from .server import ProgressiveStreamServer, StreamSession

__all__ = [
    "lod_radius",
    "quality_progression",
    "ProgressiveStreamServer",
    "StreamSession",
    "density_projection",
    "ascii_render",
    "projection_similarity",
]
