"""Progressive streaming prototype (paper §V-B, Fig 4).

The paper demonstrates a web viewer whose server uses the BAT layout to
progressively load and send data to clients, with spatial and attribute
filtering applied server-side. This module reproduces that architecture as
an in-process server: clients open sessions, each session tracks the
quality level already delivered, and every request returns only the
increment — exactly the progressive-read contract of the layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bat.query import AttributeFilter
from ..core.dataset import BATDataset
from ..core.planner import QueryPlan
from ..types import Box, ParticleBatch

__all__ = ["StreamSession", "ProgressiveStreamServer"]


@dataclass
class StreamSession:
    """One client's progressive view of the data set.

    Changing the spatial box or filters resets the progression (the server
    must re-stream matching data from the coarsest level).
    """

    session_id: int
    box: Box | None = None
    filters: tuple[AttributeFilter, ...] = ()
    delivered_quality: float = 0.0
    bytes_sent: int = 0
    requests: int = 0
    #: memoized file plan for the current view (plans are
    #: quality-independent, so one plan serves the whole progression)
    plan: QueryPlan | None = None

    def matches(self, box, filters) -> bool:
        return self.box == box and self.filters == tuple(filters)


class ProgressiveStreamServer:
    """Serves progressive increments of one BAT timestep to many clients."""

    def __init__(self, metadata_path):
        self.dataset = BATDataset(metadata_path)
        self._sessions: dict[int, StreamSession] = {}
        self._next_id = 0

    def close(self) -> None:
        self.dataset.close()

    def __enter__(self) -> "ProgressiveStreamServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- session management ---------------------------------------------------

    def open_session(self) -> int:
        sid = self._next_id
        self._next_id += 1
        self._sessions[sid] = StreamSession(session_id=sid)
        return sid

    def close_session(self, session_id: int) -> StreamSession:
        return self._sessions.pop(session_id)

    def session(self, session_id: int) -> StreamSession:
        return self._sessions[session_id]

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    # -- streaming ----------------------------------------------------------------

    def request(
        self,
        session_id: int,
        quality: float,
        box: Box | None = None,
        filters=(),
    ) -> ParticleBatch:
        """Return the increment needed to reach ``quality`` for this client.

        If the view (box/filters) changed since the last request, the
        progression restarts from zero. If ``quality`` is at or below what
        was already delivered for the same view, the increment is empty.
        """
        sess = self._sessions[session_id]
        filters = tuple(filters)
        if not sess.matches(box, filters):
            sess.box = box
            sess.filters = filters
            sess.delivered_quality = 0.0
            sess.plan = None
        if sess.plan is None:
            sess.plan = self.dataset.plan(box, filters)
        sess.requests += 1

        if quality <= sess.delivered_quality:
            return ParticleBatch.empty(self.dataset.attribute_specs())

        batch, _ = self.dataset.query(
            quality=quality,
            prev_quality=sess.delivered_quality,
            box=box,
            filters=filters,
            plan=sess.plan,
        )
        sess.delivered_quality = quality
        sess.bytes_sent += batch.nbytes
        return batch
