"""Progressive streaming prototype (paper §V-B, Fig 4).

The paper demonstrates a web viewer whose server uses the BAT layout to
progressively load and send data to clients, with spatial and attribute
filtering applied server-side. This module reproduces that architecture
as a thin, synchronous wrapper over the serve subsystem
(:class:`~repro.serve.service.QueryService`): clients open sessions, each
session tracks the quality level already delivered, and every request
returns only the increment — exactly the progressive-read contract of the
layout.

Sessions used to each pin their own query plan; routing through the
service means *all* sessions now share one plan cache, one file-handle
cache, one result cache, and one scheduler — two viewers looking at the
same region cost one traversal, not two. Adaptive degradation is
disabled by default here (an in-process viewer wants deterministic
full-quality increments); pass a :class:`~repro.serve.service.ServeConfig`
to turn it on.
"""

from __future__ import annotations

from ..api import QueryRequest
from ..serve.degrade import DegradationConfig
from ..serve.service import QueryService, ServeConfig, ServeSession
from ..types import Box, ParticleBatch

__all__ = ["StreamSession", "ProgressiveStreamServer"]

#: sessions are owned by the serve layer now; the old per-session plan
#: pinning is gone (plans live in the shared per-dataset PlanCache)
StreamSession = ServeSession


class ProgressiveStreamServer:
    """Serves progressive increments of one BAT timestep to many clients."""

    def __init__(self, metadata_path, config: ServeConfig | None = None):
        if config is None:
            config = ServeConfig(
                capacity=2,
                degradation=DegradationConfig(enabled=False),
                result_ttl=None,
            )
        self.service = QueryService(metadata_path, config)

    @property
    def dataset(self):
        return self.service.dataset(0)

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "ProgressiveStreamServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- session management ---------------------------------------------------

    def open_session(self) -> int:
        return self.service.open_session()

    def close_session(self, session_id: int) -> StreamSession:
        return self.service.close_session(session_id)

    def session(self, session_id: int) -> StreamSession:
        return self.service.session(session_id)

    @property
    def n_sessions(self) -> int:
        return self.service.n_sessions

    # -- streaming ----------------------------------------------------------------

    def request(
        self,
        session_id: int,
        quality: float,
        box: Box | None = None,
        filters=(),
    ) -> ParticleBatch:
        """Return the increment needed to reach ``quality`` for this client.

        If the view (box/filters) changed since the last request, the
        progression restarts from zero. If ``quality`` is at or below what
        was already delivered for the same view, the increment is empty.
        """
        req = QueryRequest(quality=quality, box=box, filters=tuple(filters))
        return self.service.request(session_id, req).batch

    def stats(self) -> dict:
        """The serve-layer metrics surface for this server."""
        return self.service.snapshot()
